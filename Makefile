# Dev ergonomics for the repro service (mirrors merino-py's make-driven
# workflow: one verb per everyday task, no hidden state).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: help test test-fast bench-smoke bench serve smoke clean

help:
	@echo "make test         - run the full test suite"
	@echo "make test-fast    - the suite minus the slow concurrency hammers"
	@echo "make bench-smoke  - benchmark scripts at tiny sizes (REPRO_BENCH_SMOKE=1)"
	@echo "make bench        - the full benchmark suite (slow; rewrites results/)"
	@echo "make serve        - the HTTP ranking gateway on :8080"
	@echo "make smoke        - start the gateway, hit /healthz + /rank, shut down"
	@echo "make clean        - drop caches and compiled artifacts"

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q --ignore=tests/service/test_concurrent_hammer.py

bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_e9_engine_overhead.py \
		benchmarks/bench_e10_kernel.py \
		benchmarks/bench_e11_reasoner.py \
		benchmarks/bench_e12_tenants.py \
		benchmarks/bench_e13_service.py \
		benchmarks/bench_e14_cache.py \
		benchmarks/bench_e15_resilience.py \
		benchmarks/bench_e16_coldstart.py \
		benchmarks/bench_e17_batching.py \
		benchmarks/bench_e18_gateway.py \
		benchmarks/bench_e7_multiuser.py

bench:
	$(PYTHON) -m pytest -q benchmarks

serve:
	$(PYTHON) -m repro serve --port 8080

smoke:
	$(PYTHON) scripts/service_smoke.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build dist src/*.egg-info
