"""Tests for the DL extensions: role hierarchies and number restrictions,
verified consistently across the instance checker, the relational view
compiler and the sqlite backend."""

import pytest

from repro.errors import ComplexityLimitError, DLError, TBoxError
from repro.events import EventSpace, probability
from repro.dl import (
    ABox,
    RoleName,
    TBox,
    at_least,
    at_most,
    atomic,
    membership_event,
    membership_probability,
    one_of,
    parse_concept,
    retrieve,
    some,
)
from repro.storage import Database, SqliteBackend, compile_concept


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def tbox():
    tbox = TBox()
    tbox.add_role_subsumption("hasMainGenre", "hasGenre")
    return tbox


@pytest.fixture()
def abox(space):
    box = ABox()
    box.assert_concept("TvProgram", "show_a")
    box.assert_concept("TvProgram", "show_b")
    box.assert_concept("TvProgram", "show_c")
    box.assert_concept("Genre", "comedy")
    box.assert_concept("Genre", "drama")
    box.assert_concept("Genre", "news")
    # show_a: two certain genres, one via the sub-role.
    box.assert_role("hasMainGenre", "show_a", "comedy")
    box.assert_role("hasGenre", "show_a", "drama")
    # show_b: two uncertain genres.
    box.assert_role("hasGenre", "show_b", "comedy", space.atom("b:comedy", 0.5))
    box.assert_role("hasGenre", "show_b", "news", space.atom("b:news", 0.4))
    # show_c: a single genre.
    box.assert_role("hasGenre", "show_c", "news")
    return box


class TestRoleHierarchy:
    def test_role_classification(self, tbox):
        assert tbox.subsumes_role("hasGenre", "hasMainGenre")
        assert not tbox.subsumes_role("hasMainGenre", "hasGenre")
        names = {r.name for r in tbox.role_descendants("hasGenre")}
        assert names == {"hasGenre", "hasMainGenre"}

    def test_role_cycle_detected(self):
        tbox = TBox()
        tbox.add_role_subsumption("a", "b")
        tbox.add_role_subsumption("b", "a")
        with pytest.raises(TBoxError):
            tbox.role_ancestors("a")

    def test_role_self_subsumption_rejected(self):
        with pytest.raises(TBoxError):
            TBox().add_role_subsumption("r", "r")

    def test_exists_sees_sub_role_edges(self, abox, tbox):
        event = membership_event(abox, tbox, "show_a", some("hasGenre", one_of("comedy")))
        assert event.is_certain

    def test_sub_role_does_not_see_super_role_edges(self, abox, tbox):
        event = membership_event(abox, tbox, "show_a", some("hasMainGenre", one_of("drama")))
        assert event.is_impossible

    def test_entailment_through_role_hierarchy(self, tbox):
        sub = some("hasMainGenre", one_of("comedy"))
        sup = some("hasGenre", one_of("comedy"))
        assert tbox.entails(sub, sup)
        assert not tbox.entails(sup, sub)


class TestAtLeastSemantics:
    def test_constructor_normalisation(self):
        from repro.dl import Exists

        assert isinstance(at_least(1, "r", atomic("C")), Exists)
        with pytest.raises(DLError):
            at_least(0, "r", atomic("C"))
        with pytest.raises(DLError):
            at_most(-1, "r", atomic("C"))

    def test_certain_counts(self, abox, tbox, space):
        two_genres = at_least(2, "hasGenre", atomic("Genre"))
        assert membership_event(abox, tbox, "show_a", two_genres).is_certain
        assert membership_event(abox, tbox, "show_c", two_genres).is_impossible

    def test_uncertain_counts(self, abox, tbox, space):
        two_genres = at_least(2, "hasGenre", atomic("Genre"))
        # show_b needs both uncertain edges: 0.5 * 0.4.
        assert membership_probability(abox, tbox, "show_b", two_genres, space) == pytest.approx(0.2)

    def test_at_most_is_complement(self, abox, tbox, space):
        at_most_one = at_most(1, "hasGenre", atomic("Genre"))
        p_at_most = membership_probability(abox, tbox, "show_b", at_most_one, space)
        assert p_at_most == pytest.approx(1.0 - 0.2)

    def test_exactly_via_conjunction(self, abox, tbox, space):
        exactly_one = at_least(1, "hasGenre", atomic("Genre")) & at_most(1, "hasGenre", atomic("Genre"))
        p = membership_probability(abox, tbox, "show_b", exactly_one, space)
        # exactly one of two independent edges: .5*.6 + .5*.4
        assert p == pytest.approx(0.5 * 0.6 + 0.5 * 0.4)

    def test_parser_round_trip(self):
        concept = parse_concept("ATLEAST 2 hasGenre.Genre")
        assert concept == at_least(2, "hasGenre", atomic("Genre"))
        assert parse_concept(str(concept)) == concept
        at_most_parsed = parse_concept("ATMOST 1 hasGenre.Genre")
        assert at_most_parsed == at_most(1, "hasGenre", atomic("Genre"))

    def test_parser_rejects_bad_counts(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_concept("ATLEAST hasGenre.Genre")
        with pytest.raises(ParseError):
            parse_concept("ATLEAST 0 hasGenre.Genre")

    def test_subset_explosion_guarded(self, tbox, space):
        box = ABox()
        for index in range(40):
            box.assert_role("r", "hub", f"t{index}", space.atom(f"e{index}", 0.5))
            box.assert_concept("C", f"t{index}")
        with pytest.raises(ComplexityLimitError):
            membership_event(box, tbox, "hub", at_least(5, "r", atomic("C")))

    def test_entailment_with_counts(self, tbox):
        stronger = at_least(3, "hasGenre", atomic("Genre"))
        weaker = at_least(2, "hasGenre", atomic("Genre"))
        assert tbox.entails(stronger, weaker)
        assert not tbox.entails(weaker, stronger)
        assert tbox.entails(stronger, some("hasGenre", atomic("Genre")))


EXTENSION_CONCEPTS = [
    "EXISTS hasGenre.Genre",
    "ATLEAST 2 hasGenre.Genre",
    "ATMOST 1 hasGenre.Genre",
    "TvProgram AND ATLEAST 2 hasGenre.Genre",
    "EXISTS hasMainGenre.Genre",
    "hasGenre VALUE comedy",
]


class TestBackendEquivalence:
    """Instance checker ≡ algebra views ≡ sqlite views, extensions included."""

    @pytest.mark.parametrize("text", EXTENSION_CONCEPTS)
    def test_algebra_matches_instances(self, abox, tbox, space, text):
        concept = parse_concept(text)
        db = Database()
        db.load_abox(abox)
        table = db.evaluate(compile_concept(concept, tbox, db))
        via_views = {
            row[0]: probability(row[1], space)
            for row in table
        }
        via_instances = {
            individual.name: probability(event, space)
            for individual, event in retrieve(abox, tbox, concept).items()
        }
        positive_views = {k: v for k, v in via_views.items() if v > 1e-12}
        positive_instances = {k: v for k, v in via_instances.items() if v > 1e-12}
        assert positive_views.keys() == positive_instances.keys()
        for key, value in positive_views.items():
            assert value == pytest.approx(positive_instances[key], abs=1e-9)

    @pytest.mark.parametrize("text", EXTENSION_CONCEPTS)
    def test_sqlite_matches_instances(self, abox, tbox, space, text):
        concept = parse_concept(text)
        with SqliteBackend(space) as backend:
            backend.load_abox(abox)
            via_sql = backend.concept_probabilities(concept, tbox)
        via_instances = {
            individual.name: probability(event, space)
            for individual, event in retrieve(abox, tbox, concept).items()
        }
        positive_sql = {k: v for k, v in via_sql.items() if v > 1e-12}
        positive_instances = {k: v for k, v in via_instances.items() if v > 1e-12}
        assert positive_sql.keys() == positive_instances.keys()
        for key, value in positive_sql.items():
            assert value == pytest.approx(positive_instances[key], abs=1e-9)
