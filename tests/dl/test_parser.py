"""Unit tests for the concept-expression parser."""

import pytest

from repro.errors import ParseError
from repro.dl import (
    BOTTOM,
    TOP,
    atomic,
    complement,
    every,
    has_value,
    one_of,
    parse_concept,
    some,
)


class TestBasicForms:
    def test_atomic(self):
        assert parse_concept("TvProgram") == atomic("TvProgram")

    def test_top_bottom(self):
        assert parse_concept("TOP") == TOP
        assert parse_concept("BOTTOM") == BOTTOM

    def test_nominal(self):
        assert parse_concept("{PETER, MARY}") == one_of("PETER", "MARY")

    def test_has_value(self):
        assert parse_concept("hasSubject VALUE News") == has_value("hasSubject", "News")

    def test_exists(self):
        expected = some("hasGenre", one_of("HUMAN-INTEREST"))
        assert parse_concept("EXISTS hasGenre.{HUMAN-INTEREST}") == expected

    def test_forall(self):
        assert parse_concept("ALL hasChannel.Public") == every("hasChannel", atomic("Public"))

    def test_not(self):
        assert parse_concept("NOT Weekend") == complement(atomic("Weekend"))


class TestPrecedenceAndGrouping:
    def test_and_binds_tighter_than_or(self):
        parsed = parse_concept("A AND B OR C")
        expected = (atomic("A") & atomic("B")) | atomic("C")
        assert parsed == expected

    def test_parentheses_override(self):
        parsed = parse_concept("A AND (B OR C)")
        expected = atomic("A") & (atomic("B") | atomic("C"))
        assert parsed == expected

    def test_not_binds_tightest(self):
        parsed = parse_concept("NOT A AND B")
        assert parsed == (complement(atomic("A")) & atomic("B"))

    def test_quantifier_scopes_over_unary(self):
        parsed = parse_concept("EXISTS r.NOT A")
        assert parsed == some("r", complement(atomic("A")))

    def test_nested_quantifiers(self):
        parsed = parse_concept("EXISTS r.EXISTS s.{X}")
        assert parsed == some("r", some("s", one_of("X")))

    def test_paper_rule_r1(self):
        parsed = parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
        expected = atomic("TvProgram") & some("hasGenre", one_of("HUMAN-INTEREST"))
        assert parsed == expected


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "TvProgram",
            "TOP",
            "A AND B",
            "A OR (B AND C)",
            "NOT (A OR B)",
            "EXISTS hasGenre.{COMEDY}",
            "ALL hasChannel.(Public OR Regional)",
            "hasSubject VALUE News",
            "{PETER}",
            "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}",
        ],
    )
    def test_str_reparses_to_same_concept(self, text):
        concept = parse_concept(text)
        assert parse_concept(str(concept)) == concept


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "AND",
            "A AND",
            "A B",
            "(A",
            "{}",
            "{A,}",
            "EXISTS .C",
            "EXISTS r C",
            "hasSubject VALUE",
            "NOT",
            "A %% B",
        ],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse_concept(text)

    def test_error_carries_position(self):
        try:
            parse_concept("A AND (B")
        except ParseError as exc:
            assert exc.position is not None
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
