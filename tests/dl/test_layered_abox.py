"""LayeredABox: copy-on-write overlays over a frozen shared base."""

import pytest

from repro.dl import (
    ABox,
    ConceptName,
    Individual,
    LayeredABox,
    RoleName,
    TBox,
    membership_event,
    parse_concept,
)
from repro.errors import ABoxError
from repro.events import EventSpace


@pytest.fixture()
def base():
    box = ABox()
    space = EventSpace("layered")
    box.assert_concept("TvProgram", "oprah")
    box.assert_concept("TvProgram", "bbc_news")
    box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", space.atom("g:oprah", 0.85))
    box.assert_role("hasSubject", "bbc_news", "WEATHER", space.atom("s:bbc", 0.6))
    box.space = space  # convenience for tests
    return box


def flatten(layered: LayeredABox) -> ABox:
    """A flat ABox with the same effective content (reference model)."""
    flat = ABox()
    for individual in layered.individuals:
        flat.register_individual(individual)
    flat.update(layered.concept_assertions())
    flat.update(layered.role_assertions())
    return flat


class TestFreeze:
    def test_frozen_base_rejects_mutation(self, base):
        base.freeze()
        with pytest.raises(ABoxError, match="overlay"):
            base.assert_concept("X", "y")
        with pytest.raises(ABoxError):
            base.assert_role("r", "a", "b")
        with pytest.raises(ABoxError):
            base.clear_dynamic()
        with pytest.raises(ABoxError):
            base.register_individual("z")

    def test_freeze_is_idempotent_and_chains(self, base):
        assert base.freeze() is base
        assert base.freeze().frozen

    def test_frozen_adjacency_is_computed_once(self, base):
        base.freeze()
        assert base.role_adjacency() is base.role_adjacency()

    def test_unfrozen_adjacency_is_not_cached(self, base):
        assert base.role_adjacency() is not base.role_adjacency()


class TestOverlayReads:
    def test_overlay_sees_base_facts(self, base):
        overlay = base.freeze().overlay()
        assert overlay.concept_event(ConceptName("TvProgram"), Individual("oprah"))
        assert overlay.role_event(
            RoleName("hasGenre"), Individual("oprah"), Individual("HUMAN-INTEREST")
        )
        assert len(overlay) == len(base)
        assert Individual("oprah") in overlay.individuals

    def test_overlay_additions_are_local(self, base):
        overlay = base.freeze().overlay()
        overlay.assert_concept("Favourite", "oprah")
        assert overlay.concept_event(ConceptName("Favourite"), Individual("oprah"))
        assert base.concept_event(ConceptName("Favourite"), Individual("oprah")) is None
        assert len(overlay) == len(base) + 1
        assert len(base) == 4

    def test_reassertion_merges_with_base_event(self, base):
        overlay = base.freeze().overlay()
        extra = base.space.atom("g:oprah:2", 0.5)
        overlay.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", extra)
        merged = overlay.role_event(
            RoleName("hasGenre"), Individual("oprah"), Individual("HUMAN-INTEREST")
        )
        base_event = base.role_event(
            RoleName("hasGenre"), Individual("oprah"), Individual("HUMAN-INTEREST")
        )
        assert merged is not base_event  # merged disjunction lives in the overlay
        assert str(base_event) in str(merged) and "g:oprah:2" in str(merged)
        # the fact is shadowed, not duplicated
        assert len(overlay) == len(base)

    def test_role_successors_merge_and_shadow(self, base):
        overlay = base.freeze().overlay()
        overlay.assert_role("hasGenre", "oprah", "COMEDY", base.space.atom("g:c", 0.3))
        successors = {
            assertion.target.name
            for assertion in overlay.role_successors(RoleName("hasGenre"), Individual("oprah"))
        }
        assert successors == {"HUMAN-INTEREST", "COMEDY"}
        base_successors = {
            assertion.target.name
            for assertion in base.role_successors(RoleName("hasGenre"), Individual("oprah"))
        }
        assert base_successors == {"HUMAN-INTEREST"}

    def test_role_adjacency_equals_flat_reference(self, base):
        overlay = base.freeze().overlay()
        overlay.assert_role("hasGenre", "oprah", "COMEDY", base.space.atom("g:c", 0.3))
        overlay.assert_role("hasGenre", "mpfs", "COMEDY", base.space.atom("g:m", 0.7))
        flat = flatten(overlay)
        layered_adjacency = {
            role.name: {
                source.name: sorted(str(a) for a in assertions)
                for source, assertions in table.items()
            }
            for role, table in overlay.role_adjacency().items()
        }
        flat_adjacency = {
            role.name: {
                source.name: sorted(str(a) for a in assertions)
                for source, assertions in table.items()
            }
            for role, table in flat.role_adjacency().items()
        }
        assert layered_adjacency == flat_adjacency

    def test_iteration_matches_flat_reference(self, base):
        overlay = base.freeze().overlay()
        overlay.assert_concept("Favourite", "oprah")
        overlay.assert_concept("TvProgram", "mpfs")
        overlay.assert_role("hasGenre", "mpfs", "COMEDY")
        flat = flatten(overlay)
        assert sorted(str(a) for a in overlay.concept_assertions()) == sorted(
            str(a) for a in flat.concept_assertions()
        )
        assert sorted(str(a) for a in overlay.role_assertions()) == sorted(
            str(a) for a in flat.role_assertions()
        )
        assert len(overlay) == len(flat)
        assert overlay.individuals == flat.individuals
        assert overlay.concept_names == flat.concept_names
        assert overlay.role_names == flat.role_names


class TestOverlayIsolation:
    def test_sibling_overlays_are_isolated(self, base):
        base.freeze()
        first, second = base.overlay(), base.overlay()
        first.assert_concept("Weekend", "alice", dynamic=True)
        assert second.concept_event(ConceptName("Weekend"), Individual("alice")) is None
        assert base.concept_event(ConceptName("Weekend"), Individual("alice")) is None
        assert first.dynamic_assertions() and not second.dynamic_assertions()

    def test_clear_dynamic_touches_only_the_overlay(self, base):
        # A base with its own dynamic fact, frozen mid-flight.
        base.assert_concept("Lunch", "everyone", dynamic=True)
        base.freeze()
        overlay = base.overlay()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        assert len(overlay.dynamic_assertions()) == 2
        assert overlay.clear_dynamic() == 1
        # the base's own dynamic fact shines through untouched
        remaining = overlay.dynamic_assertions()
        assert {str(a) for a in remaining} == {"Lunch(everyone) [TRUE]"}
        assert len(base.dynamic_assertions()) == 1

    def test_shadowed_base_dynamic_fact_reappears_after_clear(self, base):
        base.assert_concept("Lunch", "everyone", dynamic=True)
        base.freeze()
        overlay = base.overlay()
        overlay.assert_concept("Lunch", "everyone", base.space.atom("l2", 0.5), dynamic=True)
        assert len(overlay.dynamic_assertions()) == 1  # shadowing, not duplication
        overlay.clear_dynamic()
        assert {str(a) for a in overlay.dynamic_assertions()} == {"Lunch(everyone) [TRUE]"}


class TestEpochs:
    def test_mutation_counters_combine_layers(self, base):
        overlay = base.freeze().overlay()
        before = overlay.mutation_count
        assert before == base.mutation_count
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        assert overlay.mutation_count == before + 1
        assert overlay.overlay_mutation_count == 1
        assert overlay.static_mutation_count == base.static_mutation_count

    def test_static_counter_moves_on_static_overlay_fact(self, base):
        overlay = base.freeze().overlay()
        before = overlay.static_mutation_count
        overlay.assert_concept("Favourite", "oprah")
        assert overlay.static_mutation_count == before + 1

    def test_unfrozen_base_changes_show_in_overlay_epoch(self):
        box = ABox()
        box.assert_concept("A", "x")
        overlay = box.overlay()
        before = overlay.mutation_count
        box.assert_concept("B", "y")
        assert overlay.mutation_count == before + 1


class TestChainedOverlays:
    def test_three_layers_read_through(self, base):
        team = base.freeze().overlay()
        team.assert_concept("TeamMeeting", "room1", dynamic=True)
        user = team.overlay()
        user.assert_concept("Weekend", "alice", dynamic=True)
        assert user.concept_event(ConceptName("TvProgram"), Individual("oprah"))
        assert user.concept_event(ConceptName("TeamMeeting"), Individual("room1"))
        assert {str(a) for a in user.dynamic_assertions()} == {
            "TeamMeeting(room1) [TRUE]",
            "Weekend(alice) [TRUE]",
        }
        assert user.base is team and team.base is base

    def test_chained_membership_equals_flat(self, base):
        tbox = TBox()
        team = base.freeze().overlay()
        team.assert_role("hasGenre", "bbc_news", "COMEDY", base.space.atom("g:b", 0.4))
        user = team.overlay()
        user.assert_concept("TvProgram", "mpfs")
        concept = parse_concept("TvProgram AND EXISTS hasGenre.{COMEDY}")
        flat = flatten(user)
        for name in ("oprah", "bbc_news", "mpfs"):
            assert str(membership_event(user, tbox, name, concept)) == str(
                membership_event(flat, tbox, name, concept)
            )


class TestOverlaySlice:
    def test_overlay_snapshot_and_names(self, base):
        overlay = base.freeze().overlay()
        assert overlay.overlay_snapshot() == frozenset()
        assert overlay.overlay_names() == frozenset()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        overlay.assert_role("sitsNextTo", "alice", "bob")
        assert len(overlay.overlay_snapshot()) == 2
        assert overlay.overlay_names() == {"alice", "bob"}

    def test_update_replays_into_overlay_only(self, base):
        overlay = base.freeze().overlay()
        other = ABox()
        other.assert_concept("Weekend", "alice", dynamic=True)
        overlay.update(other.concept_assertions())
        assert overlay.concept_event(ConceptName("Weekend"), Individual("alice"))
        assert len(base) == 4
