"""Unit tests for TBox classification, definitions and subsumption."""

import pytest

from repro.errors import TBoxError
from repro.dl import (
    BOTTOM,
    TOP,
    ConceptName,
    TBox,
    atomic,
    complement,
    every,
    has_value,
    one_of,
    parse_concept,
    some,
)


@pytest.fixture()
def taxonomy():
    """Bulletin ⊑ Program; Traffic/Weather ⊑ Bulletin; Weather ⊑ NewsItem."""
    tbox = TBox()
    tbox.add_subsumption("Bulletin", "Program")
    tbox.add_subsumption("TrafficBulletin", "Bulletin")
    tbox.add_subsumption("WeatherBulletin", "Bulletin")
    tbox.add_subsumption("WeatherBulletin", "NewsItem")
    return tbox


class TestClassification:
    def test_ancestors_include_self(self, taxonomy):
        names = {n.name for n in taxonomy.ancestors("TrafficBulletin")}
        assert names == {"TrafficBulletin", "Bulletin", "Program"}

    def test_descendants_include_self(self, taxonomy):
        names = {n.name for n in taxonomy.descendants("Bulletin")}
        assert names == {"Bulletin", "TrafficBulletin", "WeatherBulletin"}

    def test_multiple_parents(self, taxonomy):
        names = {n.name for n in taxonomy.ancestors("WeatherBulletin")}
        assert "NewsItem" in names and "Program" in names

    def test_subsumes_name(self, taxonomy):
        assert taxonomy.subsumes_name("Program", "TrafficBulletin")
        assert not taxonomy.subsumes_name("TrafficBulletin", "Program")
        assert taxonomy.subsumes_name("NewsItem", "WeatherBulletin")

    def test_unknown_name_is_its_own_hierarchy(self, taxonomy):
        assert taxonomy.ancestors("Unseen") == frozenset({ConceptName("Unseen")})

    def test_cycle_detection(self):
        tbox = TBox()
        tbox.add_subsumption("A", "B")
        tbox.add_subsumption("B", "C")
        tbox.add_subsumption("C", "A")
        with pytest.raises(TBoxError):
            tbox.ancestors("A")

    def test_self_subsumption_rejected(self):
        with pytest.raises(TBoxError):
            TBox().add_subsumption("A", "A")


class TestDefinitions:
    def test_expand_unfolds_definitions(self):
        tbox = TBox()
        tbox.define("HavingBreakfast", parse_concept("InKitchen AND Morning"))
        expanded = tbox.expand(parse_concept("HavingBreakfast OR Weekend"))
        assert expanded == parse_concept("(InKitchen AND Morning) OR Weekend")

    def test_nested_definitions_unfold(self):
        tbox = TBox()
        tbox.define("B", parse_concept("C AND D"))
        tbox.define("A", parse_concept("B OR E"))
        assert tbox.expand(atomic("A")) == parse_concept("(C AND D) OR E")

    def test_duplicate_definition_rejected(self):
        tbox = TBox()
        tbox.define("A", atomic("B"))
        with pytest.raises(TBoxError):
            tbox.define("A", atomic("C"))

    def test_definitional_cycle_rejected(self):
        tbox = TBox()
        tbox.define("A", atomic("B"))
        with pytest.raises(TBoxError):
            tbox.define("B", parse_concept("A AND C"))

    def test_expand_inside_quantifier(self):
        tbox = TBox()
        tbox.define("Nice", parse_concept("Comedy OR Drama"))
        assert tbox.expand(some("hasGenre", atomic("Nice"))) == some(
            "hasGenre", parse_concept("Comedy OR Drama")
        )


class TestDisjointness:
    def test_declared_disjointness(self):
        tbox = TBox()
        tbox.declare_disjoint(["TrafficBulletin", "WeatherBulletin"])
        assert tbox.disjoint_names(ConceptName("TrafficBulletin"), ConceptName("WeatherBulletin"))
        assert not tbox.disjoint_names(ConceptName("TrafficBulletin"), ConceptName("TrafficBulletin"))

    def test_inherited_disjointness(self):
        tbox = TBox()
        tbox.add_subsumption("LocalTraffic", "TrafficBulletin")
        tbox.declare_disjoint(["TrafficBulletin", "WeatherBulletin"])
        assert tbox.disjoint_names(ConceptName("LocalTraffic"), ConceptName("WeatherBulletin"))

    def test_disjointness_needs_two_names(self):
        with pytest.raises(TBoxError):
            TBox().declare_disjoint(["OnlyOne"])


class TestStructuralEntailment:
    def test_reflexive(self, taxonomy):
        concept = parse_concept("A AND EXISTS r.{X}")
        assert taxonomy.entails(concept, concept)

    def test_top_bottom(self, taxonomy):
        assert taxonomy.entails(atomic("Anything"), TOP)
        assert taxonomy.entails(BOTTOM, atomic("Anything"))
        assert not taxonomy.entails(TOP, atomic("Anything"))

    def test_name_hierarchy_lifts_to_expressions(self, taxonomy):
        assert taxonomy.entails(atomic("TrafficBulletin"), atomic("Program"))

    def test_conjunction_weakening(self, taxonomy):
        assert taxonomy.entails(parse_concept("A AND B"), atomic("A"))
        assert not taxonomy.entails(atomic("A"), parse_concept("A AND B"))

    def test_disjunction_strengthening(self, taxonomy):
        assert taxonomy.entails(atomic("A"), parse_concept("A OR B"))
        assert not taxonomy.entails(parse_concept("A OR B"), atomic("A"))

    def test_exists_monotone_in_filler(self, taxonomy):
        sub = some("hasKind", atomic("TrafficBulletin"))
        sup = some("hasKind", atomic("Program"))
        assert taxonomy.entails(sub, sup)
        assert not taxonomy.entails(sup, sub)

    def test_nominal_subset(self, taxonomy):
        assert taxonomy.entails(one_of("A"), one_of("A", "B"))
        assert not taxonomy.entails(one_of("A", "B"), one_of("A"))

    def test_has_value_entails_exists(self, taxonomy):
        assert taxonomy.entails(
            has_value("hasGenre", "COMEDY"), some("hasGenre", one_of("COMEDY", "DRAMA"))
        )

    def test_negation_antitone(self, taxonomy):
        sub = complement(atomic("Program"))
        sup = complement(atomic("TrafficBulletin"))
        assert taxonomy.entails(sub, sup)

    def test_definitions_expanded_before_check(self):
        tbox = TBox()
        tbox.define("NewsLike", parse_concept("News OR WeatherBulletin"))
        assert tbox.entails(atomic("News"), atomic("NewsLike"))

    def test_transitivity_through_expressions(self, taxonomy):
        sub = parse_concept("TrafficBulletin AND Recent")
        assert taxonomy.entails(sub, every("noRole", TOP))  # ∀r.⊤ == ⊤
