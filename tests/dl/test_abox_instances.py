"""Unit tests for the ABox and probabilistic instance checking."""

import pytest

from repro.errors import ABoxError
from repro.events import ALWAYS, NEVER, EventSpace, probability
from repro.dl import (
    ABox,
    Individual,
    TBox,
    atomic,
    complement,
    every,
    has_value,
    membership_event,
    membership_probability,
    one_of,
    parse_concept,
    retrieve,
    retrieve_probabilities,
    some,
)


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def tbox():
    tbox = TBox()
    tbox.add_subsumption("WeatherBulletinSubject", "NewsSubject")
    return tbox


@pytest.fixture()
def abox(space):
    """A miniature TVTouch-flavoured ABox."""
    box = ABox()
    box.assert_concept("TvProgram", "oprah")
    box.assert_concept("TvProgram", "bbc_news")
    box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", space.atom("g:oprah", 0.85))
    box.assert_role("hasSubject", "bbc_news", "weather_topic")
    box.assert_concept("WeatherBulletinSubject", "weather_topic")
    return box


class TestABox:
    def test_assertion_counts(self, abox):
        assert len(abox) == 5

    def test_duplicate_assertion_disjoins_events(self, space):
        box = ABox()
        box.assert_concept("A", "x", space.atom("e1", 0.5))
        box.assert_concept("A", "x", space.atom("e2", 0.5))
        event = box.concept_event(
            next(iter(box.concept_names)), Individual("x")
        )
        assert probability(event, space) == pytest.approx(0.75)

    def test_non_event_rejected(self):
        with pytest.raises(ABoxError):
            ABox().assert_concept("A", "x", 0.5)

    def test_clear_dynamic_removes_only_dynamic(self, space):
        box = ABox()
        box.assert_concept("Static", "x")
        box.assert_concept("Sensed", "x", space.atom("s", 0.5), dynamic=True)
        box.assert_role("near", "x", "y", space.atom("n", 0.5), dynamic=True)
        removed = box.clear_dynamic()
        assert removed == 2
        assert len(box) == 1

    def test_update_replays_assertions(self, abox):
        clone = ABox()
        clone.update(abox.concept_assertions())
        clone.update(abox.role_assertions())
        assert len(clone) == len(abox)
        assert clone.individuals == abox.individuals


class TestMembershipEvent:
    def test_atomic_certain(self, abox, tbox):
        event = membership_event(abox, tbox, "oprah", atomic("TvProgram"))
        assert event is ALWAYS or event.is_certain

    def test_atomic_absent_is_never(self, abox, tbox):
        event = membership_event(abox, tbox, "oprah", atomic("Person"))
        assert event.is_impossible

    def test_exists_with_nominal(self, abox, tbox, space):
        concept = some("hasGenre", one_of("HUMAN-INTEREST"))
        event = membership_event(abox, tbox, "oprah", concept)
        assert probability(event, space) == pytest.approx(0.85)

    def test_has_value_matches_role_assertion(self, abox, tbox, space):
        concept = has_value("hasGenre", "HUMAN-INTEREST")
        assert probability(membership_event(abox, tbox, "oprah", concept), space) == pytest.approx(0.85)

    def test_subsumption_lifts_assertions(self, abox, tbox, space):
        """weather_topic is a WeatherBulletinSubject, hence a NewsSubject."""
        concept = some("hasSubject", atomic("NewsSubject"))
        event = membership_event(abox, tbox, "bbc_news", concept)
        assert probability(event, space) == pytest.approx(1.0)

    def test_conjunction_multiplies_independent(self, abox, tbox, space):
        concept = parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
        assert membership_probability(abox, tbox, "oprah", concept, space) == pytest.approx(0.85)

    def test_negation_complements(self, abox, tbox, space):
        concept = complement(some("hasGenre", one_of("HUMAN-INTEREST")))
        assert membership_probability(abox, tbox, "oprah", concept, space) == pytest.approx(0.15)

    def test_one_of_membership(self, abox, tbox):
        assert membership_event(abox, tbox, "oprah", one_of("oprah", "x")).is_certain
        assert membership_event(abox, tbox, "oprah", one_of("x")).is_impossible

    def test_forall_vacuously_true_without_successors(self, abox, tbox):
        concept = every("hasGenre", atomic("Nonexistent"))
        event = membership_event(abox, tbox, "bbc_news", concept)
        assert event.is_certain

    def test_forall_requires_all_successors(self, space, tbox):
        box = ABox()
        box.assert_role("hasGenre", "show", "COMEDY", space.atom("e1", 0.5))
        box.assert_concept("Genre", "COMEDY")
        # ∀hasGenre.Genre: the only successor is in Genre with certainty,
        # so the obligation holds regardless of the edge event.
        event = membership_event(box, tbox, "show", every("hasGenre", atomic("Genre")))
        assert event.is_certain
        # ∀hasGenre.Other fails exactly when the edge exists.
        event = membership_event(box, tbox, "show", every("hasGenre", atomic("Other")))
        assert probability(event, space) == pytest.approx(0.5)

    def test_uncertain_chain_through_exists(self, space, tbox):
        box = ABox()
        box.assert_role("likes", "peter", "show", space.atom("edge", 0.5))
        box.assert_concept("Comedy", "show", space.atom("genre", 0.4))
        event = membership_event(box, tbox, "peter", some("likes", atomic("Comedy")))
        assert probability(event, space) == pytest.approx(0.2)


class TestRetrieve:
    def test_retrieve_skips_impossible(self, abox, tbox):
        result = retrieve(abox, tbox, some("hasGenre", one_of("HUMAN-INTEREST")))
        assert set(result) == {Individual("oprah")}

    def test_retrieve_probabilities(self, abox, tbox, space):
        result = retrieve_probabilities(abox, tbox, atomic("TvProgram"), space)
        assert result == {
            Individual("oprah"): pytest.approx(1.0),
            Individual("bbc_news"): pytest.approx(1.0),
        }

    def test_retrieve_negation_includes_non_members(self, abox, tbox):
        result = retrieve(abox, tbox, complement(atomic("TvProgram")))
        names = {ind.name for ind in result}
        # Genre/topic individuals are not TvPrograms (closed world).
        assert "HUMAN-INTEREST" in names
        assert "oprah" not in names
