"""Unit tests for concept-expression construction and simplification."""

import pytest

from repro.errors import DLError
from repro.dl import (
    BOTTOM,
    TOP,
    And,
    ConceptName,
    Individual,
    Or,
    RoleName,
    atomic,
    complement,
    every,
    has_value,
    intersect,
    one_of,
    some,
    union,
)


class TestVocabulary:
    def test_valid_names(self):
        assert ConceptName("TvProgram").name == "TvProgram"
        assert RoleName("hasGenre").name == "hasGenre"
        assert Individual("HUMAN-INTEREST").name == "HUMAN-INTEREST"

    @pytest.mark.parametrize("bad", ["", "9abc", "with space", "semi;colon", None])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(DLError):
            ConceptName(bad)

    def test_names_are_value_objects(self):
        assert ConceptName("A") == ConceptName("A")
        assert hash(RoleName("r")) == hash(RoleName("r"))


class TestConstructors:
    def test_intersection_simplification(self):
        a, b = atomic("A"), atomic("B")
        assert intersect([a, TOP]) == a
        assert intersect([a, BOTTOM]) == BOTTOM
        assert intersect([]) == TOP
        assert intersect([a, b]) == intersect([b, a])
        assert intersect([a, a]) == a

    def test_union_simplification(self):
        a, b = atomic("A"), atomic("B")
        assert union([a, BOTTOM]) == a
        assert union([a, TOP]) == TOP
        assert union([]) == BOTTOM
        assert union([a, b]) == union([b, a])

    def test_complement_simplification(self):
        a = atomic("A")
        assert complement(TOP) == BOTTOM
        assert complement(BOTTOM) == TOP
        assert complement(complement(a)) == a

    def test_complementary_pair_collapse(self):
        a = atomic("A")
        assert intersect([a, complement(a)]) == BOTTOM
        assert union([a, complement(a)]) == TOP

    def test_flattening(self):
        a, b, c = atomic("A"), atomic("B"), atomic("C")
        nested = intersect([a, intersect([b, c])])
        assert isinstance(nested, And)
        assert len(nested.children) == 3
        nested_or = union([a, union([b, c])])
        assert isinstance(nested_or, Or)
        assert len(nested_or.children) == 3

    def test_quantifier_simplification(self):
        assert some("r", BOTTOM) == BOTTOM
        assert every("r", TOP) == TOP

    def test_operators(self):
        a, b = atomic("A"), atomic("B")
        assert (a & b) == intersect([a, b])
        assert (a | b) == union([a, b])
        assert ~a == complement(a)

    def test_one_of_requires_members(self):
        with pytest.raises(DLError):
            one_of()

    def test_has_value_equals_desugared_exists(self):
        hv = has_value("hasGenre", "HUMAN-INTEREST")
        assert hv == some("hasGenre", one_of("HUMAN-INTEREST"))
        assert hash(hv) == hash(hv.desugar())


class TestAccessors:
    def test_collected_vocabulary(self):
        concept = atomic("TvProgram") & some("hasGenre", one_of("COMEDY")) & every(
            "hasChannel", atomic("PublicChannel")
        )
        assert {c.name for c in concept.concept_names()} == {"TvProgram", "PublicChannel"}
        assert {r.name for r in concept.role_names()} == {"hasGenre", "hasChannel"}
        assert {i.name for i in concept.individuals()} == {"COMEDY"}

    def test_has_value_vocabulary(self):
        concept = has_value("hasSubject", "News")
        assert {r.name for r in concept.role_names()} == {"hasSubject"}
        assert {i.name for i in concept.individuals()} == {"News"}


class TestRendering:
    def test_atomic_str(self):
        assert str(atomic("TvProgram")) == "TvProgram"

    def test_nested_str_round_trippable(self):
        concept = atomic("TvProgram") & some("hasGenre", one_of("COMEDY", "DRAMA"))
        text = str(concept)
        assert "TvProgram" in text
        assert "EXISTS hasGenre" in text
        assert "{COMEDY, DRAMA}" in text

    def test_not_str(self):
        assert str(~atomic("A")) == "NOT A"
        text = str(~(atomic("A") & atomic("B")))
        assert text.startswith("NOT (")
