"""Unit tests for the probabilistic relational algebra."""

import pytest

from repro.errors import QueryError
from repro.events import ALWAYS, EventSpace, probability
from repro.storage import (
    Column,
    ColumnType,
    Comparison,
    Constant,
    Database,
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Schema,
    Select,
    Table,
    Union,
)
from repro.storage.algebra import AndPredicate, ColumnComparison, NotPredicate, OrPredicate


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def db(space):
    """Two concept-style tables plus a plain data table."""
    db = Database()
    a = db.create_concept_table("A")
    a.insert(("x", space.atom("ax", 0.8)))
    a.insert(("y", space.atom("ay", 0.5)))
    b = db.create_concept_table("B")
    b.insert(("x", space.atom("bx", 0.5)))
    b.insert(("z", ALWAYS))
    individuals = db.ensure_individuals_table()
    for name in ("x", "y", "z"):
        individuals.insert((name, ALWAYS))
    plain = db.create_table(
        "People",
        Schema([Column("name", ColumnType.TEXT), Column("age", ColumnType.INT)]),
    )
    plain.insert_many([("ann", 30), ("bob", 40), ("cey", 40)])
    return db


class TestScanSelect:
    def test_scan_returns_copy(self, db):
        result = db.evaluate(Scan("concept_A"))
        assert len(result) == 2
        result.insert(("w", ALWAYS))
        assert len(db.table("concept_A")) == 2

    def test_scan_unknown_table(self, db):
        from repro.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            db.evaluate(Scan("missing"))

    def test_select_literal(self, db):
        result = db.evaluate(Select(Scan("People"), Comparison("age", ">", 35)))
        assert {row[0] for row in result} == {"bob", "cey"}

    def test_select_column_comparison(self, db):
        result = db.evaluate(Select(Scan("People"), ColumnComparison("name", "=", "name")))
        assert len(result) == 3

    def test_select_compound_predicates(self, db):
        predicate = AndPredicate(
            (
                Comparison("age", ">=", 30),
                NotPredicate(Comparison("name", "=", "bob")),
            )
        )
        result = db.evaluate(Select(Scan("People"), predicate))
        assert {row[0] for row in result} == {"ann", "cey"}
        predicate = OrPredicate((Comparison("name", "=", "ann"), Comparison("age", "=", 40)))
        assert len(db.evaluate(Select(Scan("People"), predicate))) == 3

    def test_select_unknown_column(self, db):
        with pytest.raises(QueryError):
            db.evaluate(Select(Scan("People"), Comparison("salary", ">", 1)))

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~", 1)


class TestProject:
    def test_project_plain_distinct(self, db):
        result = db.evaluate(Project(Scan("People"), ("age",)))
        assert sorted(row[0] for row in result) == [30, 40]

    def test_project_keeps_duplicates_when_not_distinct(self, db):
        result = db.evaluate(Project(Scan("People"), ("age",), distinct=False))
        assert sorted(row[0] for row in result) == [30, 40, 40]

    def test_project_merges_events(self, db, space):
        # Duplicate ids after projecting a role-like table OR their events.
        role = db.create_role_table("r")
        role.insert(("s", "d1", space.atom("e1", 0.5)))
        role.insert(("s", "d2", space.atom("e2", 0.5)))
        result = db.evaluate(Project(Scan("role_r"), ("source", "event")))
        assert len(result) == 1
        assert probability(result.rows[0][1], space) == pytest.approx(0.75)


class TestJoin:
    def test_join_conjoins_events(self, db, space):
        result = db.evaluate(Join(Scan("concept_A"), Scan("concept_B"), on=(("id", "id"),)))
        assert {row[0] for row in result} == {"x"}
        assert probability(result.rows[0][1], space) == pytest.approx(0.4)

    def test_join_schema_is_id_event(self, db):
        result = db.evaluate(Join(Scan("concept_A"), Scan("concept_B"), on=(("id", "id"),)))
        assert result.schema.names == ("id", "event")

    def test_join_role_with_concept(self, db, space):
        role = db.create_role_table("has")
        role.insert(("p", "x", space.atom("edge", 0.5)))
        joined = Join(Scan("role_has"), Scan("concept_A"), on=(("destination", "id"),))
        result = db.evaluate(joined)
        assert result.schema.names == ("source", "destination", "event")
        assert probability(result.rows[0][2], space) == pytest.approx(0.4)

    def test_join_name_collision_rejected(self, db):
        with pytest.raises(QueryError):
            db.evaluate(Join(Scan("People"), Scan("People"), on=(("name", "name"),)))

    def test_join_unknown_column(self, db):
        with pytest.raises(Exception):
            db.evaluate(Join(Scan("concept_A"), Scan("concept_B"), on=(("nope", "id"),)))


class TestUnion:
    def test_union_merges_duplicates(self, db, space):
        result = db.evaluate(Union(Scan("concept_A"), Scan("concept_B")))
        assert len(result) == 3  # x merged, y, z
        x_event = result.event_of(id="x")
        assert probability(x_event, space) == pytest.approx(1 - 0.2 * 0.5)

    def test_union_requires_compatible_schemas(self, db):
        with pytest.raises(QueryError):
            db.evaluate(Union(Scan("concept_A"), Scan("People")))


class TestDifference:
    def test_certain_difference(self, db):
        result = db.evaluate(Difference(Scan("Individuals"), Scan("concept_B")))
        # z is certainly in B, so only x and y can survive.
        ids = {row[0] for row in result}
        assert "z" not in ids
        assert {"x", "y"} <= ids

    def test_difference_event_semantics(self, db, space):
        result = db.evaluate(Difference(Scan("Individuals"), Scan("concept_A")))
        # x in A with p=0.8: survives complement with p=0.2.
        assert probability(result.event_of(id="x"), space) == pytest.approx(0.2)
        # z not in A at all: survives certainly.
        assert probability(result.event_of(id="z"), space) == pytest.approx(1.0)

    def test_difference_incompatible_schemas(self, db):
        with pytest.raises(QueryError):
            db.evaluate(Difference(Scan("People"), Scan("concept_A")))


class TestRenameConstant:
    def test_rename(self, db):
        result = db.evaluate(Rename(Scan("concept_A"), (("id", "pid"),)))
        assert result.schema.names == ("pid", "event")

    def test_constant(self, db):
        from repro.storage import concept_schema

        node = Constant(concept_schema(), (("q", ALWAYS),))
        result = db.evaluate(node)
        assert result.rows == [("q", ALWAYS)]


class TestViews:
    def test_view_reevaluates_on_base_change(self, db, space):
        db.create_view("a_and_b", Join(Scan("concept_A"), Scan("concept_B"), on=(("id", "id"),)))
        assert len(db.table("a_and_b")) == 1
        db.table("concept_B").insert(("y", space.atom("by", 0.5)))
        assert len(db.table("a_and_b")) == 2

    def test_view_name_clash_rejected(self, db):
        from repro.errors import StorageError

        db.create_view("v", Scan("concept_A"))
        with pytest.raises(StorageError):
            db.create_view("v", Scan("concept_B"))
        with pytest.raises(StorageError):
            db.create_table("v", db.table("concept_A").schema)

    def test_drop_view(self, db):
        from repro.errors import UnknownTableError

        db.create_view("v", Scan("concept_A"))
        db.drop_view("v")
        with pytest.raises(UnknownTableError):
            db.table("v")
