"""Tests for the DL-to-algebra compiler, incl. equivalence with the
reference instance checker."""

import pytest

from repro.events import EventSpace, probability
from repro.dl import ABox, TBox, atomic, complement, every, has_value, one_of, parse_concept, retrieve, some
from repro.storage import Database, compile_concept, create_concept_view


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def tbox():
    tbox = TBox()
    tbox.add_subsumption("WeatherBulletinSubject", "NewsSubject")
    return tbox


@pytest.fixture()
def abox(space):
    box = ABox()
    box.assert_concept("TvProgram", "oprah")
    box.assert_concept("TvProgram", "bbc")
    box.assert_concept("TvProgram", "ch5")
    box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", space.atom("g:oprah", 0.85))
    box.assert_role("hasGenre", "ch5", "HUMAN-INTEREST", space.atom("g:ch5", 0.95))
    box.assert_role("hasSubject", "bbc", "weather_topic")
    box.assert_role("hasSubject", "ch5", "weather_topic", space.atom("s:ch5", 0.85))
    box.assert_concept("WeatherBulletinSubject", "weather_topic")
    return box


@pytest.fixture()
def db(abox):
    db = Database()
    db.load_abox(abox)
    return db


def _probabilities(db, tbox, concept, space):
    table = db.evaluate(compile_concept(concept, tbox, db))
    return {row[0]: probability(row[1], space) for row in table}


CONCEPT_TEXTS = [
    "TvProgram",
    "NewsSubject",
    "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}",
    "TvProgram AND EXISTS hasSubject.NewsSubject",
    "EXISTS hasSubject.NewsSubject OR EXISTS hasGenre.{HUMAN-INTEREST}",
    "NOT TvProgram",
    "TvProgram AND NOT EXISTS hasGenre.{HUMAN-INTEREST}",
    "{oprah, bbc}",
    "hasSubject VALUE weather_topic",
    "ALL hasGenre.{HUMAN-INTEREST}",
    "TOP",
    "BOTTOM",
]


class TestEquivalenceWithInstanceChecker:
    @pytest.mark.parametrize("text", CONCEPT_TEXTS)
    def test_same_members_and_probabilities(self, db, abox, tbox, space, text):
        concept = parse_concept(text)
        via_views = _probabilities(db, tbox, concept, space)
        via_instances = {
            individual.name: probability(event, space)
            for individual, event in retrieve(abox, tbox, concept).items()
        }
        # The view result may carry zero-probability tuples the instance
        # checker drops (or vice versa); compare the positive supports.
        positive_views = {k: v for k, v in via_views.items() if v > 1e-12}
        positive_instances = {k: v for k, v in via_instances.items() if v > 1e-12}
        assert positive_views.keys() == positive_instances.keys()
        for key, value in positive_views.items():
            assert value == pytest.approx(positive_instances[key], abs=1e-9)


class TestMappingSpecifics:
    def test_atomic_includes_descendant_tables(self, db, tbox, space):
        result = _probabilities(db, tbox, atomic("NewsSubject"), space)
        assert result == {"weather_topic": pytest.approx(1.0)}

    def test_missing_tables_give_empty(self, db, tbox, space):
        assert _probabilities(db, tbox, atomic("NoSuchConcept"), space) == {}
        assert _probabilities(db, tbox, some("noSuchRole", atomic("TvProgram")), space) == {}

    def test_exists_merges_alternative_successors(self, space, tbox):
        box = ABox()
        box.assert_role("likes", "p", "a", space.atom("e1", 0.5))
        box.assert_role("likes", "p", "b", space.atom("e2", 0.5))
        box.assert_concept("Good", "a")
        box.assert_concept("Good", "b")
        db = Database()
        db.load_abox(box)
        result = _probabilities(db, tbox, some("likes", atomic("Good")), space)
        assert result["p"] == pytest.approx(0.75)

    def test_negation_against_domain(self, db, tbox, space):
        result = _probabilities(db, tbox, complement(atomic("TvProgram")), space)
        assert "weather_topic" in result
        assert "oprah" not in result

    def test_forall_equals_not_exists_not(self, db, tbox, space):
        direct = _probabilities(db, tbox, every("hasGenre", one_of("HUMAN-INTEREST")), space)
        rewritten = _probabilities(
            db, tbox, complement(some("hasGenre", complement(one_of("HUMAN-INTEREST")))), space
        )
        assert direct == rewritten

    def test_has_value(self, db, tbox, space):
        result = _probabilities(db, tbox, has_value("hasSubject", "weather_topic"), space)
        assert result["bbc"] == pytest.approx(1.0)
        assert result["ch5"] == pytest.approx(0.85)

    def test_create_concept_view_registers_and_refreshes(self, db, abox, tbox, space):
        create_concept_view(db, "v_programs", atomic("TvProgram"), tbox)
        assert len(db.table("v_programs")) == 3
        db.table("concept_TvProgram").insert(("new_show", space.atom("n", 0.5)))
        assert len(db.table("v_programs")) == 4
