"""Unit tests for schemas and event-aware tables."""

import pytest

from repro.errors import SchemaError
from repro.events import ALWAYS, EventSpace, probability
from repro.storage import Column, ColumnType, Schema, Table


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def concept_like_schema():
    return Schema([Column("id", ColumnType.TEXT), Column("event", ColumnType.EVENT)])


class TestColumnTypes:
    def test_int_accepts(self):
        assert ColumnType.INT.accepts(3)
        assert ColumnType.INT.accepts(None)
        assert not ColumnType.INT.accepts(3.5)
        assert not ColumnType.INT.accepts(True)

    def test_real_accepts(self):
        assert ColumnType.REAL.accepts(3.5)
        assert ColumnType.REAL.accepts(3)
        assert not ColumnType.REAL.accepts("3.5")

    def test_text_accepts(self):
        assert ColumnType.TEXT.accepts("abc")
        assert not ColumnType.TEXT.accepts(3)

    def test_event_accepts(self, space):
        assert ColumnType.EVENT.accepts(ALWAYS)
        assert ColumnType.EVENT.accepts(space.atom("e", 0.5))
        assert not ColumnType.EVENT.accepts("T")


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.TEXT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_lookup(self, concept_like_schema):
        assert concept_like_schema.index_of("id") == 0
        assert "event" in concept_like_schema
        with pytest.raises(SchemaError):
            concept_like_schema.index_of("missing")

    def test_event_column_detection(self, concept_like_schema):
        assert concept_like_schema.has_event_column
        assert concept_like_schema.data_names == ("id",)
        plain = Schema([Column("name", ColumnType.TEXT)])
        assert not plain.has_event_column

    def test_project_and_rename(self, concept_like_schema):
        projected = concept_like_schema.project(["event"])
        assert projected.names == ("event",)
        renamed = concept_like_schema.rename({"id": "source"})
        assert renamed.names == ("source", "event")
        with pytest.raises(SchemaError):
            concept_like_schema.rename({"nope": "x"})

    def test_validate_row(self, concept_like_schema):
        concept_like_schema.validate_row(("x", ALWAYS))
        with pytest.raises(SchemaError):
            concept_like_schema.validate_row(("x",))
        with pytest.raises(SchemaError):
            concept_like_schema.validate_row(("x", "not an event"))


class TestTable:
    def test_insert_and_iterate(self, concept_like_schema):
        table = Table("t", concept_like_schema)
        table.insert(("a", ALWAYS))
        table.insert(("b", ALWAYS))
        assert len(table) == 2
        assert {row[0] for row in table} == {"a", "b"}

    def test_duplicate_data_rows_merge_events(self, concept_like_schema, space):
        table = Table("t", concept_like_schema)
        table.insert(("a", space.atom("e1", 0.5)))
        table.insert(("a", space.atom("e2", 0.5)))
        assert len(table) == 1
        event = table.event_of(id="a")
        assert probability(event, space) == pytest.approx(0.75)

    def test_tables_without_event_column_keep_duplicates(self):
        schema = Schema([Column("name", ColumnType.TEXT)])
        table = Table("t", schema, [("x",), ("x",)])
        assert len(table) == 2

    def test_event_of_missing_row(self, concept_like_schema):
        table = Table("t", concept_like_schema)
        assert table.event_of(id="nope") is None

    def test_event_of_requires_event_column(self):
        table = Table("t", Schema([Column("name", ColumnType.TEXT)]))
        with pytest.raises(SchemaError):
            table.event_of(name="x")

    def test_row_dict(self, concept_like_schema):
        table = Table("t", concept_like_schema, [("a", ALWAYS)])
        assert table.row_dict(table.rows[0]) == {"id": "a", "event": ALWAYS}

    def test_renamed_copy_is_independent(self, concept_like_schema):
        table = Table("t", concept_like_schema, [("a", ALWAYS)])
        clone = table.renamed(name="u", columns={"id": "pid"})
        assert clone.schema.names == ("pid", "event")
        clone.insert(("b", ALWAYS))
        assert len(table) == 1

    def test_column_values(self, concept_like_schema):
        table = Table("t", concept_like_schema, [("a", ALWAYS), ("b", ALWAYS)])
        assert table.column_values("id") == ["a", "b"]
