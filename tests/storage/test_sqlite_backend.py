"""Tests for the sqlite3 backend: real SQL views with event propagation."""

import pytest

from repro.events import EventSpace, probability
from repro.dl import ABox, TBox, atomic, complement, parse_concept, retrieve, some
from repro.storage import SqliteBackend


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def tbox():
    tbox = TBox()
    tbox.add_subsumption("WeatherBulletinSubject", "NewsSubject")
    return tbox


@pytest.fixture()
def abox(space):
    box = ABox()
    box.assert_concept("TvProgram", "oprah")
    box.assert_concept("TvProgram", "bbc")
    box.assert_concept("TvProgram", "ch5")
    box.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", space.atom("g:oprah", 0.85))
    box.assert_role("hasGenre", "ch5", "HUMAN-INTEREST", space.atom("g:ch5", 0.95))
    box.assert_role("hasSubject", "bbc", "weather_topic")
    box.assert_role("hasSubject", "ch5", "weather_topic", space.atom("s:ch5", 0.85))
    box.assert_concept("WeatherBulletinSubject", "weather_topic")
    return box


@pytest.fixture()
def backend(space, abox):
    backend = SqliteBackend(space)
    backend.load_abox(abox)
    yield backend
    backend.close()


CONCEPT_TEXTS = [
    "TvProgram",
    "NewsSubject",
    "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}",
    "TvProgram AND EXISTS hasSubject.NewsSubject",
    "EXISTS hasSubject.NewsSubject OR EXISTS hasGenre.{HUMAN-INTEREST}",
    "NOT TvProgram",
    "TvProgram AND NOT EXISTS hasGenre.{HUMAN-INTEREST}",
    "{oprah, bbc}",
    "hasSubject VALUE weather_topic",
    "ALL hasGenre.{HUMAN-INTEREST}",
]


class TestSqlCompilation:
    @pytest.mark.parametrize("text", CONCEPT_TEXTS)
    def test_matches_reference_instance_checker(self, backend, abox, tbox, space, text):
        concept = parse_concept(text)
        via_sql = backend.concept_probabilities(concept, tbox)
        reference = {
            individual.name: probability(event, space)
            for individual, event in retrieve(abox, tbox, concept).items()
        }
        positive_sql = {k: v for k, v in via_sql.items() if v > 1e-12}
        positive_ref = {k: v for k, v in reference.items() if v > 1e-12}
        assert positive_sql.keys() == positive_ref.keys()
        for key, value in positive_sql.items():
            assert value == pytest.approx(positive_ref[key], abs=1e-9)

    def test_missing_concept_table_is_empty(self, backend, tbox):
        assert backend.concept_probabilities(atomic("NoSuch"), tbox) == {}

    def test_missing_role_table_is_empty(self, backend, tbox):
        assert backend.concept_probabilities(some("noRole", atomic("TvProgram")), tbox) == {}


class TestViews:
    def test_create_and_query_view(self, backend, tbox):
        backend.create_concept_view("v_programs", atomic("TvProgram"), tbox)
        rows = backend.query_probabilities("SELECT id, event FROM v_programs")
        assert set(rows) == {"oprah", "bbc", "ch5"}

    def test_view_follows_base_table_updates(self, backend, tbox, space):
        backend.create_concept_view("v_programs", atomic("TvProgram"), tbox)
        backend.execute(
            "INSERT INTO concept_TvProgram (id, event) VALUES (?, 'T')", ("late_show",)
        )
        rows = backend.query_probabilities("SELECT id, event FROM v_programs")
        assert "late_show" in rows

    def test_drop_view(self, backend, tbox):
        backend.create_concept_view("v", atomic("TvProgram"), tbox)
        backend.drop_view("v")
        with pytest.raises(Exception):
            backend.execute("SELECT * FROM v")

    def test_query_events_parses_expressions(self, backend, tbox, space):
        events = backend.query_events(
            backend.concept_sql(parse_concept("EXISTS hasGenre.{HUMAN-INTEREST}"), tbox)
        )
        assert probability(events["oprah"], space) == pytest.approx(0.85)


class TestEventFunctions:
    def test_ev_prob_in_sql(self, backend):
        cursor = backend.execute("SELECT ev_prob('(a x 0.25)')")
        assert cursor.fetchone()[0] == pytest.approx(0.25)

    def test_ev_and_or_not_in_sql(self, backend):
        cursor = backend.execute(
            "SELECT ev_prob(ev_and('(a x 0.5)', ev_not('(a y 0.5)')))"
        )
        assert cursor.fetchone()[0] == pytest.approx(0.25)

    def test_mutex_respected_through_space(self, abox, tbox):
        space = EventSpace()
        space.atom("k", 0.6)
        space.atom("l", 0.3)
        space.declare_mutex("loc", ["k", "l"])
        with SqliteBackend(space) as backend:
            backend.load_abox(abox)
            cursor = backend.execute("SELECT ev_prob(ev_and('(a k 0.6)', '(a l 0.3)'))")
            assert cursor.fetchone()[0] == pytest.approx(0.0)

    def test_context_manager_closes(self, space, abox):
        with SqliteBackend(space) as backend:
            backend.load_abox(abox)
        with pytest.raises(Exception):
            backend.execute("SELECT 1")
