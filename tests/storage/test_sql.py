"""Unit tests for the mini SQL front end."""

import pytest

from repro.errors import ParseError, QueryError
from repro.storage import Column, ColumnType, Database, Schema, SqlSession, parse_sql


@pytest.fixture()
def db():
    db = Database()
    programs = db.create_table(
        "Programs",
        Schema(
            [
                Column("name", ColumnType.TEXT),
                Column("channel", ColumnType.TEXT),
                Column("minutes", ColumnType.INT),
            ]
        ),
    )
    programs.insert_many(
        [
            ("Oprah", "ch5", 60),
            ("BBC news", "bbc", 30),
            ("Channel 5 news", "ch5", 30),
            ("Monty Python", "bbc", 45),
        ]
    )
    return db


@pytest.fixture()
def session(db):
    return SqlSession(db)


class TestParser:
    def test_parse_star(self):
        statement = parse_sql("SELECT * FROM Programs")
        assert statement.columns is None
        assert statement.table == "Programs"

    def test_parse_columns(self):
        statement = parse_sql("SELECT name, channel FROM Programs")
        assert statement.columns == ("name", "channel")

    def test_parse_where_order_limit(self):
        statement = parse_sql(
            "SELECT name FROM Programs WHERE minutes >= 30 AND channel = 'bbc' "
            "ORDER BY minutes DESC, name ASC LIMIT 2;"
        )
        assert statement.where is not None
        assert statement.order_by == (("minutes", True), ("name", False))
        assert statement.limit == 2

    def test_keywords_case_insensitive(self):
        statement = parse_sql("select name from Programs order by name desc")
        assert statement.order_by == (("name", True),)

    def test_string_escape(self):
        statement = parse_sql("SELECT name FROM Programs WHERE name = 'it''s'")
        condition = statement.where
        assert condition is not None and condition.matches({"name": "it's"})

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT FROM Programs",
            "SELECT name Programs",
            "SELECT name FROM",
            "SELECT name FROM Programs WHERE",
            "SELECT name FROM Programs WHERE name ==",
            "SELECT name FROM Programs LIMIT 2.5",
            "SELECT name FROM Programs extra",
            "SELECT name FROM Programs WHERE (name = 'x'",
        ],
    )
    def test_malformed_sql_raises(self, text):
        with pytest.raises(ParseError):
            parse_sql(text)


class TestExecution:
    def test_star_returns_all_columns(self, session):
        result = session.execute("SELECT * FROM Programs")
        assert result.columns == ("name", "channel", "minutes")
        assert len(result) == 4

    def test_where_filters(self, session):
        result = session.execute("SELECT name FROM Programs WHERE channel = 'bbc'")
        assert set(result.column("name")) == {"BBC news", "Monty Python"}

    def test_or_and_not(self, session):
        result = session.execute(
            "SELECT name FROM Programs WHERE channel = 'bbc' OR NOT minutes >= 45"
        )
        assert set(result.column("name")) == {"BBC news", "Monty Python", "Channel 5 news"}

    def test_order_by_multiple_keys(self, session):
        result = session.execute("SELECT name FROM Programs ORDER BY minutes ASC, name ASC")
        assert result.column("name")[0] == "BBC news"
        assert result.column("name")[-1] == "Oprah"

    def test_limit(self, session):
        result = session.execute("SELECT name FROM Programs ORDER BY name ASC LIMIT 2")
        assert result.column("name") == ["BBC news", "Channel 5 news"]

    def test_column_to_column_comparison(self, session):
        result = session.execute("SELECT name FROM Programs WHERE name = channel")
        assert len(result) == 0

    def test_unknown_column_rejected(self, session):
        with pytest.raises(QueryError):
            session.execute("SELECT nope FROM Programs")

    def test_unknown_table_rejected(self, session):
        from repro.errors import UnknownTableError

        with pytest.raises(UnknownTableError):
            session.execute("SELECT x FROM Nope")


class TestVirtualColumns:
    def test_virtual_column_available_everywhere(self, session):
        session.register_virtual_column(
            "Programs", "preferencescore", lambda row: 0.9 if row["channel"] == "ch5" else 0.2
        )
        result = session.execute(
            "SELECT name, preferencescore FROM Programs "
            "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC"
        )
        assert set(result.column("name")) == {"Oprah", "Channel 5 news"}
        assert all(score > 0.5 for score in result.column("preferencescore"))

    def test_paper_intro_query_shape(self, session):
        """The query of the paper's introduction runs verbatim."""
        session.register_virtual_column("Programs", "preferencescore", lambda row: 0.6)
        result = session.execute(
            "SELECT name, preferencescore\n"
            "FROM Programs\n"
            "WHERE preferencescore > 0.5\n"
            "ORDER BY preferencescore DESC"
        )
        assert result.columns == ("name", "preferencescore")
        assert len(result) == 4

    def test_render_produces_aligned_text(self, session):
        result = session.execute("SELECT name, minutes FROM Programs ORDER BY name LIMIT 2")
        text = result.render()
        assert "name" in text and "minutes" in text
        assert len(text.splitlines()) == 4
