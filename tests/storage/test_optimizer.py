"""Tests for schema inference and the algebra optimiser."""

import pytest

from repro.errors import QueryError
from repro.events import ALWAYS, EventSpace, probability
from repro.storage import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Schema,
    Select,
    Union,
    explain_plan,
    optimize,
    schema_of,
)
from repro.storage.algebra import AndPredicate, ColumnComparison


@pytest.fixture()
def space():
    return EventSpace()


@pytest.fixture()
def db(space):
    db = Database()
    a = db.create_concept_table("A")
    a.insert(("x", space.atom("ax", 0.8)))
    a.insert(("y", space.atom("ay", 0.5)))
    b = db.create_concept_table("B")
    b.insert(("x", space.atom("bx", 0.5)))
    b.insert(("z", ALWAYS))
    individuals = db.ensure_individuals_table()
    for name in ("x", "y", "z"):
        individuals.insert((name, ALWAYS))
    people = db.create_table(
        "People",
        Schema([Column("name", ColumnType.TEXT), Column("age", ColumnType.INT)]),
    )
    people.insert_many([("ann", 30), ("bob", 40)])
    pets = db.create_table(
        "Pets",
        Schema([Column("owner", ColumnType.TEXT), Column("species", ColumnType.TEXT)]),
    )
    pets.insert_many([("ann", "cat"), ("bob", "dog"), ("bob", "fish")])
    return db


def _rows(db, node):
    table = db.evaluate(node)
    return sorted(
        tuple(value if not hasattr(value, "atoms") else "<event>" for value in row)
        for row in table
    )


def _assert_equivalent(db, node):
    optimized = optimize(db, node)
    assert _rows(db, node) == _rows(db, optimized)
    return optimized


class TestSchemaInference:
    def test_scan_and_constant(self, db):
        assert schema_of(db, Scan("People")).names == ("name", "age")

    def test_view_schema(self, db):
        db.create_view("v", Project(Scan("People"), ("name",)))
        assert schema_of(db, Scan("v")).names == ("name",)

    def test_join_schema_matches_evaluation(self, db):
        node = Join(Scan("People"), Scan("Pets"), on=(("name", "owner"),))
        assert schema_of(db, node) == db.evaluate(node).schema

    def test_event_join_schema(self, db):
        node = Join(Scan("concept_A"), Scan("concept_B"), on=(("id", "id"),))
        assert schema_of(db, node) == db.evaluate(node).schema

    def test_rename_difference_union(self, db):
        node = Rename(Union(Scan("concept_A"), Scan("concept_B")), (("id", "pid"),))
        assert schema_of(db, node).names == ("pid", "event")
        node = Difference(Scan("concept_A"), Scan("concept_B"))
        assert schema_of(db, node).names == ("id", "event")


class TestRewrites:
    def test_merge_nested_selects(self, db):
        node = Select(
            Select(Scan("People"), Comparison("age", ">", 20)),
            Comparison("name", "=", "bob"),
        )
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)

    def test_select_through_union(self, db):
        node = Select(Union(Scan("concept_A"), Scan("concept_B")), Comparison("id", "=", "x"))
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Union)

    def test_select_through_difference(self, db):
        node = Select(
            Difference(Scan("Individuals"), Scan("concept_B")),
            Comparison("id", "!=", "y"),
        )
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Difference)

    def test_select_pushed_into_join_sides(self, db):
        node = Select(
            Join(Scan("People"), Scan("Pets"), on=(("name", "owner"),)),
            AndPredicate((Comparison("age", ">", 35), Comparison("species", "=", "dog"))),
        )
        optimized = _assert_equivalent(db, node)
        # Both conjuncts moved below the join: top node is the join itself.
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)

    def test_cross_side_predicate_stays_above_join(self, db):
        node = Select(
            Join(Scan("People"), Scan("Pets"), on=(("name", "owner"),)),
            ColumnComparison("name", "!=", "species"),
        )
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Select)

    def test_collapse_projections(self, db):
        node = Project(Project(Scan("People"), ("name", "age")), ("name",))
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Scan)

    def test_identity_rename_dropped(self, db):
        node = Rename(Scan("People"), (("name", "name"),))
        optimized = _assert_equivalent(db, node)
        assert isinstance(optimized, Scan)

    def test_event_probabilities_preserved(self, db, space):
        node = Select(
            Union(Scan("concept_A"), Scan("concept_B")),
            Comparison("id", "=", "x"),
        )
        original = db.evaluate(node)
        optimized = db.evaluate(optimize(db, node))
        assert probability(original.event_of(id="x"), space) == pytest.approx(
            probability(optimized.event_of(id="x"), space)
        )


class TestExplainPlan:
    def test_plan_rendering(self, db):
        node = Select(
            Join(Scan("People"), Scan("Pets"), on=(("name", "owner"),)),
            Comparison("age", ">", 35),
        )
        text = explain_plan(node)
        lines = text.splitlines()
        assert lines[0].startswith("select")
        assert any("join" in line for line in lines)
        assert sum(1 for line in lines if "scan" in line) == 2

    def test_unknown_node_rejected(self, db):
        class Bogus:
            pass

        with pytest.raises(QueryError):
            schema_of(db, Bogus())
