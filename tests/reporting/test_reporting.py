"""Tests for tables, budgeted timing and growth fitting."""

import pytest

from repro.reporting import (
    ExperimentRecord,
    TextTable,
    fit_growth,
    ranking_table,
    render_records,
    run_with_budget,
    timed,
)


class TestTextTable:
    def test_render_aligned(self):
        table = TextTable(["rules", "time"])
        table.add_row([1, 0.5])
        table.add_row([10, 123.456])
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("rules")
        assert "123.5" in text  # 4 significant digits

    def test_render_markdown(self):
        table = TextTable(["a"])
        table.add_row(["x"])
        assert table.render(markdown=True).startswith("| a")

    def test_row_width_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])


class TestTiming:
    def test_timed_returns_result_and_elapsed(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_fit_growth_recovers_doubling(self):
        times = [0.01 * (2.0**k) for k in range(1, 6)]
        fit = fit_growth(list(range(1, 6)), times)
        assert fit.ratio == pytest.approx(2.0, rel=1e-6)
        assert fit.predict(6) == pytest.approx(0.01 * 64, rel=1e-6)

    def test_fit_growth_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth([1], [0.5])
        with pytest.raises(ValueError):
            fit_growth([1, 1], [0.5, 0.5])

    def test_run_with_budget_skips_predicted_blowup(self):
        import time

        def make_run(parameter):
            def run():
                time.sleep(0.001 * (4**parameter))

            return run

        runs = run_with_budget([1, 2, 3, 4, 5, 6, 7, 8], make_run, budget_seconds=0.3)
        completed = [run for run in runs if run.completed]
        skipped = [run for run in runs if not run.completed]
        assert completed, "some parameters must complete"
        assert skipped, "the blow-up must eventually be skipped"
        # Skips only at the tail, never in the middle.
        flags = [run.completed for run in runs]
        assert flags == sorted(flags, reverse=True)

    def test_run_with_budget_all_fast(self):
        runs = run_with_budget([1, 2, 3], lambda p: (lambda: None), budget_seconds=10.0)
        assert all(run.completed for run in runs)


class TestRankingTable:
    def test_renders_document_scores(self):
        from repro.core.scoring import DocumentScore

        table = ranking_table(
            [DocumentScore("ch5", 0.6006), DocumentScore("bbc", 0.18)],
            names={"ch5": "Channel 5 news"},
        )
        text = table.render()
        assert text.splitlines()[0].split() == ["rank", "document", "score"]
        assert "Channel 5 news" in text
        assert "0.6006" in text

    def test_renders_items_with_parts(self):
        from repro.engine import RankedItem

        table = ranking_table(
            [
                RankedItem("a", 0.5, preference=0.6, query_dependent=0.4, position=1),
                RankedItem("b", 0.3, preference=0.3, position=2),
            ]
        )
        text = table.render()
        header = text.splitlines()[0].split()
        assert header == ["rank", "document", "score", "query_dep", "preference"]
        assert "0.4000" in text
        assert "-" in text.splitlines()[3]  # b has no query part

    def test_rejects_unscored_items(self):
        with pytest.raises(AttributeError):
            ranking_table([object()])


class TestRecords:
    def test_render_records(self):
        records = [
            ExperimentRecord("E1", "Table 1", "0.6006", "0.6006", "reproduced"),
            ExperimentRecord("E3", "scaling", "blow-up at 7", "blow-up at 7", "shape holds"),
        ]
        text = render_records(records)
        assert "E1" in text and "shape holds" in text
        markdown = render_records(records, markdown=True)
        assert markdown.startswith("| id")
