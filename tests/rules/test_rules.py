"""Unit tests for preference rules, the repository and the DSL."""

import pytest

from repro.errors import ParseError, RuleError
from repro.events import ALWAYS, EventSpace
from repro.dl import ABox, Individual, TBox, TOP, parse_concept
from repro.rules import (
    PreferenceRule,
    RuleRepository,
    load_rules,
    parse_rule,
    parse_rules,
    render_rules,
)
from repro.storage import Database

R1_TEXT = "RULE r1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"
R2_TEXT = "RULE r2: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"


@pytest.fixture()
def r1():
    return parse_rule(R1_TEXT)


@pytest.fixture()
def r2():
    return parse_rule(R2_TEXT)


class TestPreferenceRule:
    def test_fields(self, r1):
        assert r1.rule_id == "r1"
        assert r1.sigma == 0.8
        assert not r1.is_default
        assert r1.context == parse_concept("Weekend")

    def test_sigma_validation(self):
        with pytest.raises(RuleError):
            PreferenceRule.parse("bad", "TOP", "TvProgram", 1.5)

    def test_empty_id_rejected(self):
        with pytest.raises(RuleError):
            PreferenceRule("", TOP, parse_concept("TvProgram"), 0.5)

    def test_default_rule(self):
        rule = PreferenceRule("d", TOP, parse_concept("TvProgram"), 0.5)
        assert rule.is_default
        assert rule.to_dsl().startswith("RULE d: ALWAYS PREFER")

    def test_feature_pair(self, r1):
        g, f = r1.feature_pair
        assert g == "Weekend"
        assert "HUMAN-INTEREST" in f

    def test_with_sigma(self, r1):
        adjusted = r1.with_sigma(0.5)
        assert adjusted.sigma == 0.5
        assert adjusted.context == r1.context


class TestDsl:
    def test_round_trip(self, r1, r2):
        repo = RuleRepository([r1, r2])
        text = render_rules(repo)
        reparsed = parse_rules(text)
        assert len(reparsed) == 2
        assert reparsed.get("r1").preference == r1.preference
        assert reparsed.get("r2").sigma == r2.sigma

    def test_comments_and_blanks_ignored(self):
        text = "\n".join(["# heading", "", R1_TEXT + "  # trailing", ""])
        repo = parse_rules(text)
        assert len(repo) == 1

    def test_always_rule(self):
        rule = parse_rule("RULE d0: ALWAYS PREFER TvProgram WITH 0.5")
        assert rule.is_default

    @pytest.mark.parametrize(
        "line",
        [
            "RULE x: PREFER TvProgram WITH 0.5",
            "RULE x: WHEN Weekend PREFER TvProgram",
            "RULE x: WHEN Weekend WITH 0.5",
            "RULE x: WHEN Weekend PREFER TvProgram WITH much",
            "RULE : WHEN A PREFER B WITH 0.5",
            "nonsense",
        ],
    )
    def test_malformed_rules_rejected(self, line):
        with pytest.raises(ParseError):
            parse_rule(line)

    def test_parse_error_carries_line_number(self):
        text = R1_TEXT + "\nRULE broken PREFER X WITH 0.5"
        with pytest.raises(ParseError) as excinfo:
            parse_rules(text)
        assert "line 2" in str(excinfo.value)

    def test_load_rules_from_file(self, tmp_path):
        path = tmp_path / "rules.prefs"
        path.write_text(R1_TEXT + "\n" + R2_TEXT + "\n", encoding="utf-8")
        repo = load_rules(path)
        assert {rule.rule_id for rule in repo} == {"r1", "r2"}


class TestRepository:
    def test_unique_ids(self, r1):
        repo = RuleRepository([r1])
        with pytest.raises(RuleError):
            repo.add(r1)

    def test_get_remove(self, r1, r2):
        repo = RuleRepository([r1, r2])
        assert repo.get("r2") is r2
        removed = repo.remove("r1")
        assert removed is r1
        assert "r1" not in repo
        with pytest.raises(RuleError):
            repo.get("r1")

    def test_default_rules_listed(self, r1):
        default = PreferenceRule("d0", TOP, parse_concept("TvProgram"), 0.5)
        repo = RuleRepository([r1, default])
        assert repo.default_rules == (default,)

    def test_applicable_filters_by_context(self, r1, r2):
        space = EventSpace()
        abox = ABox()
        peter = Individual("peter")
        abox.assert_concept("Weekend", peter, ALWAYS, dynamic=True)
        abox.assert_concept("Breakfast", peter, space.atom("brk", 0.7), dynamic=True)
        repo = RuleRepository([r1, r2])
        applicable = repo.applicable(abox, TBox(), peter, space)
        by_id = {a.rule.rule_id: a for a in applicable}
        assert by_id["r1"].context_probability == pytest.approx(1.0)
        assert by_id["r2"].context_probability == pytest.approx(0.7)

    def test_applicable_drops_impossible_contexts(self, r1, r2):
        abox = ABox()
        peter = Individual("peter")
        abox.assert_concept("Weekend", peter)
        repo = RuleRepository([r1, r2])
        applicable = repo.applicable(abox, TBox(), peter)
        assert [a.rule.rule_id for a in applicable] == ["r1"]

    def test_covers_context(self, r1):
        abox = ABox()
        peter = Individual("peter")
        abox.register_individual(peter)
        repo = RuleRepository([r1])
        assert not repo.covers_context(abox, TBox(), peter)
        abox.assert_concept("Weekend", peter)
        assert repo.covers_context(abox, TBox(), peter)

    def test_default_rule_always_applicable(self):
        default = PreferenceRule("d0", TOP, parse_concept("TvProgram"), 0.5)
        repo = RuleRepository([default])
        abox = ABox()
        peter = Individual("peter")
        abox.register_individual(peter)
        assert repo.covers_context(abox, TBox(), peter)

    def test_table_round_trip(self, r1, r2):
        repo = RuleRepository([r1, r2])
        db = Database()
        table = repo.to_table(db)
        assert len(table) == 2
        restored = RuleRepository.from_table(table)
        assert restored.get("r1").preference == r1.preference
        assert restored.get("r2").sigma == pytest.approx(0.9)
