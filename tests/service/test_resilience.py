"""The robustness layer: deadlines, stale serving, breaker, chaos.

Every failure branch is driven deterministically — fake clocks for the
breaker and the cache, the seeded :class:`FaultInjector` for engine
failures — so these tests never depend on machine speed except where
they measure the deadline bound itself (generous margins there).
"""

import threading
import time

import pytest

from repro.cache import InMemoryCacheAdapter
from repro.errors import EngineConfigError, EngineError
from repro.reason import clear_registry
from repro.service import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    RankingService,
    ServiceConfig,
    ServiceRequest,
    SharedFleetState,
    clamp_timeout,
    current_deadline,
    deadline_scope,
)
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch


@pytest.fixture(autouse=True)
def fresh_registry_state():
    clear_registry()
    yield
    clear_registry()


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FixedRng:
    """random.Random stand-in with a constant random()."""

    def __init__(self, value: float = 0.0):
        self.value = value

    def random(self) -> float:
        return self.value


def make_service(config=None, cache=None, **kwargs) -> RankingService:
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    return RankingService(
        registry,
        config if config is not None else ServiceConfig(max_concurrency=4),
        cache=cache,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_after_counts_down_and_checks(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        deadline.check()  # no raise
        clock.advance(2.5)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_non_positive_budget_rejected(self):
        with pytest.raises(EngineConfigError):
            Deadline.after(0.0)

    def test_scope_publishes_and_restores(self):
        assert current_deadline() is None
        deadline = Deadline.after(5.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_deadline_exceeded_is_not_a_repro_error(self):
        # ReproError maps to 400 in the pipeline; a blown deadline must
        # stay a 504, so the types must never overlap.
        from repro.errors import ReproError

        assert not issubclass(DeadlineExceeded, ReproError)

    def test_clamp_timeout(self):
        assert clamp_timeout(None, 2.0, 30.0) == 2.0
        assert clamp_timeout(5.0, 2.0, 30.0) == 5.0
        assert clamp_timeout(99.0, 2.0, 30.0) == 30.0  # clamped to max
        assert clamp_timeout(5.0, None, 30.0) is None  # deadlines disabled
        assert clamp_timeout(None, None, 30.0) is None
        # The floor: a near-zero client timeout cannot manufacture
        # guaranteed 504s (which would poison the breaker's accounting).
        assert clamp_timeout(0.001, 2.0, 30.0, minimum=0.05) == 0.05
        assert clamp_timeout(None, 2.0, 30.0, minimum=5.0) == 2.0  # default wins

    def test_min_timeout_floor_config_validated(self):
        with pytest.raises(EngineError):
            ServiceConfig(min_request_timeout=-1.0)
        with pytest.raises(EngineError):
            ServiceConfig(min_request_timeout=5.0, max_request_timeout=1.0)

    def test_timeout_request_parameter(self):
        request = ServiceRequest.from_params(
            {"tenant": ["alice"], "timeout": ["0.5"]}
        )
        assert request.timeout == 0.5
        with pytest.raises(EngineError, match="timeout"):
            ServiceRequest.from_params({"tenant": ["a"], "timeout": ["-1"]})
        with pytest.raises(EngineError, match="timeout"):
            ServiceRequest.from_params({"tenant": ["a"], "timeout": ["soon"]})


class TestDeadlineInPipeline:
    def test_wedged_rank_answers_504_within_twice_the_timeout(self):
        timeout = 0.15
        service = make_service(
            ServiceConfig(
                max_concurrency=4,
                request_timeout=timeout,
                breaker_enabled=False,
            ),
            fault_injector=FaultInjector(rank_delay=1.0),
        )
        started = time.monotonic()
        reply = service.rank({"tenant": ["alice"], "context": ["Weekend"]})
        elapsed = time.monotonic() - started
        assert reply.status == 504
        assert "deadline" in reply.body["error"]
        assert elapsed < 2 * timeout + 0.25  # the acceptance bound + sched slack
        assert service.metrics.outcomes().get("timeout") == 1
        assert service.metrics.counters("resilience").get("timeouts") == 1
        # The abandoned work unit still owns the slot; once its sleep
        # ends the slot must come back — never leak.
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline:
            if service.available_slots() == 4:
                break
            time.sleep(0.02)
        assert service.available_slots() == 4
        service.close()

    def test_client_timeout_override_is_clamped(self):
        service = make_service(
            ServiceConfig(
                max_concurrency=4,
                request_timeout=5.0,
                max_request_timeout=0.1,
                breaker_enabled=False,
            ),
            fault_injector=FaultInjector(rank_delay=1.0),
        )
        started = time.monotonic()
        reply = service.rank({"tenant": ["alice"], "timeout": ["60"]})
        elapsed = time.monotonic() - started
        assert reply.status == 504
        assert elapsed < 1.0  # clamped to max_request_timeout, not 60s
        service.close()

    def test_request_timeout_none_disables_the_executor(self):
        service = make_service(
            ServiceConfig(max_concurrency=4, request_timeout=None)
        )
        assert service._rank_pool is None
        reply = service.rank({"tenant": ["alice"], "context": ["Weekend"]})
        assert reply.ok
        service.close()


# ---------------------------------------------------------------------------
# Circuit breaker (unit, fake clock + rng)
# ---------------------------------------------------------------------------

def make_breaker(**overrides) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        window=10.0,
        min_requests=4,
        failure_threshold=0.5,
        cooldown=5.0,
        jitter=0.0,
        clock=clock,
        rng=FixedRng(0.0),
    )
    defaults.update(overrides)
    return CircuitBreaker(**defaults), clock


class TestCircuitBreaker:
    def test_opens_at_failure_ratio_with_volume(self):
        breaker, _clock = make_breaker()
        for _ in range(3):
            breaker.record_failure("t")
        # Three failures but min_requests=4: not enough volume yet.
        assert breaker.state() == "closed"
        breaker.record_failure("t")
        assert breaker.state() == "open"
        decision = breaker.allow("t")
        assert not decision.allowed
        assert decision.scope == "global"
        assert decision.retry_after == pytest.approx(5.0)

    def test_successes_keep_it_closed(self):
        breaker, _clock = make_breaker()
        for _ in range(10):
            breaker.record_success("t")
        breaker.record_failure("t")
        assert breaker.state() == "closed"  # 1/11 failure ratio

    def test_window_forgets_old_failures(self):
        breaker, clock = make_breaker(min_requests=4)
        for _ in range(3):
            breaker.record_failure("t")
        clock.advance(11.0)  # past the 10s window
        breaker.record_failure("t")
        # Only one failure is in the window now: volume too low to open.
        assert breaker.state() == "closed"

    def test_half_open_probe_and_close(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure("t")
        assert breaker.state() == "open"
        clock.advance(5.1)  # cooldown elapsed (jitter 0)
        probe = breaker.allow("t")
        assert probe.allowed and probe.state == "half_open"
        # Second concurrent request is shed while the probe is out.
        second = breaker.allow("t")
        assert not second.allowed and second.state == "half_open"
        breaker.record_success("t")
        assert breaker.state() == "closed"
        assert breaker.allow("t").allowed

    def test_half_open_failure_reopens(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure("t")
        clock.advance(5.1)
        assert breaker.allow("t").allowed
        breaker.record_failure("t")
        assert breaker.state() == "open"
        assert not breaker.allow("t").allowed

    def test_jitter_extends_the_cooldown(self):
        breaker, clock = make_breaker(jitter=0.2, rng=FixedRng(1.0))
        for _ in range(4):
            breaker.record_failure("t")
        clock.advance(5.5)  # past base cooldown, inside the jittered one
        assert not breaker.allow("t").allowed
        clock.advance(0.6)  # past 5.0 * 1.2
        assert breaker.allow("t").allowed

    def test_tenant_isolation(self):
        breaker, _clock = make_breaker(min_requests=2)
        # 'bad' fails hard; the global stream also sees successes from
        # 'good', keeping the global ratio under the threshold.
        for _ in range(3):
            breaker.record_success("good")
        breaker.record_failure("bad")
        breaker.record_failure("bad")
        assert breaker.state("bad") == "open"
        assert breaker.state() == "closed"
        assert breaker.allow("good").allowed
        shed = breaker.allow("bad")
        assert not shed.allowed
        assert shed.scope == "tenant:bad"
        assert "bad" in breaker.snapshot()["open_tenants"]

    def test_transition_callback_fires(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            min_requests=2,
            cooldown=1.0,
            jitter=0.0,
            clock=clock,
            rng=FixedRng(0.0),
            on_transition=lambda scope, old, new: seen.append((scope, old, new)),
        )
        breaker.record_failure("t")
        breaker.record_failure("t")
        clock.advance(1.1)
        breaker.allow("t")
        breaker.record_success("t")
        states = [new for _scope, _old, new in seen if _scope == "global"]
        assert states == ["open", "half_open", "closed"]

    def test_tenant_table_is_bounded(self):
        breaker, _clock = make_breaker(max_tenants=8)
        for index in range(50):
            breaker.record_failure(f"tenant_{index}")
        assert breaker.snapshot()["tracked_tenants"] <= 8

    def test_probe_decision_names_its_scopes(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure("t")
        clock.advance(5.1)
        probe = breaker.allow("t")
        assert probe.allowed
        assert "global" in probe.probes and "tenant:t" in probe.probes
        assert breaker.allow("fresh").probes == ()  # closed path: no debt

    def test_cancelled_probe_frees_the_slot(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure("t")
        clock.advance(5.1)
        probe = breaker.allow("t")
        assert probe.allowed
        assert not breaker.allow("t").allowed  # single probe out
        # The probe's request terminated without an engine outcome
        # (admission shed, 400): unless cancelled, no record_* call
        # ever settles it and the breaker wedges half-open forever.
        breaker.cancel_probe(probe)
        next_probe = breaker.allow("t")
        assert next_probe.allowed and next_probe.probes

    def test_lost_probe_is_reclaimed_after_cooldown(self):
        breaker, clock = make_breaker()
        for _ in range(4):
            breaker.record_failure("t")
        clock.advance(5.1)
        assert breaker.allow("t").allowed  # probe admitted, owner dies
        assert not breaker.allow("t").allowed
        clock.advance(5.1)  # a whole cooldown with no outcome: presumed lost
        assert breaker.allow("t").allowed  # the backstop reclaims the slot

    def test_tenant_denial_cancels_the_global_probe(self):
        breaker, clock = make_breaker(min_requests=2)
        breaker.record_failure("other")
        breaker.record_failure("other")  # opens global (and tenant 'other')
        clock.advance(3.0)
        breaker.record_failure("bad")  # tenant 'bad' opens 3s later
        breaker.record_failure("bad")
        clock.advance(2.1)  # global cooldown over; 'bad' still open
        denied = breaker.allow("bad")  # global grants its probe, tenant denies
        assert not denied.allowed and denied.scope == "tenant:bad"
        # The global probe the denied request briefly held must have
        # been handed back, or the whole service is blacked out.
        assert breaker.allow("fresh").allowed


# ---------------------------------------------------------------------------
# Breaker in the pipeline + stale serving
# ---------------------------------------------------------------------------

def breaker_config(**overrides) -> ServiceConfig:
    defaults = dict(
        max_concurrency=4,
        breaker_min_requests=2,
        breaker_failure_threshold=0.5,
        breaker_window=60.0,
        breaker_cooldown=60.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestBreakerInPipeline:
    def test_repeated_engine_errors_open_and_shed(self):
        service = make_service(
            breaker_config(),
            fault_injector=FaultInjector(rank_error_rate=1.0, seed=3),
        )
        for _ in range(2):
            reply = service.rank({"tenant": ["alice"], "context": ["Weekend"]})
            assert reply.status == 500
        shed = service.rank({"tenant": ["alice"], "context": ["Weekend"]})
        assert shed.status == 503
        assert "circuit breaker open" in shed.body["error"]
        assert "Retry-After" in shed.headers
        assert int(shed.headers["Retry-After"]) >= 1
        outcomes = service.metrics.outcomes()
        assert outcomes.get("shed_breaker") == 1
        counters = service.metrics.counters("resilience")
        assert counters.get("rank_errors") == 2
        assert counters.get("shed.breaker") == 1
        # Both scopes opened on the same failure stream.
        assert counters.get("breaker_open.global") == 1
        assert counters.get("breaker_open.tenant") == 1
        service.close()

    def test_readiness_degrades_while_breaker_open(self):
        service = make_service(
            breaker_config(),
            fault_injector=FaultInjector(rank_error_rate=1.0, seed=3),
        )
        status, body = service.readiness()
        assert status == 200 and body["status"] == "ready"
        for _ in range(2):
            service.rank({"tenant": ["alice"], "context": ["Weekend"]})
        status, body = service.readiness()
        assert status == 503
        assert body["status"] == "degraded"
        assert "breaker_open" in body["problems"]
        service.close()

    def test_readiness_degrades_on_failed_fleet_worker(self):
        service = make_service()
        service.fleet_state = SharedFleetState()
        status, _body = service.readiness()
        assert status == 200
        service.fleet_state.mark_failed()
        status, body = service.readiness()
        assert status == 503
        assert "fleet_workers_failed" in body["problems"]
        assert body["failed_workers"] == 1
        service.close()

    def make_half_open_service(self, **config_overrides):
        """A service whose breaker just finished its cooldown for
        'alice': the next request through is the half-open probe."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            min_requests=2,
            cooldown=5.0,
            jitter=0.0,
            clock=clock,
            rng=FixedRng(0.0),
        )
        service = make_service(breaker_config(**config_overrides), breaker=breaker)
        breaker.record_failure("alice")
        breaker.record_failure("alice")
        assert breaker.state() == "open"
        clock.advance(5.1)
        return service, breaker

    def test_shed_probe_request_cannot_wedge_the_breaker(self):
        service, breaker = self.make_half_open_service()
        # Saturate admission so the half-open probe request is shed.
        for _ in range(4):
            assert service._admission.acquire(timeout=1.0)
        try:
            reply = service.rank({"tenant": ["alice"], "top_k": ["3"]})
            assert reply.status == 503
        finally:
            for _ in range(4):
                service._admission.release()
        # The shed request held the probe but could never record an
        # outcome; unless the probe was handed back, the breaker is
        # wedged half-open and every request from now on is denied —
        # a permanent outage.
        assert breaker.allow("alice").allowed
        service.close()

    def test_bad_request_probe_cannot_wedge_the_breaker(self):
        service, breaker = self.make_half_open_service()
        reply = service.rank({"tenant": ["alice"], "context": ["Breakfast:nope"]})
        assert reply.status == 400  # the probe request died as a client error
        assert breaker.allow("alice").allowed
        service.close()

    def test_client_shortened_timeout_does_not_feed_the_breaker(self):
        # One hostile/misconfigured client spamming tiny timeouts must
        # not open the global circuit for every tenant.
        service = make_service(
            ServiceConfig(
                max_concurrency=4,
                request_timeout=5.0,
                min_request_timeout=0.05,
                breaker_min_requests=2,
                breaker_window=60.0,
                breaker_cooldown=60.0,
            ),
            fault_injector=FaultInjector(
                rank_delay=1.0, tenants=frozenset({"alice"})
            ),
        )
        for _ in range(3):
            reply = service.rank({"tenant": ["alice"], "timeout": ["0.08"]})
            assert reply.status == 504
        assert service.breaker.state() == "closed"
        assert service.rank({"tenant": ["bob"], "context": ["Weekend"]}).ok
        counters = service.metrics.counters("resilience")
        assert counters.get("timeouts") == 3
        assert counters.get("timeouts.client") == 3
        service.close()

    def test_overload_503_carries_retry_after(self):
        service = make_service(
            ServiceConfig(max_concurrency=2, queue_timeout=0.0)
        )
        for _ in range(2):
            assert service._admission.acquire(timeout=1.0)
        try:
            reply = service.rank({"tenant": ["alice"]})
        finally:
            for _ in range(2):
                service._admission.release()
        assert reply.status == 503
        assert "Retry-After" in reply.headers
        assert service.metrics.outcomes() == {"rejected": 1}
        assert service.metrics.counters("resilience").get("shed.overload") == 1
        service.close()


class TestStaleServing:
    def make_stale_setup(self, ttl=5.0, **config_overrides):
        clock = FakeClock()
        cache = InMemoryCacheAdapter(
            max_entries=64, ttl=ttl, clock=clock, stale_grace=600.0
        )
        service = make_service(
            breaker_config(**config_overrides), cache=cache
        )
        return service, clock

    def warm(self, service, context=("Weekend", "Breakfast")):
        request = {"tenant": ["alice"], "context": list(context), "top_k": ["3"]}
        first = service.rank(request)
        assert first.ok
        second = service.rank(request)
        assert second.ok and second.body.get("cached") is True
        return request

    def test_engine_error_serves_recently_expired_body(self):
        service, clock = self.make_stale_setup(ttl=5.0)
        request = self.warm(service)
        clock.advance(10.0)  # entry expired 5s ago, within stale_max_age
        service.fault_injector = FaultInjector(rank_error_rate=1.0, seed=1)
        reply = service.rank(request)
        assert reply.status == 200
        assert reply.body["stale"] is True
        assert reply.body["stale_reason"] == "error"
        assert reply.body["stale_age_seconds"] == pytest.approx(5.0)
        assert reply.headers.get("Warning", "").startswith("110 ")
        assert reply.body["items"]  # a real ranked body, not an error
        assert service.metrics.outcomes().get("ok_stale") == 1
        counters = service.metrics.counters("resilience")
        assert counters.get("stale_served") == 1
        assert counters.get("stale_served.error") == 1
        service.close()

    def test_stale_beyond_max_age_fails_for_real(self):
        service, clock = self.make_stale_setup(
            ttl=5.0, stale_max_age=3.0
        )
        request = self.warm(service)
        clock.advance(10.0)  # expired 5s ago > stale_max_age=3
        service.fault_injector = FaultInjector(rank_error_rate=1.0, seed=1)
        reply = service.rank(request)
        assert reply.status == 500
        assert service.metrics.counters("resilience").get("stale_miss") == 1
        service.close()

    def test_digest_stale_family_fallback(self):
        service, _clock = self.make_stale_setup(ttl=None)
        self.warm(service, context=("Weekend", "Breakfast"))
        service.fault_injector = FaultInjector(rank_error_rate=1.0, seed=1)
        # Different context -> different view digest -> exact key
        # misses; the family (tenant + query shape) still has the last
        # body ranked under the old context.
        reply = service.rank(
            {"tenant": ["alice"], "context": ["Weekend"], "top_k": ["3"]}
        )
        assert reply.status == 200
        assert reply.body["stale"] is True
        assert reply.body["stale_context_digest"] is True
        assert reply.body["context"] == ["Weekend"]  # the request's echo
        service.close()

    def test_breaker_open_serves_stale(self):
        service, clock = self.make_stale_setup(ttl=5.0)
        request = self.warm(service)
        clock.advance(10.0)
        service.fault_injector = FaultInjector(rank_error_rate=1.0, seed=1)
        for _ in range(2):
            service.rank(request)  # stale-served errors still record_failure
        assert service.breaker.state() == "open"
        reply = service.rank(request)
        assert reply.status == 200 and reply.body["stale_reason"] == "breaker_open"
        service.close()

    def test_pure_cache_hit_served_even_while_breaker_open(self):
        service, _clock = self.make_stale_setup(ttl=None)
        request = self.warm(service)
        # Force the breaker open without touching the cache entry.
        for _ in range(2):
            service.breaker.record_failure("alice")
        assert service.breaker.state() == "open"
        reply = service.rank(request)
        assert reply.ok and reply.body.get("cached") is True
        assert not reply.body.get("stale")
        service.close()

    def test_serve_stale_can_be_disabled(self):
        service, clock = self.make_stale_setup(ttl=5.0, serve_stale=False)
        request = self.warm(service)
        clock.advance(10.0)
        service.fault_injector = FaultInjector(rank_error_rate=1.0, seed=1)
        reply = service.rank(request)
        assert reply.status == 500
        service.close()


# ---------------------------------------------------------------------------
# Fault injector
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_inactive_by_default(self):
        injector = FaultInjector()
        assert not injector.active
        injector.before_rank("anyone")  # no-op
        assert not injector.should_kill_worker()

    def test_error_rate_is_seeded_and_bounded(self):
        injector = FaultInjector(rank_error_rate=0.5, seed=42)
        faults = 0
        for _ in range(200):
            try:
                injector.before_rank("t")
            except InjectedFault:
                faults += 1
        assert 60 < faults < 140  # ~50% of 200, seeded so stable
        replay = FaultInjector(rank_error_rate=0.5, seed=42)
        replay_faults = 0
        for _ in range(200):
            try:
                replay.before_rank("t")
            except InjectedFault:
                replay_faults += 1
        assert replay_faults == faults

    def test_tenant_targeting(self):
        injector = FaultInjector(rank_error_rate=1.0, tenants=frozenset({"bad"}))
        injector.before_rank("good")  # not targeted: no raise
        with pytest.raises(InjectedFault):
            injector.before_rank("bad")

    def test_kill_every_counts_responses(self):
        injector = FaultInjector(worker_kill_every=3)
        decisions = [injector.should_kill_worker() for _ in range(7)]
        assert decisions == [False, False, True, False, False, True, False]

    def test_from_env(self):
        injector = FaultInjector.from_env(
            {
                "REPRO_FAULT_RANK_DELAY": "0.25",
                "REPRO_FAULT_RANK_ERROR_RATE": "0.1",
                "REPRO_FAULT_KILL_EVERY": "50",
                "REPRO_FAULT_SEED": "7",
                "REPRO_FAULT_TENANTS": "alice, bob",
            }
        )
        assert injector.rank_delay == 0.25
        assert injector.rank_error_rate == 0.1
        assert injector.worker_kill_every == 50
        assert injector.seed == 7
        assert injector.tenants == frozenset({"alice", "bob"})
        assert FaultInjector.from_env({}).active is False

    def test_validation(self):
        with pytest.raises(EngineConfigError):
            FaultInjector(rank_error_rate=1.5)
        with pytest.raises(EngineConfigError):
            FaultInjector(rank_delay=-1.0)


# ---------------------------------------------------------------------------
# The chaos hammer: slots always come back
# ---------------------------------------------------------------------------

class TestChaosHammer:
    def test_admission_slots_survive_a_fault_storm(self):
        """8 threads hammer a service with injected delays, errors and
        tight deadlines; whatever mix of 200/500/503/504 comes out,
        every admission slot must return once the storm settles."""
        config = ServiceConfig(
            max_concurrency=4,
            queue_timeout=0.05,
            request_timeout=0.1,
            stale_max_age=300.0,
            breaker_enabled=True,
            breaker_min_requests=10,
            breaker_failure_threshold=0.6,
            breaker_cooldown=0.2,
        )
        service = make_service(
            config,
            cache=InMemoryCacheAdapter(max_entries=256, ttl=60.0),
            fault_injector=FaultInjector(
                rank_delay=0.02, rank_error_rate=0.3, seed=11
            ),
        )
        statuses = []
        lock = threading.Lock()

        def hammer(worker_id: int) -> None:
            for index in range(12):
                tenant = f"tenant_{(worker_id + index) % 3}"
                reply = service.rank(
                    {"tenant": [tenant], "context": ["Weekend"], "top_k": ["3"]}
                )
                with lock:
                    statuses.append(reply.status)

        threads = [
            threading.Thread(target=hammer, args=(worker_id,), daemon=True)
            for worker_id in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        assert len(statuses) == 96
        assert set(statuses) <= {200, 500, 503, 504}
        # Let abandoned work units finish their injected sleeps.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if service.available_slots() == config.max_concurrency:
                break
            time.sleep(0.02)
        assert service.available_slots() == config.max_concurrency
        service.close()
