"""RankingService: the staged request pipeline over a tenant fleet."""

import threading

import pytest

from repro.errors import EngineError
from repro.reason import clear_registry
from repro.service import (
    RankingService,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
)
from repro.tenants import TenantRegistry
from repro.workloads import EXPECTED_TABLE1_SCORES, build_tvtouch


@pytest.fixture(autouse=True)
def fresh_registry_state():
    clear_registry()
    yield
    clear_registry()


@pytest.fixture()
def service():
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    return RankingService(registry, ServiceConfig(max_concurrency=4))


class TestParsing:
    def test_params_round_trip(self):
        request = ServiceRequest.from_params(
            {
                "tenant": ["alice"],
                "context": ["Weekend", "Breakfast:0.7"],
                "top_k": ["3"],
                "documents": ["a,b", "c"],
                "explain": ["true"],
            }
        )
        assert request == ServiceRequest(
            tenant="alice",
            context=("Weekend", "Breakfast:0.7"),
            top_k=3,
            documents=("a", "b", "c"),
            explain=True,
        )

    def test_missing_tenant_rejected(self):
        with pytest.raises(EngineError, match="tenant"):
            ServiceRequest.from_params({"context": ["Weekend"]})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(EngineError, match="unknown rank parameters"):
            ServiceRequest.from_params({"tenant": ["a"], "frobnicate": ["1"]})

    def test_bad_top_k_rejected(self):
        with pytest.raises(EngineError, match="top_k"):
            ServiceRequest.from_params({"tenant": ["a"], "top_k": ["three"]})

    def test_payload_accepts_plain_json_values(self):
        request = ServiceRequest.from_payload(
            {"tenant": "bob", "context": "Weekend", "top_k": 2}
        )
        assert request.tenant == "bob"
        assert request.context == ("Weekend",)
        assert request.top_k == 2

    def test_payload_rejects_non_object(self):
        with pytest.raises(EngineError, match="JSON object"):
            ServiceRequest.from_payload(["tenant"])


class TestPipeline:
    def test_rank_reproduces_table1_scores(self, service):
        reply = service.rank(
            {"tenant": ["peter"], "context": ["Weekend", "Breakfast"]}
        )
        assert isinstance(reply, ServiceResponse) and reply.ok
        scores = {item["document"]: item["score"] for item in reply.body["items"]}
        # The minted tenant user is 'peter' (the tenant id), so this is
        # exactly the paper's Section 4.2 arithmetic.
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert scores[document] == pytest.approx(expected, abs=1e-9)
        assert reply.body["tenant"] == "peter"
        assert reply.body["context"] == ["Weekend", "Breakfast"]

    def test_standing_context_survives_between_requests(self, service):
        install = service.install_context("alice", ["Weekend", "Breakfast"])
        assert install.ok
        first = service.rank({"tenant": ["alice"]})
        second = service.rank({"tenant": ["alice"]})
        assert first.ok and second.ok
        assert first.body["items"] == second.body["items"]
        assert second.body["from_cache"] is True
        top = first.body["items"][0]
        assert top["document"] == "channel5_news"

    def test_empty_context_clears_the_standing_one(self, service):
        service.install_context("carol", ["Weekend", "Breakfast"])
        with_context = service.rank({"tenant": ["carol"]})
        cleared = service.rank({"tenant": ["carol"], "context": []})
        contextual = {item["document"]: item["score"] for item in with_context.body["items"]}
        top_scores = {item["document"]: item["score"] for item in cleared.body["items"]}
        # Context-free no rule applies: every document scores a flat 1.0
        # (empty product), so the ranking stops discriminating.
        assert set(top_scores.values()) == {1.0}
        assert len(set(contextual.values())) > 1

    def test_bad_context_spec_is_a_400_not_a_raise(self, service):
        reply = service.rank({"tenant": ["alice"], "context": ["Breakfast:nope"]})
        assert reply.status == 400
        assert "probability" in reply.body["error"]
        assert service.metrics.outcomes().get("bad_request") == 1

    def test_bad_spec_leaves_the_standing_context_intact(self, service):
        """A rejected delta must not half-install: the first (valid)
        spec of a bad menu must not clobber the standing context."""
        service.install_context("fred", ["Weekend", "Breakfast"])
        before = service.rank({"tenant": ["fred"]}).body["items"]
        # Valid first spec, invalid second: the whole delta is refused.
        reply = service.rank(
            {"tenant": ["fred"], "context": ["Weekend", "Breakfast:2.0"]}
        )
        assert reply.status == 400
        after = service.rank({"tenant": ["fred"]}).body["items"]
        assert after == before  # still Weekend+Breakfast, not just Weekend

    def test_bad_spec_in_install_context_keeps_previous(self, service):
        service.install_context("gina", ["Weekend", "Breakfast"])
        before = service.rank({"tenant": ["gina"]}).body["items"]
        reply = service.install_context("gina", ["Weekend", "Breakfast:nope"])
        assert reply.status == 400
        assert service.rank({"tenant": ["gina"]}).body["items"] == before

    def test_top_k_truncates(self, service):
        reply = service.rank(
            {"tenant": ["dora"], "context": ["Weekend"], "top_k": ["2"]}
        )
        assert reply.ok and len(reply.body["items"]) == 2

    def test_explain_attaches_motivations(self, service):
        reply = service.rank(
            {"tenant": ["eve"], "context": ["Weekend", "Breakfast"], "explain": ["1"]}
        )
        assert reply.ok
        assert "explanation" in reply.body and "r1" in reply.body["explanation"]

    def test_admission_rejection_is_a_503(self):
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=8)
        service = RankingService(
            registry, ServiceConfig(max_concurrency=1, queue_timeout=0.0)
        )
        assert service._admission.acquire(timeout=1.0)
        try:
            reply = service.rank({"tenant": ["alice"]})
        finally:
            service._admission.release()
        assert reply.status == 503
        assert service.metrics.outcomes() == {"rejected": 1}
        # And the slot is usable again afterwards.
        assert service.rank({"tenant": ["alice"]}).ok

    def test_context_install_is_admission_controlled_too(self):
        """POST /context can mint a whole session, so overload must
        shed it like /rank — not grant it unbounded concurrency."""
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=8)
        service = RankingService(
            registry, ServiceConfig(max_concurrency=1, queue_timeout=0.0)
        )
        assert service._admission.acquire(timeout=1.0)
        try:
            reply = service.install_context("alice", ["Weekend"])
        finally:
            service._admission.release()
        assert reply.status == 503
        assert service.install_context("alice", ["Weekend"]).ok

    def test_per_stage_timings_recorded(self, service):
        service.rank({"tenant": ["alice"], "context": ["Weekend"]})
        snapshot = service.metrics.snapshot()
        for stage in ("parse", "admit", "resolve", "context", "rank", "render", "total"):
            assert snapshot["stages"][stage]["count"] == 1, stage

    def test_include_timings_attaches_to_body(self):
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=8)
        service = RankingService(
            registry, ServiceConfig(include_timings=True)
        )
        reply = service.rank({"tenant": ["alice"]})
        assert reply.ok
        assert set(reply.body["timings_ms"]) >= {"rank", "total"}

    def test_health_reports_fleet_occupancy(self, service):
        service.rank({"tenant": ["alice"]})
        health = service.health()
        assert health["status"] == "ok"
        assert health["registry"]["active_sessions"] == 1
        assert health["registry"]["shards"] == 4


class TestConcurrentRequests:
    def test_parallel_tenants_all_answer_correctly(self, service):
        errors = []
        replies = {}

        def worker(tenant):
            try:
                reply = service.rank(
                    {"tenant": [tenant], "context": ["Weekend", "Breakfast"]}
                )
                replies[tenant] = reply
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"tenant_{n}",)) for n in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(replies) == 12
        for reply in replies.values():
            assert reply.ok
            assert reply.body["items"][0]["document"] == "channel5_news"
