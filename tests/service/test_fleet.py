"""The pre-fork serving fleet: shared port, supervision, clean shutdown."""

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.cache import InMemoryCacheAdapter
from repro.errors import EngineError
from repro.service import FleetSupervisor, RankingService, ServiceConfig, supports_fleet
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch

pytestmark = pytest.mark.skipif(
    not supports_fleet(), reason="fleet requires the POSIX fork start method"
)


def factory(worker_info):
    registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=64)
    return RankingService(
        registry,
        ServiceConfig(max_concurrency=8),
        cache=InMemoryCacheAdapter(),
        worker_info=dict(worker_info),
    )


def get(url, path, timeout=10):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def assert_gone(pids, patience=5.0):
    deadline = time.monotonic() + patience
    remaining = set(pids)
    while remaining and time.monotonic() < deadline:
        for pid in list(remaining):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                remaining.discard(pid)
        if remaining:
            time.sleep(0.05)
    assert not remaining, f"orphaned fleet workers: {sorted(remaining)}"


@pytest.fixture()
def fleet():
    supervisor = FleetSupervisor(factory, workers=2, port=0, start_timeout=60.0)
    supervisor.start()
    try:
        yield supervisor
    finally:
        supervisor.stop()


class TestFleet:
    def test_two_workers_share_one_port_and_rank(self, fleet):
        assert len(fleet.worker_pids()) == 2
        body = get(fleet.url, "/rank?tenant=alice&context=Weekend&top_k=3")
        assert body["items"][0]["document"] == "channel5_news"
        assert body["items"][0]["score"] == pytest.approx(0.77, abs=1e-9)
        # Health answers come from whichever worker the kernel picks;
        # each reports its own pid and fleet identity.
        seen = set()
        for _ in range(20):
            worker = get(fleet.url, "/healthz")["worker"]
            assert worker["workers"] == 2
            seen.add(worker["pid"])
        assert seen <= set(fleet.worker_pids())

    def test_metrics_report_worker_and_cache(self, fleet):
        for _ in range(8):
            get(fleet.url, "/rank?tenant=alice&context=Weekend&top_k=3")
        snapshot = get(fleet.url, "/metrics")
        assert snapshot["worker"]["pid"] in fleet.worker_pids()
        assert snapshot["worker"]["index"] in (0, 1)
        assert snapshot["cache"]["enabled"] is True

    def test_parent_health_aggregates(self, fleet):
        health = fleet.health()
        assert health["status"] == "ok"
        assert health["alive"] == 2
        assert [entry["index"] for entry in health["fleet"]] == [0, 1]

    def test_dead_worker_is_respawned(self, fleet):
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            health = fleet.health()
            if health["alive"] == 2 and health["respawns"] >= 1:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - diagnostic path
            pytest.fail(f"worker never respawned: {fleet.health()}")
        assert victim not in fleet.worker_pids()
        # The respawned worker rebinds the same (ephemeral) port.
        assert get(fleet.url, "/rank?tenant=bob&top_k=2")["items"]

    def test_stop_leaves_no_orphans_and_frees_the_port(self):
        supervisor = FleetSupervisor(factory, workers=2, port=0, start_timeout=60.0)
        supervisor.start()
        pids = supervisor.worker_pids()
        assert get(supervisor.url, "/healthz")["status"] == "ok"
        supervisor.stop()
        assert_gone(pids)
        with pytest.raises(Exception):
            get(supervisor.url, "/healthz", timeout=2)

    def test_stop_is_idempotent(self):
        supervisor = FleetSupervisor(factory, workers=1, port=0, start_timeout=60.0)
        with supervisor:
            pass
        supervisor.stop()

    def test_rejects_zero_workers(self):
        with pytest.raises(EngineError):
            FleetSupervisor(factory, workers=0)


def ttl_factory(worker_info):
    """A fleet whose worker 0 SIGKILLs itself shortly after boot —
    the crash-loop detector's drill vector."""
    from repro.service import FaultInjector

    registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=64)
    injector = (
        FaultInjector(worker_ttl=0.3)
        if worker_info.get("index") == 0
        else FaultInjector()
    )
    return RankingService(
        registry,
        ServiceConfig(max_concurrency=8),
        cache=InMemoryCacheAdapter(),
        worker_info=dict(worker_info),
        fault_injector=injector,
    )


class TestCrashLoopDetection:
    def test_crash_looping_worker_is_marked_failed(self):
        supervisor = FleetSupervisor(
            ttl_factory,
            workers=2,
            port=0,
            start_timeout=60.0,
            respawn_backoff=0.05,
            respawn_backoff_max=0.2,
            crash_loop_threshold=3,
            crash_loop_window=10.0,
        )
        supervisor.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                health = supervisor.health()
                if health["failed"]:
                    break
                time.sleep(0.1)
            else:  # pragma: no cover - diagnostic path
                pytest.fail(f"crash loop never detected: {supervisor.health()}")
            health = supervisor.health()
            assert health["status"] == "degraded"
            assert [entry["index"] for entry in health["failed"]] == [0]
            assert health["failed"][0]["deaths_in_window"] >= 3
            assert supervisor.fleet_state.failed_workers == 1
            respawns_at_detection = health["respawns"]
            # The detector must stop feeding the slot: no further
            # respawns accumulate once it is marked failed.
            time.sleep(1.0)
            later = supervisor.health()
            assert later["respawns"] == respawns_at_detection
            assert not later["pending_respawns"]
            # The healthy sibling keeps serving...
            assert get(supervisor.url, "/rank?tenant=alice&top_k=2")["items"]
            # ...but reports the fleet degraded via /readyz.
            import urllib.error

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(supervisor.url, "/readyz")
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert "fleet_workers_failed" in body["problems"]
        finally:
            supervisor.stop()
        assert_gone(supervisor.worker_pids())

    def test_clean_exits_do_not_count_toward_the_crash_loop(self):
        """Exitcode 0 is a graceful cycle (direct SIGTERM, drained,
        returned 0), not a crash: it must be respawned without feeding
        the crash-loop window — an operator cycling one worker a few
        times must never fence the slot."""
        supervisor = FleetSupervisor(factory, workers=1, port=0)
        try:
            now = time.monotonic()
            for _ in range(5):
                supervisor._note_death(0, now, 0)
            assert not supervisor._failed  # clean exits: never fenced
            assert len(supervisor._pending) == 5  # but always respawned
            supervisor._pending.clear()
            for _ in range(3):
                supervisor._note_death(0, now, -signal.SIGKILL)
            assert 0 in supervisor._failed  # real crashes still fence
        finally:
            supervisor.stop()

    def test_graceful_sigterm_cycles_are_respawned_not_fenced(self):
        supervisor = FleetSupervisor(
            factory,
            workers=2,
            port=0,
            start_timeout=60.0,
            respawn_backoff=0.05,
            respawn_backoff_max=0.2,
            crash_loop_threshold=3,
            crash_loop_window=60.0,
        )
        supervisor.start()
        try:
            for cycle in range(3):
                victim = next(
                    entry["pid"]
                    for entry in supervisor.health()["fleet"]
                    if entry["index"] == 0 and entry["alive"]
                )
                os.kill(victim, signal.SIGTERM)  # worker drains, exits 0
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    health = supervisor.health()
                    pids = [
                        entry["pid"]
                        for entry in health["fleet"]
                        if entry["index"] == 0 and entry["alive"]
                    ]
                    if health["alive"] == 2 and pids and victim not in pids:
                        break
                    time.sleep(0.05)
                else:  # pragma: no cover - diagnostic path
                    pytest.fail(
                        f"worker 0 not respawned after graceful cycle "
                        f"{cycle}: {supervisor.health()}"
                    )
            # Three clean exits inside one window: cycling, not crashing.
            health = supervisor.health()
            assert not health["failed"]
            assert health["status"] == "ok"
            assert supervisor.fleet_state.failed_workers == 0
        finally:
            supervisor.stop()
        assert_gone(supervisor.worker_pids())

    def test_spaced_deaths_keep_respawning(self, fleet):
        """Deaths spaced wider than the crash-loop window are bad luck,
        not a crash loop: the supervisor must keep respawning."""
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            health = fleet.health()
            if health["alive"] == 2 and health["respawns"] >= 1:
                break
            time.sleep(0.05)
        health = fleet.health()
        assert health["alive"] == 2
        assert not health["failed"]


class TestStartMethods:
    """The spawn path: picklable factories, per-worker listeners."""

    def test_spawn_fleet_serves_and_respawns(self):
        """The spawn path end to end: fresh-interpreter workers behind
        one SO_REUSEPORT-balanced port, surviving a worker kill."""
        if not supports_fleet("spawn"):
            pytest.skip("spawn fleet needs the spawn start method and SO_REUSEPORT")
        supervisor = FleetSupervisor(
            factory, workers=2, port=0, start_timeout=120.0, start_method="spawn"
        )
        supervisor.start()
        try:
            assert supervisor.start_method == "spawn"
            assert supervisor.mode == "reuseport"
            body = get(supervisor.url, "/rank?tenant=alice&context=Weekend&top_k=3")
            assert body["items"][0]["document"] == "channel5_news"
            victim = supervisor.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                health = supervisor.health()
                if health["alive"] == 2 and health["respawns"] >= 1:
                    break
                time.sleep(0.1)
            else:  # pragma: no cover - diagnostic path
                pytest.fail(f"spawned worker never respawned: {supervisor.health()}")
            assert get(supervisor.url, "/rank?tenant=bob&top_k=2")["items"]
        finally:
            supervisor.stop()
        assert_gone(supervisor.worker_pids())

    def test_spawn_rejects_unpicklable_factory(self):
        if not supports_fleet("spawn"):
            pytest.skip("spawn fleet needs the spawn start method and SO_REUSEPORT")
        with pytest.raises(EngineError, match="picklable"):
            FleetSupervisor(lambda info: None, workers=1, start_method="spawn")

    def test_unknown_start_method_rejected(self):
        with pytest.raises(EngineError, match="start_method"):
            FleetSupervisor(factory, workers=1, start_method="threads")
