"""Wire-level protocol behaviour of both HTTP gateways.

Raw-socket tests (no ``urllib`` smoothing) against the
thread-per-connection and the event-loop gateway: pipelined keep-alive
requests, slow/partial header delivery, oversized bodies, malformed
request lines and Content-Length headers, and mid-response client
disconnects.  Each case asserts the right status code *and* that the
gateway is still healthy afterwards — no wedged worker thread, no
wedged loop, in-flight accounting back to zero.
"""

import json
import socket
import threading
import time

import pytest

from repro.reason import clear_registry
from repro.service import RankingService, ServiceConfig
from repro.service.aio import AioRankingServer
from repro.service.http import RankingHTTPServer
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch

#: Short slow-client deadline so the 408 path is testable in wall time.
READ_DEADLINE = 0.5


@pytest.fixture(params=["threads", "aio"])
def gateway(request):
    clear_registry()
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    service = RankingService(registry, ServiceConfig(max_concurrency=4))
    if request.param == "aio":
        server = AioRankingServer(
            ("127.0.0.1", 0), service, read_deadline=READ_DEADLINE
        )
    else:
        server = RankingHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    server.kind = request.param
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()
    clear_registry()


class Wire:
    """A raw client connection with a buffered response reader.

    Pipelined servers may deliver several responses in one segment;
    the buffer keeps the surplus for the next :meth:`read_response`.
    """

    def __init__(self, server):
        host, port = server.server_address[:2]
        self.sock = socket.create_connection((host, port), timeout=10)
        self.sock.settimeout(10)
        self.buffer = b""

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def close(self) -> None:
        self.sock.close()

    def _fill(self) -> None:
        chunk = self.sock.recv(65536)
        if not chunk:
            raise ConnectionError(f"connection closed: buffer={self.buffer!r}")
        self.buffer += chunk

    def read_response(self) -> tuple[int, dict, bytes]:
        """One HTTP response off the wire: (status, headers, body)."""
        while b"\r\n\r\n" not in self.buffer:
            self._fill()
        head, _, self.buffer = self.buffer.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(b":")
            headers[name.decode().strip().lower()] = value.decode().strip()
        length = int(headers.get("content-length", 0))
        while len(self.buffer) < length:
            self._fill()
        body, self.buffer = self.buffer[:length], self.buffer[length:]
        return status, headers, body

    def assert_closed(self) -> None:
        """The server hangs up: EOF (never a fresh response)."""
        assert self.sock.recv(65536) == b""


def assert_still_serving(server) -> None:
    """The gateway answers a fresh connection and drains to idle."""
    wire = Wire(server)
    try:
        wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        status, _, body = wire.read_response()
        assert status == 200
        assert json.loads(body)["status"] == "ok"
    finally:
        wire.close()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and server.inflight:
        time.sleep(0.01)
    assert server.inflight == 0


class TestKeepAliveAndPipelining:
    def test_sequential_requests_reuse_one_connection(self, gateway):
        wire = Wire(gateway)
        try:
            for _ in range(3):
                wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                status, headers, _ = wire.read_response()
                assert status == 200
                assert headers.get("connection") != "close"
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_pipelined_requests_answer_in_order(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(
                b"GET /rank?tenant=pipe&context=Weekend&top_k=1 HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                b"GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            first = json.loads(wire.read_response()[2])
            assert first["items"][0]["position"] == 1  # /rank answered first
            assert json.loads(wire.read_response()[2])["status"] == "ok"
            assert json.loads(wire.read_response()[2])["status"] == "ready"
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_request_split_across_many_packets_still_parses(self, gateway):
        wire = Wire(gateway)
        try:
            for piece in (
                b"GET /health",
                b"z HTTP/1.1\r\n",
                b"Host: t\r\n",
                b"\r\n",
            ):
                wire.send(piece)
                time.sleep(0.02)
            assert wire.read_response()[0] == 200
        finally:
            wire.close()
        assert_still_serving(gateway)


class TestSlowClients:
    def test_partial_head_hits_the_read_deadline(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n")  # never finished
            if gateway.kind == "aio":
                # The loop answers 408 and closes once the deadline passes.
                status, headers, _ = wire.read_response()
                assert status == 408
                assert headers.get("connection") == "close"
                section = gateway.service.metrics_snapshot()["gateway"]
                assert section["read_timeouts"] >= 1
            else:
                # The threading gateway has no read deadline: finishing
                # the request late must still be answered (no wedge).
                time.sleep(READ_DEADLINE + 0.2)
                wire.send(b"\r\n")
                assert wire.read_response()[0] == 200
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_idle_keep_alive_connection_is_not_timed_out(self, gateway):
        # No bytes at all: the connection is idle, not slow — it must
        # survive past the read deadline and then serve normally.
        wire = Wire(gateway)
        try:
            time.sleep(READ_DEADLINE + 0.2)
            wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            assert wire.read_response()[0] == 200
        finally:
            wire.close()
        assert_still_serving(gateway)


class TestMalformedRequests:
    def test_malformed_request_line_is_400(self, gateway):
        # Four words: both gateways reject with a parseable 400 status
        # line (the stdlib handler needs a valid HTTP-version token to
        # emit one at all).
        wire = Wire(gateway)
        try:
            wire.send(b"GET / extra HTTP/1.1\r\n\r\n")
            assert wire.read_response()[0] == 400
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_garbage_request_line_does_not_wedge(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(b"NOT-EVEN-HTTP\r\n\r\n")
            if gateway.kind == "aio":
                assert wire.read_response()[0] == 400
            # The stdlib handler treats this as HTTP/0.9 and answers
            # without a status line; either way the connection dies.
            with pytest.raises(ConnectionError):
                while True:
                    wire.read_response()
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_malformed_content_length_is_400(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(
                b"POST /context HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            status, _, body = wire.read_response()
            assert status == 400
            assert "Content-Length" in json.loads(body)["error"]
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_oversized_body_is_413(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(
                b"POST /context HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 9999999\r\n\r\n"
            )
            status, headers, body = wire.read_response()
            assert status == 413
            assert "bytes" in json.loads(body)["error"]
            if gateway.kind == "aio":
                assert headers.get("connection") == "close"
            # The unread body poisons the connection: both must hang up.
            wire.assert_closed()
        finally:
            wire.close()
        assert_still_serving(gateway)

    def test_missing_body_is_400_and_keeps_the_connection(self, gateway):
        wire = Wire(gateway)
        try:
            wire.send(b"POST /context HTTP/1.1\r\nHost: t\r\n\r\n")
            status, _, body = wire.read_response()
            assert status == 400
            assert "body" in json.loads(body)["error"]
            # Framing was intact (zero-length body): reuse is safe.
            wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            assert wire.read_response()[0] == 200
        finally:
            wire.close()
        assert_still_serving(gateway)


class TestClientDisconnects:
    def test_disconnect_before_the_response_does_not_wedge(self, gateway):
        # Fire a real rank (still in flight), then vanish without
        # reading the response.
        for _ in range(3):
            wire = Wire(gateway)
            wire.send(
                b"GET /rank?tenant=gone&context=Weekend&top_k=1 HTTP/1.1\r\n"
                b"Host: t\r\n\r\n"
            )
            wire.close()
        assert_still_serving(gateway)

    def test_disconnect_mid_request_head_does_not_wedge(self, gateway):
        wire = Wire(gateway)
        wire.send(b"GET /rank?tenant=gone HTTP/1.1\r\nHost")
        wire.close()
        assert_still_serving(gateway)


class TestGatewayMetricsSection:
    def test_aio_gateway_reports_wire_metrics(self, gateway):
        if gateway.kind != "aio":
            pytest.skip("gateway section is the event-loop gateway's")
        wire = Wire(gateway)
        try:
            wire.send(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            assert wire.read_response()[0] == 200
        finally:
            wire.close()
        # The loop counts the request just *after* writing the response,
        # so give it a beat to run that line.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            section = gateway.service.metrics_snapshot()["gateway"]
            if section["requests"] >= 1:
                break
            time.sleep(0.01)
        assert section["kind"] == "aio"
        assert section["requests"] >= 1
        assert section["connections"]["accepted"] >= 1
        assert set(section["stages"]) == {"read", "parse", "write"}
        assert "p95_ms" in section["loop_lag"]

    def test_threading_gateway_has_no_attached_section(self, gateway):
        if gateway.kind != "threads":
            pytest.skip("covers the threading gateway's default")
        section = gateway.service.metrics_snapshot()["gateway"]
        assert section == {"attached": False}
