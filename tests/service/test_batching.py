"""The cross-request batch scheduler and its pipeline wiring.

Correctness bar: under any interleaving of arrivals, deadlines and
scoring failures, every request submitted to the scheduler gets exactly
one outcome — its sequential-identical scores, or the error the
sequential path would have raised, or `DeadlineExceeded` without ever
entering a kernel pass. Nothing is lost, duplicated or silently held
past its deadline.
"""

import threading
import time

import pytest

from repro.engine import RankingEngine, RankRequest
from repro.errors import EngineError, ReproError
from repro.service import (
    BatchScheduler,
    Deadline,
    DeadlineExceeded,
    RankingService,
    ServiceConfig,
)
from repro.service import batching as batching_module
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def engine():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)
    engine.rank()  # publish the basis so prepare_rank is batchable
    return engine


def prepare(engine, probability):
    prepared = engine.prepare_rank((f"Weekend:{probability}",), RankRequest())
    assert prepared.response is None, "fixture must produce batchable snapshots"
    return prepared


def sequential_scores(prepared):
    return {s.document: s.value for s in prepared.kernel.score_documents()}


def run_concurrently(scheduler, jobs):
    """Submit every (prepared, deadline) pair from its own thread."""
    outcomes = [None] * len(jobs)

    def submit(index, prepared, deadline):
        try:
            outcomes[index] = ("ok", scheduler.execute(prepared, deadline))
        except BaseException as exc:  # noqa: BLE001 - the outcome under test
            outcomes[index] = ("error", exc)

    threads = [
        threading.Thread(target=submit, args=(index, prepared, deadline))
        for index, (prepared, deadline) in enumerate(jobs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "a scheduler call never returned"
    return outcomes


class TestSchedulerConfig:
    def test_rejects_singleton_batches(self):
        with pytest.raises(ReproError):
            BatchScheduler(max_batch_size=1)

    def test_rejects_negative_wait(self):
        with pytest.raises(ReproError):
            BatchScheduler(max_wait_us=-1)

    def test_rejects_empty_queue(self):
        with pytest.raises(ReproError):
            BatchScheduler(queue_limit=0)


class TestBatchedExecution:
    def test_concurrent_group_fuses_and_matches_sequential(self, engine):
        scheduler = BatchScheduler(max_batch_size=4, max_wait_us=200_000)
        jobs = [(prepare(engine, f"0.{n}1"), None) for n in range(4)]
        expected = [sequential_scores(prepared) for prepared, _ in jobs]
        outcomes = run_concurrently(scheduler, jobs)
        for (state, scores_map), reference in zip(outcomes, expected):
            assert state == "ok"
            assert {k: v.value for k, v in scores_map.items()} == pytest.approx(
                reference, abs=1e-9
            )
        snapshot = scheduler.snapshot()
        assert snapshot["batches"] == 1
        assert snapshot["batch_size_histogram"] == {4: 1}
        assert snapshot["rows_scored"] == 4

    def test_full_batch_flushes_without_waiting_out_the_window(self, engine):
        scheduler = BatchScheduler(max_batch_size=2, max_wait_us=30_000_000)
        jobs = [(prepare(engine, "0.21"), None), (prepare(engine, "0.84"), None)]
        started = time.perf_counter()
        outcomes = run_concurrently(scheduler, jobs)
        assert time.perf_counter() - started < 5.0
        assert all(state == "ok" for state, _ in outcomes)

    def test_lone_leader_flushes_at_the_window(self, engine):
        scheduler = BatchScheduler(max_batch_size=8, max_wait_us=10_000)
        scores_map = scheduler.execute(prepare(engine, "0.33"), None)
        assert scores_map
        snapshot = scheduler.snapshot()
        assert snapshot["batch_size_histogram"] == {1: 1}
        assert snapshot["bypass"]["singleton_flushes"] == 1

    def test_expired_deadline_never_enters_a_kernel_pass(self, engine, monkeypatch):
        scheduler = BatchScheduler(max_batch_size=4, max_wait_us=1_000)

        def forbidden(prepared):
            raise AssertionError("expired request reached the scorer")

        monkeypatch.setattr(batching_module, "score_prepared_batch", forbidden)
        expired = Deadline(expires_at=time.monotonic() - 1.0, timeout=0.01)
        with pytest.raises(DeadlineExceeded):
            scheduler.execute(prepare(engine, "0.5"), expired)
        snapshot = scheduler.snapshot()
        assert snapshot["expired_in_queue"] == 1
        assert snapshot["batches"] == 0

    def test_deadline_clips_the_batching_window(self, engine):
        # Window 30s, member deadline 150ms: the flush must come at the
        # deadline, not the window, and must be counted as forced.
        scheduler = BatchScheduler(max_batch_size=8, max_wait_us=30_000_000)
        deadline = Deadline.after(0.15)
        started = time.perf_counter()
        scores_map = scheduler.execute(prepare(engine, "0.44"), deadline)
        elapsed = time.perf_counter() - started
        assert scores_map
        assert elapsed < 5.0, "leader waited the full window despite a deadline"
        assert scheduler.snapshot()["deadline_flushes"] == 1

    def test_scoring_failure_contained_per_entry(self, engine, monkeypatch):
        real = batching_module.score_prepared_batch
        poison = prepare(engine, "0.66")

        def flaky(prepared):
            if any(item is poison for item in prepared):
                raise RuntimeError("injected scorer fault")
            return real(prepared)

        monkeypatch.setattr(batching_module, "score_prepared_batch", flaky)
        scheduler = BatchScheduler(max_batch_size=2, max_wait_us=500_000)
        healthy = prepare(engine, "0.12")
        outcomes = run_concurrently(scheduler, [(healthy, None), (poison, None)])
        by_state = dict(outcomes)
        # The healthy mate is re-scored alone; only the poisoned one errors.
        assert "ok" in by_state and "error" in by_state
        assert isinstance(by_state["error"], RuntimeError)

    def test_close_drains_open_groups(self, engine):
        scheduler = BatchScheduler(max_batch_size=8, max_wait_us=30_000_000)
        outcome = []

        def leader():
            outcome.append(scheduler.execute(prepare(engine, "0.71"), None))

        thread = threading.Thread(target=leader)
        thread.start()
        deadline = time.perf_counter() + 5
        while scheduler.snapshot()["waiting"] == 0:
            assert time.perf_counter() < deadline, "leader never enqueued"
            time.sleep(0.005)
        scheduler.close()
        thread.join(timeout=5)
        assert not thread.is_alive(), "close() left the leader waiting"
        assert outcome and outcome[0], "drained leader must still be scored"

    def test_post_close_bypasses_sequentially(self, engine):
        scheduler = BatchScheduler(max_batch_size=4, max_wait_us=30_000_000)
        scheduler.close()
        scores_map = scheduler.execute(prepare(engine, "0.27"), None)
        assert scores_map
        snapshot = scheduler.snapshot()
        assert snapshot["bypass"]["closed"] == 1
        assert snapshot["batches"] == 0

    def test_hammer_no_request_lost_or_duplicated(self, engine):
        # Churn: 24 requests across batches, mixed deadlines (some
        # pre-expired), every live request must come back with its own
        # sequential-identical scores, every expired one with a 504.
        scheduler = BatchScheduler(max_batch_size=4, max_wait_us=20_000)
        jobs = []
        expired_indices = set()
        for n in range(24):
            prepared = prepare(engine, f"0.{n + 10}")
            if n % 6 == 5:
                deadline = Deadline(expires_at=time.monotonic() - 1.0, timeout=0.01)
                expired_indices.add(n)
            else:
                deadline = Deadline.after(30.0)
            jobs.append((prepared, deadline))
        expected = [sequential_scores(prepared) for prepared, _ in jobs]
        outcomes = run_concurrently(scheduler, jobs)
        for index, ((state, payload), reference) in enumerate(zip(outcomes, expected)):
            if index in expired_indices:
                assert state == "error"
                assert isinstance(payload, DeadlineExceeded)
            else:
                assert state == "ok", f"request {index} got {payload!r}"
                assert {
                    k: v.value for k, v in payload.items()
                } == pytest.approx(reference, abs=1e-9)
        snapshot = scheduler.snapshot()
        assert snapshot["requests"] == 24
        assert snapshot["expired_in_queue"] == len(expired_indices)
        assert snapshot["batched_requests"] == 24 - len(expired_indices)


class TestPipelineWiring:
    def make_service(self, **overrides):
        config = dict(
            max_concurrency=8,
            batch_max_size=8,
            batch_max_wait_us=20_000,
        )
        config.update(overrides)
        registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
        return RankingService(registry, ServiceConfig(**config))

    def test_config_validation(self):
        with pytest.raises(EngineError):
            ServiceConfig(batch_max_size=-1)
        with pytest.raises(EngineError):
            ServiceConfig(batch_max_wait_us=-0.5)
        with pytest.raises(EngineError):
            ServiceConfig(batch_queue_limit=0)

    def test_disabled_by_default(self):
        service = self.make_service(batch_max_size=0)
        try:
            assert service.batcher is None
            assert service.metrics_snapshot()["batching"] == {"enabled": False}
        finally:
            service.close()

    def test_batched_service_matches_unbatched(self):
        batched = self.make_service()
        sequential = self.make_service(batch_max_size=0)
        try:
            warm = {"tenant": ["warm"], "context": ["Weekend:0.5"], "top_k": ["3"]}
            assert batched.rank(warm).status == 200
            assert sequential.rank(warm).status == 200

            def params(n):
                return {
                    "tenant": [f"t{n}"],
                    "context": [f"Weekend:0.{n + 10}"],
                    "top_k": ["3"],
                }

            replies = [None] * 8
            threads = [
                threading.Thread(
                    target=lambda n=n: replies.__setitem__(n, batched.rank(params(n)))
                )
                for n in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            for n, reply in enumerate(replies):
                assert reply.status == 200
                reference = sequential.rank(params(n))
                assert reply.body["items"] == reference.body["items"]
            snapshot = batched.metrics_snapshot()["batching"]
            assert snapshot["enabled"]
            assert snapshot["batched_requests"] >= 1
            config = batched.metrics_snapshot()["config"]
            assert config["batch_max_size"] == 8
        finally:
            batched.close()
            sequential.close()

    def test_close_shuts_the_batcher(self):
        service = self.make_service()
        service.close()
        assert service.batcher is not None
        # The batcher is drained: anything submitted now bypasses to a
        # sequential score instead of waiting on a leader that cannot
        # come (the rank executor itself is also gone by this point).
        assert service.batcher._closed
        assert service.metrics_snapshot()["batching"]["enabled"]
