"""LatencyRecorder / ServiceMetrics: the serving metrics surface."""

import threading

import pytest

from repro.service import LatencyRecorder, ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank_on_known_samples(self):
        samples = [float(value) for value in range(1, 102)]  # 1..101
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 101.0
        assert percentile(samples, 0.50) == 51.0  # index round(0.5 * 100)
        assert percentile(samples, 0.95) == 96.0

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            percentile([1.0], 1.5)


class TestLatencyRecorder:
    def test_summary_reports_milliseconds(self):
        recorder = LatencyRecorder()
        for seconds in (0.001, 0.002, 0.003, 0.004):
            recorder.observe(seconds)
        summary = recorder.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == pytest.approx(2.5)
        assert summary["max_ms"] == pytest.approx(4.0)
        assert summary["p50_ms"] == pytest.approx(3.0)  # nearest rank

    def test_window_is_bounded_but_count_is_not(self):
        recorder = LatencyRecorder(capacity=8)
        for index in range(100):
            recorder.observe(index / 1000.0)
        assert recorder.count == 100
        # Window keeps the most recent 8 samples: 92..99 ms.
        assert recorder.summary()["p50_ms"] >= 92.0

    def test_concurrent_observations_are_all_counted(self):
        recorder = LatencyRecorder()

        def hammer():
            for _ in range(500):
                recorder.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert recorder.count == 8 * 500

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyRecorder(capacity=0)


class TestServiceMetrics:
    def test_stages_created_on_demand_and_snapshotted(self):
        metrics = ServiceMetrics()
        metrics.observe_stage("rank", 0.002)
        metrics.observe_stage("rank", 0.004)
        metrics.observe_stage("parse", 0.001)
        metrics.count_outcome("ok")
        metrics.count_outcome("ok")
        metrics.count_outcome("rejected")
        snapshot = metrics.snapshot()
        assert snapshot["outcomes"] == {"ok": 2, "rejected": 1}
        assert set(snapshot["stages"]) == {"rank", "parse"}
        assert snapshot["stages"]["rank"]["count"] == 2

    def test_stage_returns_one_recorder_per_name(self):
        metrics = ServiceMetrics()
        assert metrics.stage("rank") is metrics.stage("rank")
        assert metrics.stage("rank") is not metrics.stage("parse")
