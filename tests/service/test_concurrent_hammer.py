"""Concurrency hammers for the serving refactor.

Two levels of attack:

* **Engine hammer** — many threads churn context and rank on *one*
  engine.  Without the per-engine rank lock this corrupts in several
  ways: the context signature is rendered while another thread mutates
  the overlay (``RuntimeError: set changed size during iteration``), or
  a half-installed context is scored and memoized under a stale
  signature (cache poisoning: a wrong score map served forever after).
  The test asserts every returned score map is *exactly* one of the
  single-threaded reference maps — the atomicity contract the service
  pipeline relies on.

* **Fleet stress** — ≥8 threads rank across sibling tenants on ≥2
  registry shards with per-request context churn, and every observed
  score map must match the single-threaded reference for that tenant's
  installed context to 1e-9.  This exercises the shared machinery
  (basis pool, compiled-KB base tier, Shannon memo, interning) under
  real contention.
"""

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import RankingEngine, shared_basis_pool
from repro.reason import clear_registry
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch

#: Filler concepts widen the install window (more assertions per
#: install) without touching any rule, which makes the pre-lock race
#: reliably observable: two overlapping installs double-collect the
#: dynamic assertions and the second ``del`` raises
#: ``KeyError(Individual('peter'))``.
FILLER = tuple(f"Filler{index}" for index in range(10))

#: Distinct context menus the hammer flips between.  All certain
#: concepts: the point is the *engine's* atomicity, not event-space
#: registration (uncertain specs are covered by the fleet stress).
CONTEXTS = (
    ("Weekend",) + FILLER,
    ("Breakfast",) + FILLER,
    ("Weekend", "Breakfast") + FILLER,
    FILLER,
)

THREADS = 8
ROUNDS = 300


@pytest.fixture(autouse=True)
def fresh_world_state():
    clear_registry()
    shared_basis_pool().clear()
    yield
    clear_registry()
    shared_basis_pool().clear()


@pytest.fixture(autouse=True)
def aggressive_gil_switching():
    """Force frequent thread switches so races cannot hide in long
    GIL quanta — this is what makes the pre-lock failure reproducible
    on every run instead of one in three."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(5e-6)
    yield
    sys.setswitchinterval(previous)


def reference_maps(make_engine):
    """Single-threaded ground truth: one score map per context menu."""
    references = []
    for specs in CONTEXTS:
        engine = make_engine()
        engine.install_context(*specs)
        references.append(engine.preference_scores())
    return references


def matches_any(scores, references, tolerance=1e-9):
    for reference in references:
        if set(scores) == set(reference) and all(
            abs(scores[doc] - reference[doc]) <= tolerance for doc in reference
        ):
            return True
    return False


def test_single_engine_context_churn_is_atomic():
    """The engine hammer: install+rank from 8 threads on one engine.

    This test FAILS on an unlocked engine (pre-serving-refactor): the
    signature render races ``clear_dynamic`` and either raises or
    poisons the view cache with a half-context score map.
    """
    world = build_tvtouch()
    references = reference_maps(
        lambda: RankingEngine.from_world(build_tvtouch())
    )
    engine = RankingEngine.from_world(world)
    errors = []
    bad_maps = []
    barrier = threading.Barrier(THREADS)

    def worker(seed):
        try:
            barrier.wait()
            for round_index in range(ROUNDS):
                specs = CONTEXTS[(seed + round_index) % len(CONTEXTS)]
                scores = engine.rank_in_context(specs).scores()
                if not matches_any(scores, references):
                    bad_maps.append((specs, scores))
        except Exception as exc:  # noqa: BLE001 - the hammer reports all
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for seed in range(THREADS):
            pool.submit(worker, seed)

    assert not errors, f"engine raised under concurrent context churn: {errors[:3]}"
    assert not bad_maps, (
        f"{len(bad_maps)} rankings matched no single-threaded reference "
        f"(first: {bad_maps[0] if bad_maps else None})"
    )

    # Poison sweep: after the storm, the cache must still be honest —
    # a half-installed context memoized under a stale signature would
    # surface here as a persistent wrong answer.
    for specs, reference in zip(CONTEXTS, references):
        scores = engine.rank_in_context(specs).scores()
        worst = max(abs(scores[doc] - reference[doc]) for doc in reference)
        assert worst <= 1e-9, f"cache poisoned for {specs[:2]}: drift {worst}"


def test_fleet_context_churn_matches_reference():
    """Satellite: ≥8 threads across ≥2 shards with context churn.

    Every tenant pins one context menu; threads hammer rank requests
    across all tenants concurrently.  Scores must agree with the
    single-threaded per-tenant reference to 1e-9.
    """
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    assert registry.shards >= 2
    tenant_menus = {
        f"tenant_{index}": CONTEXTS[index % len(CONTEXTS)] for index in range(12)
    }
    references = {}
    for tenant_id, specs in tenant_menus.items():
        engine = RankingEngine.from_world(build_tvtouch())
        if specs:
            engine.install_context(*specs)
        references[tenant_id] = engine.preference_scores()

    errors = []
    mismatches = []
    barrier = threading.Barrier(THREADS)

    def worker(seed):
        try:
            barrier.wait()
            tenants = list(tenant_menus)
            for round_index in range(ROUNDS):
                tenant_id = tenants[(seed * 7 + round_index) % len(tenants)]
                specs = tenant_menus[tenant_id]
                with registry.checkout(tenant_id) as session:
                    # Context churn: reinstall the menu on every request
                    # (the serving pipeline's per-request context delta).
                    scores = session.rank_in_context(specs).scores()
                reference = references[tenant_id]
                worst = max(abs(scores[doc] - reference[doc]) for doc in reference)
                if worst > 1e-9:
                    mismatches.append((tenant_id, worst))
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for seed in range(THREADS):
            pool.submit(worker, seed)

    assert not errors, f"fleet raised under concurrent ranking: {errors[:3]}"
    assert not mismatches, f"score drift under concurrency: {mismatches[:5]}"
