"""The HTTP/JSON gateway: endpoints, status codes, identity with the engine.

Every test runs against *both* gateway implementations — the
thread-per-connection :class:`RankingHTTPServer` and the event-loop
:class:`AioRankingServer` — through the parametrised ``gateway``
fixture: the HTTP surface is one contract with two transports.
"""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.engine import RankingEngine
from repro.reason import clear_registry
from repro.service import (
    RankingService,
    ServiceConfig,
    make_aio_server,
    make_server,
)
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch


@pytest.fixture(params=["threads", "aio"])
def gateway(request):
    clear_registry()
    registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
    service = RankingService(registry, ServiceConfig(max_concurrency=4))
    factory = make_server if request.param == "threads" else make_aio_server
    server = factory(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    assert not thread.is_alive()
    clear_registry()


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestRankEndpoint:
    def test_rank_matches_the_in_process_engine(self, gateway):
        status, body = get_json(
            f"{gateway.url}/rank?tenant=peter&context=Weekend&context=Breakfast"
        )
        assert status == 200
        engine = RankingEngine.from_world(build_tvtouch())
        engine.install_context("Weekend", "Breakfast")
        expected = engine.preference_scores()
        served = {item["document"]: item["score"] for item in body["items"]}
        assert set(served) == set(expected)
        for document, value in expected.items():
            assert served[document] == pytest.approx(value, abs=1e-9)

    def test_top_k_and_positions(self, gateway):
        status, body = get_json(
            f"{gateway.url}/rank?tenant=a&context=Weekend&top_k=2"
        )
        assert status == 200
        assert [item["position"] for item in body["items"]] == [1, 2]

    def test_missing_tenant_is_400(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{gateway.url}/rank?context=Weekend")
        assert excinfo.value.code == 400
        assert "tenant" in json.loads(excinfo.value.read())["error"]

    def test_unknown_path_is_404(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(f"{gateway.url}/nope")
        assert excinfo.value.code == 404


class TestContextEndpoint:
    def test_post_context_sets_the_standing_context(self, gateway):
        status, body = post_json(
            f"{gateway.url}/context",
            {"tenant": "alice", "context": ["Weekend", "Breakfast"]},
        )
        assert status == 200 and body["installed"] == 2
        status, ranked = get_json(f"{gateway.url}/rank?tenant=alice")
        assert status == 200
        assert ranked["items"][0]["document"] == "channel5_news"

    def test_post_without_body_is_400(self, gateway):
        request = urllib.request.Request(f"{gateway.url}/context", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_post_invalid_json_is_400(self, gateway):
        request = urllib.request.Request(
            f"{gateway.url}/context", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_context_spec_is_400(self, gateway):
        request = urllib.request.Request(
            f"{gateway.url}/context",
            data=json.dumps({"tenant": "a", "context": ["Breakfast:2.0"]}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestObservability:
    def test_healthz(self, gateway):
        status, body = get_json(f"{gateway.url}/healthz")
        assert status == 200 and body["status"] == "ok"
        assert body["registry"]["shards"] == 4

    def test_metrics_counts_requests(self, gateway):
        get_json(f"{gateway.url}/rank?tenant=a&context=Weekend")
        get_json(f"{gateway.url}/rank?tenant=a")
        status, body = get_json(f"{gateway.url}/metrics")
        assert status == 200
        assert body["outcomes"]["ok"] == 2
        assert body["stages"]["rank"]["count"] == 2
        assert body["config"]["max_concurrency"] == 4

    def test_concurrent_http_clients(self, gateway):
        errors = []
        winners = []

        def client(tenant):
            try:
                status, body = get_json(
                    f"{gateway.url}/rank?tenant={tenant}"
                    "&context=Weekend&context=Breakfast&top_k=1"
                )
                assert status == 200
                winners.append(body["items"][0]["document"])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(f"t{n}",)) for n in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert winners == ["channel5_news"] * 10


class TestResilienceSurface:
    def test_readyz_is_ready_on_a_healthy_gateway(self, gateway):
        status, body = get_json(f"{gateway.url}/readyz")
        assert status == 200
        assert body["status"] == "ready"
        assert body["problems"] == []
        assert body["breaker"]["enabled"] is True

    def test_readyz_degrades_while_the_breaker_is_open(self, gateway):
        service = gateway.service
        for _ in range(service.config.breaker_min_requests):
            service.breaker.record_failure("anyone")
        try:
            get_json(f"{gateway.url}/readyz")
        except urllib.error.HTTPError as error:
            assert error.code == 503
            body = json.loads(error.read())
            assert body["status"] == "degraded"
            assert "breaker_open" in body["problems"]
        else:  # pragma: no cover - failure path
            pytest.fail("/readyz answered 200 with the breaker open")

    def test_shed_carries_retry_after_header(self, gateway):
        service = gateway.service
        for _ in range(service.config.breaker_min_requests):
            service.breaker.record_failure("anyone")
        try:
            get_json(f"{gateway.url}/rank?tenant=anyone")
        except urllib.error.HTTPError as error:
            assert error.code == 503
            assert int(error.headers["Retry-After"]) >= 1
        else:  # pragma: no cover - failure path
            pytest.fail("breaker-open rank was not shed")

    def test_x_request_timeout_header_maps_to_the_timeout_param(self, gateway):
        request = urllib.request.Request(
            f"{gateway.url}/rank?tenant=alice&top_k=2",
            headers={"X-Request-Timeout": "nonsense"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as error:
            # The header reached the parse stage: a malformed value is
            # a 400, proving the mapping (a good value just works).
            assert error.code == 400
            assert "timeout" in json.loads(error.read())["error"]
        else:  # pragma: no cover - failure path
            pytest.fail("malformed X-Request-Timeout was not rejected")
        request = urllib.request.Request(
            f"{gateway.url}/rank?tenant=alice&top_k=2",
            headers={"X-Request-Timeout": "5"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200

    def test_metrics_exposes_resilience_section(self, gateway):
        get_json(f"{gateway.url}/rank?tenant=a&context=Weekend")
        status, body = get_json(f"{gateway.url}/metrics")
        assert status == 200
        resilience = body["resilience"]
        assert resilience["breaker"]["enabled"] is True
        assert resilience["breaker"]["state"] == "closed"
        assert resilience["fault_injection"]["active"] is False
        assert resilience["available_slots"] == 4
        assert body["config"]["request_timeout"] == 2.0

    def test_inflight_tracking_returns_to_idle(self, gateway):
        get_json(f"{gateway.url}/rank?tenant=a&top_k=1")
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and gateway.inflight:
            time.sleep(0.01)
        assert gateway.inflight == 0
        assert gateway.drain(0.5) is True
