"""End-to-end integration: sensors -> context -> views -> SQL -> ranking.

One scenario exercising every layer together, the way a deployment
would: the context manager refreshes from simulated sensors, the
preference view follows, the user's SQL query returns context-dependent
rows, and the mixed ranker combines IR evidence — across two context
changes.
"""

import pytest

from repro.core import ContextAwareRanker, ContextAwareScorer, PreferenceView
from repro.context import (
    CalendarSensor,
    ContextManager,
    GroundTruth,
    LocationSensor,
    SimClock,
    SituatedUser,
    define_context,
    define_location_concept,
)
from repro.ir import Corpus, LanguageModelRanker
from repro.workloads import build_tvtouch


@pytest.fixture()
def pipeline():
    world = build_tvtouch()
    define_location_concept(world.tbox, "InKitchen", "kitchen")
    define_context(world.tbox, "Breakfast", "InKitchen AND Morning")

    clock = SimClock.at(2007, 4, 14, 8, 0)  # Saturday morning
    manager = ContextManager(
        user=SituatedUser(world.user),
        clock=clock,
        abox=world.abox,
        tbox=world.tbox,
        space=world.space,
        database=world.database,
    )
    manager.add_sensor(CalendarSensor(world.user))
    manager.add_sensor(LocationSensor(world.user, rooms=("kitchen", "livingroom"), accuracy=0.9))

    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=world.repository, space=world.space,
    )
    view = PreferenceView(scorer, world.target, world.database)
    ranker = ContextAwareRanker(view, world.database, "Programs", id_column="id")
    return world, manager, view, ranker


INTRO_QUERY = (
    "SELECT name, preferencescore FROM Programs "
    "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC"
)


class TestFullPipeline:
    def test_kitchen_breakfast_surfaces_news(self, pipeline):
        world, manager, view, ranker = pipeline
        manager.refresh(GroundTruth(location="kitchen"))
        result = ranker.execute(INTRO_QUERY)
        assert len(result) >= 1
        assert result.rows[0][0] == "Channel 5 news"

    def test_living_room_drops_breakfast_rule(self, pipeline):
        world, manager, view, ranker = pipeline
        manager.refresh(GroundTruth(location="kitchen"))
        kitchen_scores = dict(view.refresh())
        manager.refresh(GroundTruth(location="livingroom"))
        livingroom_scores = dict(view.refresh())
        # With breakfast unlikely, the news-subject rule barely bites:
        # Oprah (pure weekend human interest) must gain relative to BBC.
        assert livingroom_scores["oprah"] > kitchen_scores["oprah"]
        assert livingroom_scores["oprah"] > livingroom_scores["bbc_news"]

    def test_database_tables_follow_context(self, pipeline):
        world, manager, _view, _ranker = pipeline
        manager.refresh(GroundTruth(location="kitchen"))
        first = {row[0:2] for row in world.database.table("role_locatedIn")}
        manager.refresh(GroundTruth(location="livingroom"))
        second = {row[0:2] for row in world.database.table("role_locatedIn")}
        assert first == second  # same candidate rooms sensed...
        events_first = world.database.table("role_locatedIn").rows
        assert events_first  # ...but fresh events each tick

    def test_mixed_ranking_with_ir(self, pipeline):
        world, manager, view, ranker = pipeline
        manager.refresh(GroundTruth(location="kitchen"))

        corpus = Corpus()
        corpus.add_text("oprah", "talk show human interest celebrity")
        corpus.add_text("bbc_news", "news weather bulletin world")
        corpus.add_text("channel5_news", "news weather bulletin human interest")
        corpus.add_text("mpfs", "comedy sketches absurd")
        lm = LanguageModelRanker(corpus)

        query_scores = lm.score_all("news weather")
        mixed = ranker.rank_mixed(query_scores, mixing_weight=0.5)
        assert mixed[0].document == "channel5_news"
        # Pure IR would rank bbc_news at least as high as oprah;
        # pure context at breakfast agrees; the mixture must too.
        order = [r.document for r in mixed]
        assert order.index("bbc_news") < order.index("oprah")

    def test_uncovered_context_reports_degenerate_scores(self, pipeline):
        world, manager, view, _ranker = pipeline
        world.abox.clear_dynamic()  # no context at all
        scores = view.refresh()
        assert all(value == pytest.approx(1.0) for value in scores.values())

    def test_prune_report_reflects_sensor_context(self, pipeline):
        world, manager, _view, _ranker = pipeline
        manager.refresh(GroundTruth(location="kitchen"))
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        scorer.score(world.program_ids)
        report = scorer.last_prune_report
        assert report is not None and report.kept_rules == 2
