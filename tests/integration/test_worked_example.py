"""E1 golden test: the paper's Section 4.2 worked example, end to end.

Scores the four Table 1 programs under rules R1/R2 in a certain
breakfast-during-the-weekend context and checks the exact numbers the
paper derives by hand: 0.6006 / 0.071 / 0.18 / 0.02 — through every
scoring method, through the preference view, through the naive
view-based implementation on both storage backends, and through the
verbatim introduction SQL query.
"""

import pytest

from repro.core import (
    ContextAwareRanker,
    ContextAwareScorer,
    PreferenceView,
    naive_scores_python,
    naive_scores_sqlite,
)
from repro.core.problem import bind_problem
from repro.storage import SqliteBackend, SqlSession
from repro.workloads import EXPECTED_TABLE1_SCORES, build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def scorer(world):
    return ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        space=world.space,
    )


class TestWorkedExample:
    @pytest.mark.parametrize("method", ["factorised", "enumeration", "exact"])
    def test_table1_scores_every_method(self, scorer, world, method):
        scores = scorer.with_method(method).score_map(world.program_ids)
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert scores[program] == pytest.approx(expected, abs=1e-9), (method, program)

    def test_ranking_order(self, scorer, world):
        ranked = scorer.rank(world.program_ids)
        assert [score.document for score in ranked] == [
            "channel5_news",
            "bbc_news",
            "oprah",
            "mpfs",
        ]

    def test_context_is_covered(self, scorer):
        assert scorer.context_covered()

    def test_without_context_no_rule_applies(self):
        fresh = build_tvtouch()  # no context installed
        scorer = ContextAwareScorer(
            abox=fresh.abox,
            tbox=fresh.tbox,
            user=fresh.user,
            repository=fresh.repository,
            space=fresh.space,
        )
        assert not scorer.context_covered()
        # Equation (4) degenerates to 1 for every document (Section 4.1).
        scores = scorer.score_map(fresh.program_ids)
        assert all(value == pytest.approx(1.0) for value in scores.values())


class TestNaiveViewImplementations:
    def test_python_views_reproduce_table1(self, world):
        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository, [], world.space
        )
        scores = naive_scores_python(
            world.database, world.tbox, world.target, list(problem.bindings), world.space
        )
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert scores[program] == pytest.approx(expected, abs=1e-9)

    def test_sqlite_views_reproduce_table1(self, world):
        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository, [], world.space
        )
        with SqliteBackend(world.space) as backend:
            backend.load_abox(world.abox)
            scores = naive_scores_sqlite(
                backend, world.tbox, world.target, list(problem.bindings)
            )
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert scores[program] == pytest.approx(expected, abs=1e-9)


class TestPreferenceViewAndQuery:
    def test_preference_view_scores(self, scorer, world):
        view = PreferenceView(scorer, world.target, world.database)
        scores = view.refresh()
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert scores[program] == pytest.approx(expected, abs=1e-9)
        assert view.score_of("oprah") == pytest.approx(0.071)
        assert view.explain("channel5_news") is not None

    def test_intro_query_runs_verbatim(self, scorer, world):
        """The SQL from the paper's introduction, unmodified."""
        view = PreferenceView(scorer, world.target, world.database)
        ranker = ContextAwareRanker(view, world.database, "Programs", id_column="id")
        result = ranker.execute(
            "SELECT name, preferencescore\n"
            "FROM Programs\n"
            "WHERE preferencescore > 0.5\n"
            "ORDER BY preferencescore DESC"
        )
        assert result.columns == ("name", "preferencescore")
        assert result.rows == [("Channel 5 news", pytest.approx(0.6006))]

    def test_view_follows_context_changes(self, scorer, world):
        view = PreferenceView(scorer, world.target, world.database)
        view.refresh()
        assert view.score_of("bbc_news") == pytest.approx(0.18)
        # Weekday evening: neither rule applies; every score becomes 1.
        world.abox.clear_dynamic()
        scores = view.refresh()
        assert all(value == pytest.approx(1.0) for value in scores.values())

    def test_union_ranking_semantics(self, scorer, world):
        view = PreferenceView(scorer, world.target, world.database)
        ranker = ContextAwareRanker(view, world.database, "Programs", id_column="id")
        ranked = ranker.rank_query_results(["oprah", "mpfs"])
        assert [r.document for r in ranked] == ["oprah", "mpfs"]
        assert ranked[0].preference == pytest.approx(0.071)
        assert all(r.query_dependent == 1.0 for r in ranked)
