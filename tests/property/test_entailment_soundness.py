"""Soundness of structural subsumption against the probabilistic semantics.

If the TBox derives ``C ⊑ D`` structurally, then in *every* random
probabilistic world each individual's membership event for C must imply
its membership event for D — i.e. ``P(C(x) AND NOT D(x)) = 0``.  This
ties the symbolic layer (used for pruning and mining dedup) to the
model-level semantics the scorer runs on.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventSpace, conj, neg, probability
from repro.dl import ABox, TBox, atomic, complement, intersect, membership_event, one_of, some, union

CONCEPT_NAMES = ["A", "B", "C"]
ROLE_NAMES = ["r"]
INDIVIDUALS = ["x", "y", "z"]


@st.composite
def world_and_concept_pair(draw):
    space = EventSpace("prop")
    abox = ABox()
    tbox = TBox()
    tbox.add_subsumption("A", "B")  # a fixed hierarchy edge to exercise
    for individual in INDIVIDUALS:
        abox.register_individual(individual)

    counter = [0]

    def random_event():
        counter[0] += 1
        p = draw(st.floats(min_value=0.05, max_value=0.95, allow_nan=False))
        return space.atom(f"e{counter[0]}", p)

    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        abox.assert_concept(
            draw(st.sampled_from(CONCEPT_NAMES)),
            draw(st.sampled_from(INDIVIDUALS)),
            random_event(),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        abox.assert_role(
            "r",
            draw(st.sampled_from(INDIVIDUALS)),
            draw(st.sampled_from(INDIVIDUALS)),
            random_event(),
        )

    def concept_strategy(depth: int):
        leaves = [
            st.sampled_from([atomic(name) for name in CONCEPT_NAMES]),
            st.builds(lambda i: one_of(i), st.sampled_from(INDIVIDUALS)),
        ]
        if depth <= 0:
            return st.one_of(*leaves)
        sub = concept_strategy(depth - 1)
        return st.one_of(
            *leaves,
            st.builds(lambda c: complement(c), sub),
            st.builds(lambda a, b: intersect([a, b]), sub, sub),
            st.builds(lambda a, b: union([a, b]), sub, sub),
            st.builds(lambda c: some("r", c), sub),
        )

    left = draw(concept_strategy(2))
    right = draw(concept_strategy(2))
    return space, abox, tbox, left, right


@settings(max_examples=100, deadline=None)
@given(world_and_concept_pair())
def test_structural_entailment_is_sound(world):
    space, abox, tbox, left, right = world
    if not tbox.entails(left, right):
        return  # only a claim when subsumption is derived
    for individual in INDIVIDUALS:
        in_left = membership_event(abox, tbox, individual, left)
        in_right = membership_event(abox, tbox, individual, right)
        violation = conj([in_left, neg(in_right)])
        assert math.isclose(probability(violation, space), 0.0, abs_tol=1e-9), (
            f"{left} ⊑ {right} derived, but {individual} violates it"
        )


@settings(max_examples=60, deadline=None)
@given(world_and_concept_pair())
def test_conjunction_always_entails_conjuncts_semantically(world):
    """Even without the symbolic check: P((C ⊓ D)(x)) <= P(C(x))."""
    space, abox, tbox, left, right = world
    both = intersect([left, right])
    for individual in INDIVIDUALS:
        p_both = probability(membership_event(abox, tbox, individual, both), space)
        p_left = probability(membership_event(abox, tbox, individual, left), space)
        assert p_both <= p_left + 1e-9
