"""Property test: on random probabilistic ABoxes and random concept
expressions, the three evaluation paths — instance checking, relational
algebra views, sqlite views — retrieve the same individuals with the
same probabilities."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventSpace, probability
from repro.dl import ABox, TBox, atomic, complement, every, intersect, one_of, retrieve, some, union
from repro.storage import Database, SqliteBackend, compile_concept

CONCEPT_NAMES = ["A", "B", "C"]
ROLE_NAMES = ["r", "s"]
INDIVIDUALS = ["x", "y", "z", "w"]


@st.composite
def worlds(draw):
    """A random event space + ABox over a tiny fixed vocabulary."""
    space = EventSpace("prop")
    abox = ABox()
    for individual in INDIVIDUALS:
        abox.register_individual(individual)

    counter = [0]

    def random_event():
        p = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        if p >= 1.0:
            from repro.events import ALWAYS

            return ALWAYS
        counter[0] += 1
        return space.atom(f"e{counter[0]}", p)

    n_concept_assertions = draw(st.integers(min_value=1, max_value=6))
    for _ in range(n_concept_assertions):
        concept = draw(st.sampled_from(CONCEPT_NAMES))
        individual = draw(st.sampled_from(INDIVIDUALS))
        abox.assert_concept(concept, individual, random_event())

    n_role_assertions = draw(st.integers(min_value=0, max_value=6))
    for _ in range(n_role_assertions):
        role = draw(st.sampled_from(ROLE_NAMES))
        source = draw(st.sampled_from(INDIVIDUALS))
        target = draw(st.sampled_from(INDIVIDUALS))
        abox.assert_role(role, source, target, random_event())

    def concept_strategy(depth: int):
        leaves = [
            st.sampled_from([atomic(name) for name in CONCEPT_NAMES]),
            st.builds(lambda i: one_of(i), st.sampled_from(INDIVIDUALS)),
        ]
        if depth <= 0:
            return st.one_of(*leaves)
        sub = concept_strategy(depth - 1)
        return st.one_of(
            *leaves,
            st.builds(lambda c: complement(c), sub),
            st.builds(lambda a, b: intersect([a, b]), sub, sub),
            st.builds(lambda a, b: union([a, b]), sub, sub),
            st.builds(lambda r, c: some(r, c), st.sampled_from(ROLE_NAMES), sub),
            st.builds(lambda r, c: every(r, c), st.sampled_from(ROLE_NAMES), sub),
        )

    concept = draw(concept_strategy(2))
    return space, abox, concept


def _positive(mapping: dict) -> dict:
    return {key: value for key, value in mapping.items() if value > 1e-9}


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_algebra_views_match_instance_checker(world):
    space, abox, concept = world
    tbox = TBox()
    reference = {
        individual.name: probability(event, space)
        for individual, event in retrieve(abox, tbox, concept).items()
    }
    db = Database()
    db.load_abox(abox)
    table = db.evaluate(compile_concept(concept, tbox, db))
    via_views = {row[0]: probability(row[1], space) for row in table}

    assert _positive(via_views).keys() == _positive(reference).keys()
    for key, value in _positive(via_views).items():
        assert math.isclose(value, reference[key], abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(worlds())
def test_optimizer_preserves_view_semantics(world):
    """optimize() must not change any view's tuples or probabilities."""
    from repro.storage import optimize

    space, abox, concept = world
    tbox = TBox()
    db = Database()
    db.load_abox(abox)
    plan = compile_concept(concept, tbox, db)
    original = {row[0]: probability(row[1], space) for row in db.evaluate(plan)}
    optimized = {row[0]: probability(row[1], space) for row in db.evaluate(optimize(db, plan))}
    assert _positive(original).keys() == _positive(optimized).keys()
    for key, value in _positive(original).items():
        assert math.isclose(value, optimized[key], abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(worlds())
def test_sqlite_views_match_instance_checker(world):
    space, abox, concept = world
    tbox = TBox()
    reference = {
        individual.name: probability(event, space)
        for individual, event in retrieve(abox, tbox, concept).items()
    }
    with SqliteBackend(space) as backend:
        backend.load_abox(abox)
        via_sql = backend.concept_probabilities(concept, tbox)

    assert _positive(via_sql).keys() == _positive(reference).keys()
    for key, value in _positive(via_sql).items():
        assert math.isclose(value, reference[key], abs_tol=1e-9)
