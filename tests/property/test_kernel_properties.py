"""Property tests: the compiled kernel against the reference scorers.

The kernel is a performance layer, not a semantics layer — on every
randomized problem (correlated mutex-group events, threshold-pruned
rules, both numeric backends) it must reproduce
:func:`repro.core.scoring.factorised_score` exactly, and on
independent-feature problems it must agree with the enumeration and
event-level exact scorers, which are its ultimate oracle.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import ALWAYS, NEVER, EventSpace
from repro.events.probability import probability
from repro.rules import PreferenceRule
from repro.core import (
    DocumentBinding,
    RuleBinding,
    ScoringKernel,
    ScoringProblem,
    all_miss_score,
    bind_rules,
    enumeration_score,
    exact_event_score,
    factorised_score,
    prune_rules,
)
from repro.dl.vocabulary import Individual
from repro.perf.backend import numpy_or_none

BACKENDS = ["python"] + (["numpy"] if numpy_or_none() is not None else [])

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def correlated_problems(draw):
    """Random problems whose events may share mutex groups and atoms."""
    n_rules = draw(st.integers(min_value=1, max_value=5))
    n_docs = draw(st.integers(min_value=0, max_value=6))
    space = EventSpace("prop-kernel")

    # An optional mutex group events can draw members from.
    members = []
    if draw(st.booleans()):
        p_first = draw(st.floats(min_value=0.05, max_value=0.6, allow_nan=False))
        p_second = draw(st.floats(min_value=0.05, max_value=0.35, allow_nan=False))
        members = [space.atom("m0", p_first), space.atom("m1", p_second)]
        space.declare_mutex("grp", ["m0", "m1"])

    serial = [0]

    def draw_event(prefix):
        choices = ["always", "never", "fresh"]
        if members:
            choices += ["member", "either_member"]
        kind = draw(st.sampled_from(choices))
        if kind == "always":
            return ALWAYS
        if kind == "never":
            return NEVER
        if kind == "member":
            return draw(st.sampled_from(members))
        if kind == "either_member":
            return members[0] | members[1]
        serial[0] += 1
        return space.atom(f"{prefix}{serial[0]}", draw(probabilities))

    bindings = []
    for index in range(n_rules):
        sigma = draw(probabilities)
        rule = PreferenceRule.parse(f"r{index}", "TOP", "TvProgram", sigma)
        event = draw_event("g")
        bindings.append(RuleBinding(rule, event, probability(event, space)))
    documents = []
    for row in range(n_docs):
        events = tuple(draw_event(f"f{row}x") for _ in range(n_rules))
        values = tuple(probability(event, space) for event in events)
        documents.append(DocumentBinding(Individual(f"d{row}"), events, values))
    threshold = draw(st.sampled_from([0.0, 0.0, 0.1, 0.5]))
    backend = draw(st.sampled_from(BACKENDS))
    return ScoringProblem(tuple(bindings), tuple(documents), space), threshold, backend


@st.composite
def independent_problems(draw):
    """Independent-feature problems (every event its own atom)."""
    n_rules = draw(st.integers(min_value=1, max_value=4))
    n_docs = draw(st.integers(min_value=1, max_value=3))
    space = EventSpace("prop-indep")

    def event_and_p(name):
        p = draw(probabilities)
        if p >= 1.0:
            return ALWAYS, 1.0
        if p <= 0.0:
            return NEVER, 0.0
        return space.atom(name, p), p

    bindings = []
    for index in range(n_rules):
        event, p = event_and_p(f"g{index}")
        rule = PreferenceRule.parse(f"r{index}", "TOP", "TvProgram", draw(probabilities))
        bindings.append(RuleBinding(rule, event, p))
    documents = []
    for row in range(n_docs):
        pairs = [event_and_p(f"f{row}x{col}") for col in range(n_rules)]
        documents.append(
            DocumentBinding(
                Individual(f"d{row}"),
                tuple(event for event, _p in pairs),
                tuple(p for _event, p in pairs),
            )
        )
    backend = draw(st.sampled_from(BACKENDS))
    return ScoringProblem(tuple(bindings), tuple(documents), space), backend


@settings(max_examples=120, deadline=None)
@given(correlated_problems())
def test_kernel_matches_factorised_reference(case):
    problem, threshold, backend = case
    kernel = ScoringKernel.compile(problem, rule_threshold=threshold, backend=backend)
    pruned = prune_rules(problem, threshold)
    values = kernel.scores(prune_documents=False)
    for value, document in zip(values, pruned.documents):
        expected = factorised_score(list(pruned.bindings), document)
        assert math.isclose(value, expected, abs_tol=1e-9)


@settings(max_examples=120, deadline=None)
@given(correlated_problems())
def test_kernel_document_pruning_matches_scorer_semantics(case):
    problem, threshold, backend = case
    kernel = ScoringKernel.compile(problem, rule_threshold=threshold, backend=backend)
    pruned = prune_rules(problem, threshold)
    shared = all_miss_score(pruned.bindings)
    values = dict(zip(kernel.names, kernel.scores(prune_documents=True)))
    trivial_names = {kernel.names[row] for row in kernel.trivial_rows()}
    for document in pruned.documents:
        name = document.document.name
        if name in trivial_names:
            assert values[name] == shared
        else:
            expected = factorised_score(list(pruned.bindings), document)
            assert math.isclose(values[name], expected, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(independent_problems())
def test_kernel_matches_enumeration_and_exact_on_independent_features(case):
    problem, backend = case
    kernel = ScoringKernel.compile(problem, backend=backend)
    values = kernel.scores(prune_documents=False)
    for value, document in zip(values, problem.documents):
        by_enumeration = enumeration_score(list(problem.bindings), document)
        by_exact = exact_event_score(list(problem.bindings), document, problem.space)
        assert math.isclose(value, by_enumeration, abs_tol=1e-9)
        assert math.isclose(value, by_exact, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(correlated_problems(), st.integers(min_value=1, max_value=10))
def test_rank_top_k_agrees_with_full_sort(case, k):
    problem, threshold, backend = case
    kernel = ScoringKernel.compile(problem, rule_threshold=threshold, backend=backend)
    full = sorted(
        kernel.score_documents(), key=lambda score: (-score.value, score.document)
    )
    top = kernel.rank_top_k(k)
    assert [(s.document, s.value) for s in top] == [
        (s.document, s.value) for s in full[:k]
    ]


@settings(max_examples=80, deadline=None)
@given(correlated_problems(), st.data())
def test_incremental_rescoring_matches_cold_recompile(case, data):
    problem, threshold, backend = case
    kernel = ScoringKernel.compile(problem, rule_threshold=threshold, backend=backend)
    # A context flip: same rules, fresh context events/probabilities.
    space = EventSpace("prop-flip")
    new_bindings = []
    for index, binding in enumerate(problem.bindings):
        p_g = data.draw(probabilities)
        if p_g >= 1.0:
            event = ALWAYS
        elif p_g <= 0.0:
            event = NEVER
        else:
            event = space.atom(f"flip{index}", p_g)
        new_bindings.append(RuleBinding(binding.rule, event, p_g))
    flipped = ScoringProblem(tuple(new_bindings), problem.documents, problem.space)
    incremental = kernel.with_context(tuple(new_bindings))
    cold = ScoringKernel.compile(flipped, rule_threshold=threshold, backend=backend)
    assert incremental.scores() == cold.scores()
    assert incremental.candidates is kernel.candidates
