"""Property-based tests: the four probability engines agree, and the
probability function obeys the Kolmogorov laws, on random expressions
over random event spaces (with and without mutex groups)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    EventSpace,
    dumps,
    loads,
    probability,
    probability_by_bdd,
    probability_by_dnf,
    probability_by_enumeration,
    probability_by_shannon,
)

MAX_ATOMS = 6


@st.composite
def spaces_and_exprs(draw, allow_groups: bool = True):
    """Random (space, expression) pairs over at most MAX_ATOMS atoms."""
    space = EventSpace("prop")
    n_atoms = draw(st.integers(min_value=1, max_value=MAX_ATOMS))
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n_atoms,
            max_size=n_atoms,
        )
    )
    atoms = []
    for index, p in enumerate(probs):
        atoms.append(space.atom(f"x{index}", p))

    if allow_groups and n_atoms >= 2:
        group_size = draw(st.integers(min_value=0, max_value=min(3, n_atoms)))
        if group_size >= 2:
            members = [a.name for a in atoms[:group_size]]
            total = sum(space.get(name).probability for name in members)
            if total <= 1.0:
                space.declare_mutex("g", members)

    def expr_strategy(depth: int):
        leaf = st.sampled_from(atoms)
        if depth <= 0:
            return leaf
        sub = expr_strategy(depth - 1)
        return st.one_of(
            leaf,
            st.builds(lambda e: ~e, sub),
            st.builds(lambda l, r: l & r, sub, sub),
            st.builds(lambda l, r: l | r, sub, sub),
        )

    expr = draw(expr_strategy(3))
    return space, expr


@settings(max_examples=150, deadline=None)
@given(spaces_and_exprs())
def test_all_engines_agree(space_expr):
    space, expr = space_expr
    reference = probability_by_enumeration(expr, space)
    assert math.isclose(probability_by_shannon(expr, space), reference, abs_tol=1e-9)
    assert math.isclose(probability_by_bdd(expr, space), reference, abs_tol=1e-9)
    assert math.isclose(probability_by_dnf(expr, space), reference, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_probability_in_unit_interval(space_expr):
    space, expr = space_expr
    value = probability(expr, space)
    assert 0.0 <= value <= 1.0


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_complement_rule(space_expr):
    space, expr = space_expr
    assert math.isclose(
        probability(expr, space) + probability(~expr, space), 1.0, abs_tol=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_monotonicity_of_disjunction(space_expr):
    space, expr = space_expr
    widened = expr | space.atom("x0")
    assert probability(widened, space) >= probability(expr, space) - 1e-9


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_conjunction_bounded_by_parts(space_expr):
    space, expr = space_expr
    narrowed = expr & space.atom("x0")
    assert probability(narrowed, space) <= probability(expr, space) + 1e-9


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_inclusion_exclusion_binary(space_expr):
    """P(A or B) = P(A) + P(B) - P(A and B) for derived A, B."""
    space, expr = space_expr
    other = ~space.atom("x0")
    lhs = probability(expr | other, space)
    rhs = probability(expr, space) + probability(other, space) - probability(expr & other, space)
    assert math.isclose(lhs, rhs, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_serialisation_round_trip_preserves_structure(space_expr):
    _space, expr = space_expr
    assert loads(dumps(expr)) == expr


@settings(max_examples=80, deadline=None)
@given(spaces_and_exprs())
def test_serialisation_round_trip_preserves_probability(space_expr):
    space, expr = space_expr
    # The round-tripped expression evaluates identically (atom marginals
    # travel inside the serialisation; mutex structure comes from the space).
    restored = loads(dumps(expr))
    assert math.isclose(
        probability(restored, space), probability(expr, space), abs_tol=1e-12
    )
