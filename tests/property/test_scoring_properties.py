"""Property-based tests for the scoring model.

The load-bearing invariant: on independent features, the paper's naive
enumeration, the O(n) factorisation and the event-level exact scorer
compute the same probability — and the naive view-based implementation
agrees with all three.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import ALWAYS, NEVER, EventSpace
from repro.rules import PreferenceRule
from repro.core import (
    DocumentBinding,
    RuleBinding,
    all_miss_score,
    enumeration_score,
    exact_event_score,
    factorised_score,
)
from repro.dl.vocabulary import Individual

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def scoring_inputs(draw):
    """Random independent-feature scoring problems (1-6 rules)."""
    n = draw(st.integers(min_value=1, max_value=6))
    sigmas = draw(st.lists(probabilities, min_size=n, max_size=n))
    p_contexts = draw(st.lists(probabilities, min_size=n, max_size=n))
    p_features = draw(st.lists(probabilities, min_size=n, max_size=n))
    space = EventSpace("prop")
    bindings = []
    for index, (sigma, p_g) in enumerate(zip(sigmas, p_contexts)):
        rule = PreferenceRule.parse(f"r{index}", "TOP", "TvProgram", sigma)
        if p_g >= 1.0:
            event = ALWAYS
        elif p_g <= 0.0:
            event = NEVER
        else:
            event = space.atom(f"g{index}", p_g)
        bindings.append(RuleBinding(rule, event, p_g))
    events = []
    for index, p_f in enumerate(p_features):
        if p_f >= 1.0:
            events.append(ALWAYS)
        elif p_f <= 0.0:
            events.append(NEVER)
        else:
            events.append(space.atom(f"f{index}", p_f))
    document = DocumentBinding(Individual("doc"), tuple(events), tuple(p_features))
    return space, bindings, document


@settings(max_examples=120, deadline=None)
@given(scoring_inputs())
def test_three_scorers_agree_on_independent_features(inputs):
    space, bindings, document = inputs
    by_enumeration = enumeration_score(bindings, document)
    by_factorisation = factorised_score(bindings, document)
    by_events = exact_event_score(bindings, document, space)
    assert math.isclose(by_factorisation, by_enumeration, abs_tol=1e-9)
    assert math.isclose(by_events, by_enumeration, abs_tol=1e-9)


@settings(max_examples=120, deadline=None)
@given(scoring_inputs())
def test_score_is_a_probability(inputs):
    _space, bindings, document = inputs
    value = factorised_score(bindings, document)
    assert 0.0 <= value <= 1.0


@settings(max_examples=120, deadline=None)
@given(scoring_inputs())
def test_all_miss_is_the_zero_feature_score(inputs):
    space, bindings, document = inputs
    zero_doc = DocumentBinding(
        document.document,
        tuple(NEVER for _ in bindings),
        tuple(0.0 for _ in bindings),
    )
    assert math.isclose(
        all_miss_score(bindings), factorised_score(bindings, zero_doc), abs_tol=1e-12
    )


@settings(max_examples=100, deadline=None)
@given(scoring_inputs(), probabilities)
def test_monotone_in_feature_probability_when_sigma_high(inputs, bump):
    """With sigma > 0.5, increasing P(f) never lowers the score."""
    space, bindings, document = inputs
    high_sigma_bindings = [
        RuleBinding(binding.rule.with_sigma(0.5 + binding.sigma / 2.0), binding.context_event, binding.context_probability)
        for binding in bindings
    ]
    raised = tuple(
        min(1.0, p + bump * (1.0 - p)) for p in document.preference_probabilities
    )
    raised_doc = DocumentBinding(document.document, document.preference_events, raised)
    low = factorised_score(high_sigma_bindings, document)
    high = factorised_score(high_sigma_bindings, raised_doc)
    assert high >= low - 1e-9
