"""Property tests for the hash-consing invariants of event expressions.

The public constructors intern every node, so structurally identical
expressions must be *pointer-equal* regardless of construction order,
with stable hashes — and interning must never change semantics: all
four probability engines must agree between an interned tree and a
structurally identical fresh (raw-class-built, uninterned) tree,
including under mutex groups.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventSpace
from repro.events.atoms import BasicEvent
from repro.events.expr import (
    ALWAYS,
    And,
    Atom,
    FalseEvent,
    Not,
    Or,
    TrueEvent,
    atom,
    conj,
    disj,
    intern_expr,
    neg,
)
from repro.events.probability import ENGINES

MAX_ATOMS = 5


@st.composite
def spaces_and_exprs(draw):
    """Random (space, interned expression) pairs, sometimes with a mutex group."""
    space = EventSpace("intern")
    n_atoms = draw(st.integers(min_value=1, max_value=MAX_ATOMS))
    probs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n_atoms,
            max_size=n_atoms,
        )
    )
    atoms = [space.atom(f"i{index}", p) for index, p in enumerate(probs)]

    group_size = draw(st.integers(min_value=0, max_value=min(3, n_atoms)))
    if group_size >= 2:
        members = [a.name for a in atoms[:group_size]]
        if sum(space.get(name).probability for name in members) <= 1.0:
            space.declare_mutex("g", members)

    def expr_strategy(depth: int):
        leaf = st.sampled_from(atoms)
        if depth <= 0:
            return leaf
        sub = expr_strategy(depth - 1)
        return st.one_of(
            leaf,
            st.builds(lambda e: ~e, sub),
            st.builds(lambda l, r: l & r, sub, sub),
            st.builds(lambda l, r: l | r, sub, sub),
        )

    return space, draw(expr_strategy(3))


def rebuild_raw(expr):
    """A structurally identical tree built via the raw classes (uninterned)."""
    if isinstance(expr, TrueEvent) or isinstance(expr, FalseEvent):
        return expr
    if isinstance(expr, Atom):
        return Atom(BasicEvent(expr.event.name, expr.event.probability))
    if isinstance(expr, Not):
        return Not(rebuild_raw(expr.child))
    if isinstance(expr, And):
        return And(tuple(rebuild_raw(child) for child in expr.children))
    if isinstance(expr, Or):
        return Or(tuple(rebuild_raw(child) for child in expr.children))
    raise AssertionError(f"unexpected node {expr!r}")


@settings(max_examples=150, deadline=None)
@given(spaces_and_exprs())
def test_construction_order_irrelevant(space_expr):
    """conj/disj over permuted children intern to the very same object."""
    _space, expr = space_expr
    flipped_and = conj([expr, ~expr & expr])  # exercises nesting too
    assert conj([~expr & expr, expr]) is flipped_and
    assert disj([expr, ~expr]) is disj([~expr, expr])
    assert conj([expr, expr]) is conj([expr])
    assert neg(neg(expr)) is expr


@settings(max_examples=150, deadline=None)
@given(spaces_and_exprs())
def test_interned_twice_is_same_object_with_stable_hash(space_expr):
    _space, expr = space_expr
    twin = intern_expr(rebuild_raw(expr))
    assert twin is expr
    assert hash(twin) == hash(expr)
    assert twin == rebuild_raw(expr)  # structural equality still holds


@settings(max_examples=100, deadline=None)
@given(spaces_and_exprs())
def test_engines_agree_on_interned_vs_fresh(space_expr):
    """All four engines: P(interned tree) == P(fresh uninterned tree)."""
    space, expr = space_expr
    fresh = rebuild_raw(expr)
    assert fresh == expr
    for name, engine in ENGINES.items():
        interned_value = engine(expr, space)
        fresh_value = engine(fresh, space)
        assert math.isclose(interned_value, fresh_value, abs_tol=1e-9), name


def test_atoms_intern_by_name_and_probability():
    """Same name at a different marginal must NOT alias the same node."""
    half = atom(BasicEvent("shared-name", 0.5))
    also_half = atom(BasicEvent("shared-name", 0.5))
    third = atom(BasicEvent("shared-name", 0.3))
    assert half is also_half
    assert third is not half
    assert third.event.probability == 0.3
    assert half.event.probability == 0.5


def test_constants_are_singletons():
    assert conj([]) is ALWAYS
    assert neg(disj([])) is ALWAYS
