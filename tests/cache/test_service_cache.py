"""The response cache wired into the serving pipeline.

The contract under test: a cache hit is byte-identical to the rank it
replaces (scores within 1e-9 of an uncached service), and a stale hit
after *any* context change — per-request delta, ``POST /context``,
session eviction, explicit invalidation — is impossible.
"""

import pytest

from repro.cache import InMemoryCacheAdapter, NoCacheAdapter
from repro.reason import clear_registry
from repro.service import RankingService, ServiceConfig
from repro.tenants import TenantRegistry
from repro.workloads import build_tvtouch
from repro.workloads.traffic import CONTEXT_MENUS


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(cache=None, max_sessions=64, **config):
    clear_registry()
    registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=max_sessions)
    return RankingService(
        registry,
        ServiceConfig(**config) if config else None,
        cache=cache if cache is not None else InMemoryCacheAdapter(),
    )


def rank(service, tenant="alice", context=None, top_k=None, explain=False):
    params = {"tenant": [tenant]}
    if context is not None:
        params["context"] = list(context)
    if top_k is not None:
        params["top_k"] = [str(top_k)]
    if explain:
        params["explain"] = ["1"]
    reply = service.rank(params)
    assert reply.ok, reply.body
    return reply


def scores(reply):
    return [(item["document"], item["score"]) for item in reply.body["items"]]


class TestHitIdentity:
    @pytest.mark.parametrize("menu", CONTEXT_MENUS + ((),))
    def test_cached_scores_identical_to_uncached(self, menu):
        cached_svc = make_service()
        uncached_svc = make_service(cache=NoCacheAdapter())
        first = rank(cached_svc, context=menu)
        second = rank(cached_svc, context=menu)
        reference = rank(uncached_svc, context=menu)
        assert second.body["cached"] is True
        assert "cached" not in first.body
        assert len(scores(second)) == len(scores(reference)) > 0
        for (doc_a, score_a), (doc_b, score_b) in zip(scores(second), scores(reference)):
            assert doc_a == doc_b
            assert abs(score_a - score_b) <= 1e-9
        assert scores(first) == scores(second)

    def test_standing_context_requests_hit_after_delta_rank(self):
        service = make_service()
        delta = rank(service, context=("Weekend",))
        standing = rank(service)  # no context param: the standing state
        assert standing.body["cached"] is True
        assert scores(standing) == scores(delta)
        assert "context" not in standing.body  # echo is per-request

    def test_outcomes_and_metrics_surface(self):
        service = make_service()
        rank(service, context=("Weekend",), top_k=3)
        rank(service, context=("Weekend",), top_k=3)
        snapshot = service.metrics_snapshot()
        assert snapshot["outcomes"] == {"ok": 1, "ok_cached": 1}
        cache_section = snapshot["cache"]
        assert cache_section["enabled"] is True
        assert cache_section["hits"] == 1
        assert cache_section["entries"] == 1
        assert 0.0 < cache_section["hit_ratio"] < 1.0
        assert snapshot["worker"]["pid"] > 0
        assert "uptime_seconds" in snapshot["worker"]
        # Stage latencies are split into cached/uncached populations.
        assert snapshot["stages"]["total.cached"]["count"] == 1
        assert snapshot["stages"]["total.uncached"]["count"] == 1
        assert snapshot["stages"]["cache"]["count"] == 2
        # A pure hit never touches resolve/rank.
        assert snapshot["stages"]["rank"]["count"] == 1

    def test_explain_and_topk_are_distinct_keys(self):
        service = make_service()
        rank(service, context=("Weekend",), explain=True)
        plain = rank(service, context=("Weekend",))
        assert "cached" not in plain.body
        assert "explanation" not in plain.body
        explained = rank(service, context=("Weekend",), explain=True)
        assert explained.body["cached"] is True
        assert "explanation" in explained.body
        topped = rank(service, context=("Weekend",), top_k=2)
        assert "cached" not in topped.body
        assert len(topped.body["items"]) == 2

    def test_spec_order_and_default_probability_share_one_entry(self):
        service = make_service()
        rank(service, context=("Weekend", "Breakfast"))
        reordered = rank(service, context=("Breakfast", "Weekend:1.0"))
        assert reordered.body["cached"] is True
        assert reordered.body["context"] == ["Breakfast", "Weekend:1.0"]

    def test_cached_timings_are_fresh_when_enabled(self):
        service = make_service(include_timings=True)
        rank(service, context=("Weekend",))
        hit = rank(service, context=("Weekend",))
        assert hit.body["cached"] is True
        # The hit's timing block is its own (no rank stage ran), not a
        # replay of the filling request's.
        assert "rank" not in hit.body["timings_ms"]
        assert "cache" in hit.body["timings_ms"]


class TestInvalidation:
    def test_no_stale_hit_after_post_context_flip(self):
        service = make_service()
        weekend = rank(service, context=("Weekend",))
        rank(service)  # warm the standing entry
        assert service.install_context("alice", ["Breakfast"]).ok
        after = rank(service)
        assert "cached" not in after.body  # the flip moved the digest
        reference = rank(make_service(cache=NoCacheAdapter()), context=("Breakfast",))
        assert scores(after) == scores(reference)
        assert scores(after) != scores(weekend)
        # And the fresh state now caches under its own key.
        assert rank(service).body["cached"] is True

    def test_no_stale_hit_after_delta_flip(self):
        service = make_service()
        rank(service, context=("Weekend",))
        rank(service, context=("Breakfast",))  # delta replaces standing
        standing = rank(service)
        assert scores(standing) == scores(
            rank(make_service(cache=NoCacheAdapter()), context=("Breakfast",))
        )

    def test_delta_hit_still_installs_the_standing_context(self):
        service = make_service()
        rank(service, context=("Weekend",))
        rank(service, context=("Breakfast",))
        flip_back = rank(service, context=("Weekend",))  # hit + install
        assert flip_back.body["cached"] is True
        standing = rank(service)
        assert scores(standing) == scores(flip_back)

    def test_flipping_back_revalidates_old_entries(self):
        # Content-addressed keys: restoring a context restores its
        # still-valid entries instead of recomputing them.
        service = make_service()
        rank(service, context=("Weekend",))
        rank(service, context=("Breakfast",))
        assert rank(service, context=("Weekend",)).body["cached"] is True

    def test_session_eviction_purges_the_tenant(self):
        service = make_service(max_sessions=1)
        weekend = rank(service, context=("Weekend",))
        rank(service)  # standing entry for alice
        rank(service, tenant="bob")  # evicts alice's session (LRU of 1)
        after = rank(service)  # alice re-minted: empty standing context
        assert "cached" not in after.body
        assert scores(after) == scores(rank(make_service(cache=NoCacheAdapter())))
        assert scores(after) != scores(weekend)

    def test_explicit_invalidate_covers_out_of_band_mutation(self):
        service = make_service()
        rank(service, context=("Weekend",))
        stale = rank(service)
        assert stale.body["cached"] is True
        # Mutate the session directly, outside the service API — the
        # ledger cannot see this; invalidate_tenant is the contract.
        with service.registry.checkout("alice") as session:
            session.install_context("Breakfast")
        assert service.invalidate_tenant("alice") >= 1
        after = rank(service)
        assert "cached" not in after.body
        assert scores(after) == scores(
            rank(make_service(cache=NoCacheAdapter()), context=("Breakfast",))
        )

    def test_ttl_expiry_forces_a_recompute(self):
        clock = FakeClock()
        service = make_service(cache=InMemoryCacheAdapter(ttl=30.0, clock=clock))
        rank(service, context=("Weekend",))
        assert rank(service, context=("Weekend",)).body["cached"] is True
        clock.advance(31.0)
        expired = rank(service, context=("Weekend",))
        assert "cached" not in expired.body
        assert service.cache.info().expiries == 1
        assert rank(service, context=("Weekend",)).body["cached"] is True


class TestDisabledCache:
    def test_default_service_has_no_cache(self):
        clear_registry()
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=64)
        service = RankingService(registry)
        assert service.cache.enabled is False
        rank(service, context=("Weekend",))
        repeat = rank(service, context=("Weekend",))
        assert "cached" not in repeat.body
        snapshot = service.metrics_snapshot()
        assert snapshot["outcomes"] == {"ok": 2}
        assert snapshot["cache"]["enabled"] is False
        assert "cache" not in snapshot["stages"]
