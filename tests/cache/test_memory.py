"""The in-memory adapter: LRU bound, TTL, tenant purge, concurrency."""

import threading

import pytest

from repro.cache import InMemoryCacheAdapter, NoCacheAdapter
from repro.cache.protocol import CacheAdapter
from repro.errors import EngineConfigError


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self):
        assert isinstance(InMemoryCacheAdapter(), CacheAdapter)
        assert isinstance(NoCacheAdapter(), CacheAdapter)

    def test_none_adapter_never_stores(self):
        cache = NoCacheAdapter()
        assert cache.enabled is False
        cache.put("k", {"v": 1}, tenant="alice")
        assert cache.get("k") is None
        assert cache.invalidate_tenant("alice") == 0
        assert cache.info().hits == 0


class TestValidation:
    def test_rejects_bad_settings(self):
        with pytest.raises(EngineConfigError):
            InMemoryCacheAdapter(max_entries=0)
        with pytest.raises(EngineConfigError):
            InMemoryCacheAdapter(ttl=-1.0)
        with pytest.raises(EngineConfigError):
            InMemoryCacheAdapter(shards=0)

    def test_shards_clamped_to_capacity(self):
        assert InMemoryCacheAdapter(max_entries=3, shards=16).shards == 3


class TestBasics:
    def test_round_trip_and_counters(self):
        cache = InMemoryCacheAdapter(max_entries=8)
        assert cache.get("k") is None
        cache.put("k", {"v": 1}, tenant="alice")
        assert cache.get("k") == {"v": 1}
        info = cache.info()
        assert (info.hits, info.misses, info.entries) == (1, 1, 1)
        assert info.hit_ratio == pytest.approx(0.5)

    def test_replace_updates_in_place(self):
        cache = InMemoryCacheAdapter(max_entries=8)
        cache.put("k", {"v": 1}, tenant="alice")
        cache.put("k", {"v": 2}, tenant="alice")
        assert cache.get("k") == {"v": 2}
        assert len(cache) == 1


class TestTTL:
    def test_entries_expire_on_lookup(self):
        clock = FakeClock()
        cache = InMemoryCacheAdapter(max_entries=8, ttl=30.0, clock=clock)
        cache.put("k", {"v": 1}, tenant="alice")
        clock.advance(29.9)
        assert cache.get("k") == {"v": 1}
        clock.advance(0.2)
        assert cache.get("k") is None
        info = cache.info()
        assert info.expiries == 1
        assert info.entries == 0
        # Expiry is also a miss: the requester did not get a body.
        assert info.misses == 1

    def test_ttl_zero_means_no_expiry(self):
        clock = FakeClock()
        cache = InMemoryCacheAdapter(max_entries=8, ttl=0, clock=clock)
        assert cache.ttl is None
        cache.put("k", {"v": 1})
        clock.advance(10_000_000)
        assert cache.get("k") == {"v": 1}


class TestLRU:
    def test_capacity_is_exact_per_shard(self):
        cache = InMemoryCacheAdapter(max_entries=4, shards=1, ttl=None)
        for index in range(10):
            cache.put(f"k{index}", {"v": index})
        assert len(cache) == 4
        assert cache.info().evictions == 6
        assert cache.get("k9") == {"v": 9}
        assert cache.get("k0") is None

    def test_get_refreshes_recency(self):
        cache = InMemoryCacheAdapter(max_entries=2, shards=1, ttl=None)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})  # evicts b, not a
        assert cache.get("a") == {"v": 1}
        assert cache.get("b") is None

    def test_bound_holds_under_concurrent_hammer(self):
        cache = InMemoryCacheAdapter(max_entries=64, shards=8, ttl=None)
        errors = []

        def hammer(worker):
            try:
                for index in range(500):
                    key = f"w{worker}-k{index % 90}"
                    cache.put(key, {"v": index}, tenant=f"tenant-{worker}")
                    cache.get(key)
                    cache.get(f"w{(worker + 1) % 8}-k{index % 90}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        info = cache.info()
        assert info.hits + info.misses == 8 * 500 * 2


class TestTenantPurge:
    def test_invalidate_tenant_is_targeted(self):
        cache = InMemoryCacheAdapter(max_entries=64, ttl=None)
        for index in range(6):
            cache.put(f"a{index}", {"v": index}, tenant="alice")
            cache.put(f"b{index}", {"v": index}, tenant="bob")
        assert cache.invalidate_tenant("alice") == 6
        assert len(cache) == 6
        assert cache.get("a0") is None
        assert cache.get("b0") == {"v": 0}
        assert cache.info().invalidations == 6
        assert cache.invalidate_tenant("alice") == 0

    def test_eviction_and_replace_keep_the_index_clean(self):
        cache = InMemoryCacheAdapter(max_entries=2, shards=1, ttl=None)
        cache.put("a", {"v": 1}, tenant="alice")
        cache.put("b", {"v": 2}, tenant="alice")
        cache.put("c", {"v": 3}, tenant="alice")  # evicts a
        assert cache.invalidate_tenant("alice") == 2

    def test_clear_drops_everything(self):
        cache = InMemoryCacheAdapter(max_entries=16, ttl=None)
        for index in range(5):
            cache.put(f"k{index}", {"v": index}, tenant="alice")
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.invalidate_tenant("alice") == 0
