"""Stale retention and the get_stale degraded-serving probe."""

import pytest

from repro.cache import InMemoryCacheAdapter, NoCacheAdapter, family_key
from repro.errors import EngineConfigError


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_cache(ttl=10.0, stale_grace=100.0, **kwargs):
    clock = FakeClock()
    cache = InMemoryCacheAdapter(
        max_entries=16, ttl=ttl, shards=2, clock=clock, stale_grace=stale_grace, **kwargs
    )
    return cache, clock


class TestStaleRetention:
    def test_expired_entry_misses_get_but_survives_for_stale(self):
        cache, clock = make_cache(ttl=10.0, stale_grace=100.0)
        cache.put("k", {"v": 1}, tenant="t")
        clock.advance(15.0)
        assert cache.get("k") is None  # expired: a miss
        hit = cache.get_stale("k", max_age=60.0)
        assert hit is not None
        assert hit.body == {"v": 1}
        assert hit.expired is True
        assert hit.exact is True
        assert hit.age == pytest.approx(5.0)

    def test_expiry_counted_once_and_entries_count_live_only(self):
        cache, clock = make_cache(ttl=10.0)
        cache.put("k", {"v": 1}, tenant="t")
        clock.advance(15.0)
        cache.get("k")
        cache.get("k")
        cache.get_stale("k", max_age=60.0)
        info = cache.info()
        assert info.expiries == 1
        assert info.entries == 0  # retained body is not live occupancy
        assert info.stale_hits == 1

    def test_hard_drop_past_the_grace(self):
        cache, clock = make_cache(ttl=10.0, stale_grace=20.0)
        cache.put("k", {"v": 1})
        clock.advance(31.0)  # expired 21s ago > grace 20
        assert cache.get_stale("k", max_age=1000.0) is None
        assert len(cache) == 0  # the probe reclaimed it

    def test_max_age_bounds_the_serve(self):
        cache, clock = make_cache(ttl=10.0, stale_grace=100.0)
        cache.put("k", {"v": 1})
        clock.advance(18.0)  # 8s past expiry
        assert cache.get_stale("k", max_age=5.0) is None
        assert cache.get_stale("k", max_age=10.0) is not None

    def test_fresh_exact_entry_has_age_zero(self):
        cache, _clock = make_cache(ttl=10.0)
        cache.put("k", {"v": 1})
        hit = cache.get_stale("k", max_age=0.0)
        assert hit is not None and hit.age == 0.0 and not hit.expired

    def test_stale_counters(self):
        cache, clock = make_cache(ttl=10.0)
        cache.put("k", {"v": 1})
        clock.advance(15.0)
        cache.get_stale("k", max_age=60.0)
        cache.get_stale("missing", max_age=60.0)
        info = cache.info()
        assert info.stale_hits == 1
        assert info.stale_misses == 1
        # Stale probes never pollute the live hit/miss counters.
        assert info.hits == 0 and info.misses == 0
        assert "stale_hits" in info.to_dict()

    def test_stale_grace_zero_restores_drop_on_expiry(self):
        cache, clock = make_cache(ttl=10.0, stale_grace=0.0)
        cache.put("k", {"v": 1})
        clock.advance(11.0)
        assert cache.get("k") is None
        assert cache.get_stale("k", max_age=1000.0) is None

    def test_negative_grace_rejected(self):
        with pytest.raises(EngineConfigError, match="stale_grace"):
            InMemoryCacheAdapter(stale_grace=-1.0)


class TestFamilyFallback:
    def test_family_fallback_serves_the_most_recent_sibling(self):
        cache, _clock = make_cache(ttl=None)
        fam = family_key("alice", None, 3, False)
        cache.put("alice|digestA|q", {"v": "old"}, tenant="alice", family=fam)
        cache.put("alice|digestB|q", {"v": "new"}, tenant="alice", family=fam)
        hit = cache.get_stale("alice|digestC|q", family=fam, max_age=60.0)
        assert hit is not None
        assert hit.body == {"v": "new"}  # most recent family member
        assert hit.exact is False

    def test_family_age_is_time_since_storage(self):
        cache, clock = make_cache(ttl=None)
        fam = family_key("alice", None, 3, False)
        cache.put("alice|digestA|q", {"v": 1}, family=fam)
        clock.advance(30.0)
        assert cache.get_stale("alice|digestB|q", family=fam, max_age=20.0) is None
        hit = cache.get_stale("alice|digestB|q", family=fam, max_age=60.0)
        assert hit is not None and hit.age == pytest.approx(30.0)

    def test_family_pointer_never_crosses_families(self):
        cache, _clock = make_cache(ttl=None)
        fam_a = family_key("alice", None, 3, False)
        fam_b = family_key("alice", None, 5, False)
        cache.put("kA", {"v": "a"}, family=fam_a)
        # The fam_b index has nothing: a fam_b probe must not serve kA.
        assert cache.get_stale("other", family=fam_b, max_age=60.0) is None

    def test_invalidation_drops_family_members(self):
        cache, _clock = make_cache(ttl=None)
        fam = family_key("alice", None, 3, False)
        cache.put("kA", {"v": 1}, tenant="alice", family=fam)
        cache.invalidate_tenant("alice")
        assert cache.get_stale("kB", family=fam, max_age=60.0) is None

    def test_clear_resets_family_index(self):
        cache, _clock = make_cache(ttl=None)
        fam = family_key("alice", None, 3, False)
        cache.put("kA", {"v": 1}, family=fam)
        cache.clear()
        assert cache.get_stale("kB", family=fam, max_age=60.0) is None


class TestKeyFamilies:
    def test_family_key_ignores_view_digest(self):
        # Same tenant + query shape => same family, whatever the context.
        assert family_key("t", ("a", "b"), 3, False) == family_key(
            "t", ("a", "b"), 3, False
        )
        assert family_key("t", ("a",), 3, False) != family_key("t", ("a",), 5, False)
        assert family_key("t", None, 3, False) != family_key("u", None, 3, False)


class TestNoCacheAdapter:
    def test_get_stale_always_misses(self):
        cache = NoCacheAdapter()
        cache.put("k", {"v": 1}, family="f")
        assert cache.get_stale("k", family="f", max_age=60.0) is None
