"""Key derivation and the response-key ledger."""

import pytest

from repro.cache.keys import (
    KeyLookup,
    ResponseKeyer,
    canonical_context,
    response_key,
    signature_digest,
)
from repro.errors import EngineConfigError


class TestCanonicalContext:
    def test_order_independent(self):
        assert canonical_context(("Weekend", "Breakfast")) == canonical_context(
            ("Breakfast", "Weekend")
        )

    def test_probability_normalised(self):
        # "Weekend" and "Weekend:1.0" install the same knowledge state.
        assert canonical_context(("Weekend",)) == canonical_context(("Weekend:1.0",))

    def test_distinct_probabilities_distinct(self):
        assert canonical_context(("Weekend:0.7",)) != canonical_context(("Weekend:0.8",))

    def test_empty_is_the_explicit_clear(self):
        assert canonical_context(()) == ()

    def test_bad_spec_raises(self):
        with pytest.raises(EngineConfigError):
            canonical_context(("Weekend:nope",))


class TestResponseKey:
    def test_differs_by_every_component(self):
        base = response_key("alice", "d1", None, 3, False)
        assert response_key("bob", "d1", None, 3, False) != base
        assert response_key("alice", "d2", None, 3, False) != base
        assert response_key("alice", "d1", ("p1",), 3, False) != base
        assert response_key("alice", "d1", None, 5, False) != base
        assert response_key("alice", "d1", None, 3, True) != base

    def test_stable(self):
        assert response_key("alice", "d1", ("p1", "p2"), None, True) == response_key(
            "alice", "d1", ("p1", "p2"), None, True
        )


FP_A = (3, ("sig-a",))
FP_B = (7, ("sig-b",))


class TestResponseKeyer:
    def test_unlearned_lookup_has_sentinel_key(self):
        keyer = ResponseKeyer()
        lookup = keyer.lookup("alice", None, None, 3, False)
        assert isinstance(lookup, KeyLookup)
        assert lookup.view_digest is None
        assert "unlearned" in lookup.key  # a countable, guaranteed miss

    def test_learn_then_standing_hit(self):
        keyer = ResponseKeyer()
        lookup = keyer.lookup("alice", None, None, 3, False)
        digest = keyer.learn(lookup, FP_A)
        assert digest == signature_digest(("sig-a",))
        again = keyer.lookup("alice", None, None, 3, False)
        assert again.view_digest == digest
        assert not again.needs_install

    def test_delta_mapping_learned_and_needs_install(self):
        keyer = ResponseKeyer()
        delta = keyer.lookup("alice", ("Weekend",), None, 3, False)
        keyer.learn(delta, FP_A)
        # Standing now sig-a; flip standing to sig-b via a plain learn.
        keyer.learn(keyer.lookup("alice", None, None, 3, False), FP_B)
        again = keyer.lookup("alice", ("Weekend",), None, 3, False)
        assert again.view_digest == signature_digest(("sig-a",))
        assert again.needs_install  # standing is sig-b, the hit is sig-a

    def test_newest_epoch_wins(self):
        keyer = ResponseKeyer()
        lookup = keyer.lookup("alice", None, None, 3, False)
        keyer.learn(lookup, FP_B)  # epoch 7 lands first
        keyer.learn(lookup, FP_A)  # epoch 3 arrives late: must not regress
        assert keyer.lookup("alice", None, None, 3, False).view_digest == (
            signature_digest(("sig-b",))
        )

    def test_forget_clears_and_fences_in_flight_learns(self):
        keyer = ResponseKeyer()
        stale = keyer.lookup("alice", None, None, 3, False)
        keyer.learn(stale, FP_A)
        pre_forget = keyer.lookup("alice", None, None, 3, False)
        keyer.forget("alice")
        assert keyer.lookup("alice", None, None, 3, False).view_digest is None
        # A learn whose lookup predates the forget is discarded.
        assert keyer.learn(pre_forget, FP_B) is None
        assert keyer.lookup("alice", None, None, 3, False).view_digest is None

    def test_bad_context_lookup_is_none(self):
        keyer = ResponseKeyer()
        assert keyer.lookup("alice", ("Weekend:nope",), None, 3, False) is None

    def test_ledger_is_bounded(self):
        keyer = ResponseKeyer(max_tenants=4)
        for index in range(10):
            lookup = keyer.lookup(f"tenant-{index}", None, None, 3, False)
            keyer.learn(lookup, FP_A)
        assert len(keyer) == 4

    def test_clear_forgets_everyone(self):
        keyer = ResponseKeyer()
        keyer.learn(keyer.lookup("alice", None, None, 3, False), FP_A)
        keyer.learn(keyer.lookup("bob", None, None, 3, False), FP_A)
        keyer.clear()
        assert keyer.lookup("alice", None, None, 3, False).view_digest is None
        assert keyer.lookup("bob", None, None, 3, False).view_digest is None
