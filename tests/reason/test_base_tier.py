"""The shared base tier behind overlay-backed CompiledKBs."""

import pytest

from repro.dl import ABox, TBox, parse_concept
from repro.dl.instances import membership_event
from repro.events import EventSpace
from repro.reason import CompiledKB, base_tier, clear_registry
from repro.workloads import build_tvtouch


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_registry()
    yield
    clear_registry()


@pytest.fixture()
def world():
    world = build_tvtouch()
    world.abox.freeze()
    return world


def overlay_kb(world):
    overlay = world.abox.overlay()
    return overlay, CompiledKB(overlay, world.tbox, world.space)


class TestTierIdentity:
    def test_overlay_sessions_share_one_base_tier(self, world):
        _o1, kb1 = overlay_kb(world)
        _o2, kb2 = overlay_kb(world)
        tier = base_tier(world.abox, world.tbox, world.space)
        assert kb1.session().base is tier
        assert kb2.session().base is tier

    def test_overlay_epoch_move_keeps_the_tier_warm(self, world):
        overlay, kb = overlay_kb(world)
        target = parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
        kb.membership_event("oprah", target)
        tier = base_tier(world.abox, world.tbox, world.space)
        warm = len(tier._events)
        assert warm > 0
        overlay.assert_concept("Weekend", "alice", dynamic=True)  # new overlay epoch
        session = kb.session()
        assert session.base is tier
        assert len(tier._events) >= warm
        assert kb.info().invalidations == 1

    def test_tbox_change_rebuilds_the_tier(self, world):
        _overlay, kb = overlay_kb(world)
        first = kb.session().base
        world.tbox.add_subsumption("Show", "TvProgram")
        assert kb.session().base is not first

    def test_flat_kb_has_no_base(self, world):
        kb = CompiledKB(world.abox, world.tbox, world.space)
        assert kb.session().base is None
        assert not kb.info().shared_base


class TestDelegationSoundness:
    TARGETS = [
        "TvProgram",
        "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}",
        "TvProgram AND EXISTS hasSubject.NewsSubject",
        "NOT (EXISTS hasSubject.NewsSubject)",
    ]

    def documents(self, world):
        return world.program_ids + ["peter"]

    def assert_matches_reference(self, kb, overlay, tbox, concepts, names):
        for text in concepts:
            concept = parse_concept(text)
            for name in names:
                compiled = kb.membership_event(name, concept)
                reference = membership_event(overlay, tbox, name, concept)
                assert str(compiled) == str(reference), (text, name)

    def test_untouched_overlay_matches_reference(self, world):
        overlay, kb = overlay_kb(world)
        self.assert_matches_reference(
            kb, overlay, world.tbox, self.TARGETS, self.documents(world)
        )
        assert kb.session().base_events > 0  # everything delegated

    def test_context_only_overlay_matches_reference(self, world):
        overlay, kb = overlay_kb(world)
        overlay.assert_concept("Weekend", "peter", dynamic=True)
        self.assert_matches_reference(
            kb, overlay, world.tbox, self.TARGETS + ["Weekend"], self.documents(world)
        )

    def test_overlay_touching_shared_documents_matches_reference(self, world):
        # The overlay rewires a *shared* individual: oprah gains a news
        # subject.  oprah joins the affected set and must be answered
        # locally; untouched documents still delegate.
        overlay, kb = overlay_kb(world)
        overlay.assert_role(
            "hasSubject", "oprah", "WEATHER-BULLETIN", world.space.atom("s:oprah", 0.4)
        )
        self.assert_matches_reference(
            kb, overlay, world.tbox, self.TARGETS, self.documents(world)
        )
        session = kb.session()
        # oprah is touched directly; bbc_news and channel5_news reach
        # the touched WEATHER-BULLETIN through hasSubject, so the
        # conservative guard pulls them in too; mpfs has no edges.
        assert {"oprah", "bbc_news"} <= session.affected_names()
        assert "mpfs" not in session.affected_names()

    def test_affected_set_expands_through_reverse_reachability(self, world):
        # Touching a *target* individual (the genre) affects everything
        # that can reach it: both programs pointing at HUMAN-INTEREST.
        overlay, kb = overlay_kb(world)
        overlay.assert_concept("Trending", "HUMAN-INTEREST")
        affected = kb.session().affected_names()
        assert {"HUMAN-INTEREST", "oprah", "channel5_news"} <= affected
        assert "bbc_news" not in affected
        self.assert_matches_reference(
            kb,
            overlay,
            world.tbox,
            ["TvProgram AND EXISTS hasGenre.Trending"],
            self.documents(world),
        )

    def test_probabilities_match_and_share_the_tier_memo(self, world):
        overlay1, kb1 = overlay_kb(world)
        overlay2, kb2 = overlay_kb(world)
        concept = parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
        p1 = kb1.membership_probability("channel5_news", concept)
        tier = base_tier(world.abox, world.tbox, world.space)
        memo = len(tier._probabilities)
        p2 = kb2.membership_probability("channel5_news", concept)
        assert p1 == pytest.approx(0.95, abs=1e-9)
        assert p2 == p1
        assert len(tier._probabilities) == memo  # second tenant was a memo hit

    def test_retrieval_over_overlay_matches_reference(self, world):
        overlay, kb = overlay_kb(world)
        overlay.assert_concept("TvProgram", "webcast")
        retrieved = kb.retrieve(parse_concept("TvProgram"))
        names = sorted(individual.name for individual in retrieved)
        assert names == sorted(world.program_ids + ["webcast"])


class TestNestedOverlays:
    def test_chain_builds_stacked_tiers(self, world):
        team = world.abox.overlay()
        team.assert_concept("TeamEvent", "room1", dynamic=True)
        user = team.overlay()
        user.assert_concept("Weekend", "alice", dynamic=True)
        kb = CompiledKB(user, world.tbox, world.space)
        session = kb.session()
        assert session.base is base_tier(team, world.tbox, world.space)
        assert session.base.base is base_tier(world.abox, world.tbox, world.space)
        concept = parse_concept("TeamEvent")
        assert not kb.membership_event("room1", concept).is_impossible
        reference = membership_event(user, world.tbox, "room1", concept)
        assert str(kb.membership_event("room1", concept)) == str(reference)
