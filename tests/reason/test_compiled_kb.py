"""Unit tests for the compiled reasoner: memo correctness, epoch
invalidation (ABox, TBox and mutex-structure changes), the shared
registry, and agreement with the uncached reference path."""

import pytest

from repro.dl import ABox, TBox, membership_event, parse_concept, retrieve
from repro.events import EventSpace
from repro.events.probability import ENGINES, probability
from repro.reason import CompiledKB, clear_registry, compiled_kb


@pytest.fixture()
def world():
    """A small world with a hierarchy, roles and uncertain assertions."""
    space = EventSpace("kbtest")
    abox, tbox = ABox(), TBox()
    tbox.add_subsumption("WeatherBulletin", "News")
    for name in ("bbc", "c5"):
        abox.assert_concept("TvProgram", name)
    abox.assert_concept("WeatherBulletin", "bbc", space.atom("w:bbc", 0.55))
    abox.assert_concept("News", "c5", space.atom("n:c5", 0.9))
    abox.assert_role("hasGenre", "bbc", "HUMAN-INTEREST", space.atom("g:bbc", 0.4))
    abox.assert_role("hasGenre", "c5", "HUMAN-INTEREST", space.atom("g:c5", 0.95))
    return space, abox, tbox


CONCEPTS = [
    "TvProgram",
    "News",
    "TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}",
    "TvProgram AND NOT News",
    "ALL hasGenre.{HUMAN-INTEREST}",
]


def test_membership_matches_reference_for_all_engines(world):
    space, abox, tbox = world
    kb = CompiledKB(abox, tbox, space)
    for text in CONCEPTS:
        concept = parse_concept(text)
        for individual in ("bbc", "c5"):
            reference = membership_event(abox, tbox, individual, concept)
            compiled = kb.membership_event(individual, concept)
            assert compiled == reference
            for engine in ENGINES:
                assert kb.probability(compiled, engine) == pytest.approx(
                    probability(reference, space, engine), abs=1e-9
                )


def test_memo_hits_within_epoch(world):
    space, abox, tbox = world
    kb = CompiledKB(abox, tbox, space)
    concept = parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
    kb.membership_probability("bbc", concept)
    first = kb.info()
    kb.membership_probability("bbc", concept)
    second = kb.info()
    assert second.membership_hits > first.membership_hits
    assert second.membership_misses == first.membership_misses
    assert second.probability_hits > first.probability_hits
    assert second.invalidations == 0


def test_abox_mutation_invalidates(world):
    """No stale P(f): an assertion after caching must be visible."""
    space, abox, tbox = world
    kb = CompiledKB(abox, tbox, space)
    concept = parse_concept("TvProgram AND EXISTS hasSubject.{WEATHER}")
    assert kb.membership_probability("bbc", concept) == 0.0
    abox.assert_role("hasSubject", "bbc", "WEATHER", space.atom("s:bbc", 0.6))
    assert kb.membership_probability("bbc", concept) == pytest.approx(0.6)
    assert kb.info().invalidations == 1
    # Dynamic assertions and their wholesale retraction invalidate too.
    abox.assert_concept("Breakfast", "bbc", dynamic=True)
    assert kb.membership_probability("bbc", parse_concept("Breakfast")) == 1.0
    abox.clear_dynamic()
    assert kb.membership_probability("bbc", parse_concept("Breakfast")) == 0.0


def test_tbox_change_invalidates(world):
    space, abox, tbox = world
    kb = CompiledKB(abox, tbox, space)
    concept = parse_concept("Bulletin")
    assert kb.membership_probability("bbc", concept) == 0.0
    tbox.add_subsumption("WeatherBulletin", "Bulletin")
    assert kb.membership_probability("bbc", concept) == pytest.approx(0.55)
    # A new definition invalidates as well.
    tbox.define("HumanTv", parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}"))
    reference = membership_event(abox, tbox, "c5", parse_concept("HumanTv"))
    assert kb.membership_event("c5", parse_concept("HumanTv")) == reference


def test_mutex_declaration_invalidates_probabilities(world):
    space, abox, tbox = world
    kb = CompiledKB(abox, tbox, space)
    either = parse_concept(
        "(TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}) OR News"
    )
    before = kb.membership_probability("bbc", either)
    assert before == pytest.approx(1.0 - (1.0 - 0.4) * (1.0 - 0.55))
    space.declare_mutex("mx", ["g:bbc", "w:bbc"])
    after = kb.membership_probability("bbc", either)
    assert after == pytest.approx(0.4 + 0.55)
    assert after == pytest.approx(
        probability(membership_event(abox, tbox, "bbc", either), space)
    )


def test_retrieve_matches_per_individual_reference(world):
    space, abox, tbox = world
    concept = parse_concept("News")
    members = retrieve(abox, tbox, concept)
    assert {individual.name for individual in members} == {"bbc", "c5"}
    for individual, event in members.items():
        assert event == membership_event(abox, tbox, individual, concept)


def test_registry_matches_spaces_exactly(world):
    space, abox, tbox = world
    clear_registry()
    bare = compiled_kb(abox, tbox)
    assert compiled_kb(abox, tbox) is bare
    # A KB's space is fixed at creation: the independent-semantics KB
    # (space=None) never aliases a mutex-honouring one, and vice versa.
    spaced = compiled_kb(abox, tbox, space)
    assert spaced is not bare and spaced.space is space
    assert compiled_kb(abox, tbox, space) is spaced
    assert compiled_kb(abox, tbox) is bare
    other_space = EventSpace("other")
    assert compiled_kb(abox, tbox, other_space) not in (bare, spaced)
    # A different world never shares.
    assert compiled_kb(ABox(), tbox, space) is not spaced
    clear_registry()


def test_query_session_never_registers(world):
    from repro.reason import query_session
    from repro.reason.kb import _REGISTRY

    space, abox, tbox = world
    clear_registry()
    concept = parse_concept("News")
    # Pure queries on an unregistered world leave the registry empty...
    session = query_session(abox, tbox, space)
    assert session.retrieve_probabilities(concept)
    assert id(abox) not in _REGISTRY
    # ...and piggyback on the shared KB once an engine registered one.
    kb = compiled_kb(abox, tbox, space)
    assert query_session(abox, tbox, space) is kb.session()
    assert query_session(abox, tbox, events_only=True) is kb.session()
    # Exact space semantics for probabilities: a None-space query does
    # not reuse the mutex-honouring KB.
    assert query_session(abox, tbox) is not kb.session()
    clear_registry()


def test_scorers_over_one_world_share_a_kb(world):
    from repro.core import ContextAwareScorer
    from repro.rules import RuleRepository, parse_rule

    space, abox, tbox = world
    rule = parse_rule(
        "RULE r1: WHEN Breakfast PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"
    )
    first = ContextAwareScorer(
        abox=abox, tbox=tbox, user="bbc", repository=RuleRepository([rule]), space=space
    )
    second = ContextAwareScorer(
        abox=abox, tbox=tbox, user="bbc", repository=RuleRepository([rule]), space=space
    )
    assert first.kb is second.kb
