"""The prepare/complete split and batched engine scoring.

`rank_many` must be indistinguishable from the sequential
install+rank loop — same items, same scores (≤1e-9), same
fingerprints — while paying one fused kernel pass for the batch.
"""

import pytest

from repro.engine import (
    RankingEngine,
    RankRequest,
    score_prepared_batch,
)
from repro.errors import EngineError
from repro.workloads import build_tvtouch, set_breakfast_weekend_context

QUERY = (
    "SELECT name, preferencescore FROM Programs "
    "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC"
)

CONTEXTS = [
    ("Weekend:0.2",),
    ("Weekend:0.45", "Breakfast:0.8"),
    ("Breakfast",),
    ("Weekend:0.7",),
    ("Weekend", "Breakfast"),
]


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


def warmed_engine(world):
    engine = RankingEngine.from_world(world)
    engine.rank()  # cold pass: compiles and publishes the basis
    return engine


class TestRankManyIdentity:
    def test_matches_sequential_loop_across_contexts(self):
        def fresh():
            world = build_tvtouch()
            set_breakfast_weekend_context(world)
            return warmed_engine(world)

        # Two identical worlds so mutation counters march in lockstep:
        # fingerprints must match element-for-element, not just scores.
        batched_engine = fresh()
        sequential_engine = fresh()
        request = RankRequest(top_k=3)
        batched = batched_engine.rank_many([request] * len(CONTEXTS), CONTEXTS)
        sequential = [
            sequential_engine.rank_in_context(specs, request)
            for specs in CONTEXTS
        ]
        for left, right in zip(batched, sequential):
            assert left.documents() == right.documents()
            assert left.scores() == pytest.approx(right.scores(), abs=1e-9)
            assert left.fingerprint == right.fingerprint

    def test_mixed_shapes_fall_back_transparently(self, world):
        engine = warmed_engine(world)
        requests = [
            RankRequest(documents=world.program_ids),
            QUERY,  # SQL: answered under the lock, skips the batch
            RankRequest(top_k=2),
        ]
        reference = warmed_engine(world)
        batched = engine.rank_many(requests)
        singles = [reference.rank(request) for request in requests]
        for left, right in zip(batched, singles):
            assert left.scores() == pytest.approx(right.scores(), abs=1e-9)
            assert left.documents() == right.documents()

    def test_context_count_mismatch_rejected(self, world):
        engine = warmed_engine(world)
        with pytest.raises(EngineError):
            engine.rank_many([RankRequest()], [("Weekend",), ("Breakfast",)])


class TestPrepareRank:
    def test_batchable_snapshot_shape(self, world):
        engine = warmed_engine(world)
        prepared = engine.prepare_rank(("Weekend:0.37",), RankRequest(top_k=2))
        assert prepared.response is None
        assert prepared.kernel is not None
        assert prepared.signature is not None
        assert prepared.group_key is not None
        response = prepared.complete(
            {s.document: s for s in prepared.kernel.score_documents()}
        )
        assert [item.document for item in response.items] == (
            engine.rank(RankRequest(top_k=2)).documents()
        )

    def test_sql_answers_immediately(self, world):
        engine = warmed_engine(world)
        prepared = engine.prepare_rank(None, QUERY)
        assert prepared.response is not None
        assert prepared.kernel is None
        assert prepared.complete() is prepared.response

    def test_view_cache_hit_answers_immediately(self, world):
        engine = warmed_engine(world)
        engine.rank()  # populate the signature cache for the standing context
        prepared = engine.prepare_rank(None, RankRequest())
        assert prepared.response is not None
        assert prepared.response.from_cache

    def test_cold_engine_answers_immediately(self):
        world = build_tvtouch()
        set_breakfast_weekend_context(world)
        engine = RankingEngine.from_world(world)
        # No cached basis yet and no overlay base to share one through:
        # the first rank must compute under the lock, not batch.
        prepared = engine.prepare_rank(None, RankRequest())
        assert prepared.response is not None

    def test_unknown_document_answers_immediately(self, world):
        engine = warmed_engine(world)
        prepared = engine.prepare_rank(
            ("Weekend:0.9",), RankRequest(documents=("channel5_news", "ghost"))
        )
        assert prepared.response is not None

    def test_complete_without_scores_rejected(self, world):
        engine = warmed_engine(world)
        prepared = engine.prepare_rank(("Weekend:0.41",), RankRequest())
        with pytest.raises(EngineError):
            prepared.complete()

    def test_complete_populates_view_cache(self, world):
        engine = warmed_engine(world)
        prepared = engine.prepare_rank(("Weekend:0.63",), RankRequest())
        scored, rows = score_prepared_batch([prepared])
        assert rows == 1
        prepared.complete(scored[0])
        again = engine.rank()
        assert again.from_cache


class TestScorePreparedBatch:
    def test_coalesces_identical_signatures(self, world):
        engine = warmed_engine(world)
        engine.install_context("Weekend:0.52")
        prepared = [
            engine.prepare_rank(None, RankRequest(top_k=k)) for k in (1, 2, 3)
        ]
        assert all(item.response is None for item in prepared)
        assert len({item.signature for item in prepared}) == 1
        scored, rows = score_prepared_batch(prepared)
        assert rows == 1, "identical signatures must share one scored row"
        assert scored[0] is scored[1] is scored[2]
        responses = [item.complete(s) for item, s in zip(prepared, scored)]
        assert [len(r.items) for r in responses] == [1, 2, 3]

    def test_coalesces_across_tenants_on_equal_coefficients(self):
        # The same context installed for two different tenants over a
        # shared basis: distinct view signatures (the signature names
        # the tenant's individual) but equal coefficient vectors, so
        # the batch shares one scored row across tenants.
        from repro.engine import RankRequest
        from repro.tenants import TenantRegistry
        from repro.workloads import build_tvtouch

        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=8)
        prepared = []
        for tenant in ("alice", "bob"):
            with registry.checkout(tenant) as session:
                session.rank_in_context(("Weekend:0.5",), RankRequest(top_k=2))
                item = session.prepare_rank(("Weekend:0.37",), RankRequest(top_k=2))
            assert item.response is None
            prepared.append(item)
        first, second = prepared
        assert first.signature != second.signature
        assert first.kernel.coalesce_key == second.kernel.coalesce_key
        assert first.kernel.candidates is second.kernel.candidates
        scored, rows = score_prepared_batch(prepared)
        assert rows == 1, "equal coefficients must share one scored row"
        assert scored[0] is scored[1]
        left, right = (item.complete(s) for item, s in zip(prepared, scored))
        assert [i.document for i in left.items] == [i.document for i in right.items]

    def test_prepared_share_candidate_matrix(self, world):
        engine = warmed_engine(world)
        first = engine.prepare_rank(("Weekend:0.11",), RankRequest())
        second = engine.prepare_rank(("Weekend:0.86",), RankRequest())
        assert first.kernel.candidates is second.kernel.candidates
        assert first.group_key == second.group_key
        assert first.signature != second.signature
        scored, rows = score_prepared_batch([first, second])
        assert rows == 2
        assert scored[0] is not scored[1]
