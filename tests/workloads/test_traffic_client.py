"""The retrying HTTP load-test client (``repro.workloads.http_client``)."""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import EngineConfigError
from repro.workloads import RetryPolicy, TrafficRequest, http_client


def make_request(tenant="alice"):
    return TrafficRequest(tenant=tenant, context=None, top_k=3)


@pytest.fixture()
def flaky_server():
    """A gateway stand-in that fails each path N times, then answers.

    ``server.failures_left[path]`` holds the number of 5xx answers
    still owed before the 200.
    """

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            with server.lock:
                owed = server.failures_left.get(self.path, 0)
                if owed > 0:
                    server.failures_left[self.path] = owed - 1
                server.requests_seen += 1
            forced = server.status_for.get(self.path)
            if forced is not None:
                payload = json.dumps({"error": "forced"}).encode()
                self.send_response(forced)
            elif owed > 0:
                payload = json.dumps({"error": "induced"}).encode()
                self.send_response(503)
            else:
                payload = json.dumps(
                    {"tenant": "alice", "items": [], "stale": False}
                ).encode()
                self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args):  # quiet
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    server.lock = threading.Lock()
    server.failures_left = {}
    server.status_for = {}
    server.requests_seen = 0
    server.url = f"http://127.0.0.1:{server.server_address[1]}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


FAST = RetryPolicy(timeout=5.0, retries=3, backoff=0.001, backoff_max=0.002)


class TestRetries:
    def test_5xx_is_retried_until_it_succeeds(self, flaky_server):
        flaky_server.failures_left["/rank?tenant=alice&top_k=3"] = 2
        outcome = http_client(flaky_server.url, policy=FAST)(make_request())
        assert outcome.ok
        assert outcome.status == 200
        assert outcome.retries == 2
        assert flaky_server.requests_seen == 3

    def test_exhausted_retries_report_the_last_error(self, flaky_server):
        flaky_server.failures_left["/rank?tenant=alice&top_k=3"] = 10
        outcome = http_client(flaky_server.url, policy=FAST)(make_request())
        assert not outcome.ok
        assert outcome.retries == FAST.retries
        assert outcome.error == "HTTP 503"
        assert flaky_server.requests_seen == FAST.retries + 1

    def test_4xx_is_never_retried(self, flaky_server):
        flaky_server.status_for["/rank?tenant=alice&top_k=3"] = 400
        outcome = http_client(flaky_server.url, policy=FAST)(make_request())
        assert not outcome.ok
        assert outcome.status == 400
        assert outcome.retries == 0
        assert flaky_server.requests_seen == 1  # the request is wrong; one try

    def test_dead_server_times_out_without_hanging(self):
        # A bound-but-never-accepting socket would block; a closed port
        # refuses instantly — either way every attempt must come back
        # as a transport error, not an exception.
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # now nothing listens on `port`
        outcome = http_client(f"http://127.0.0.1:{port}", policy=FAST)(make_request())
        assert not outcome.ok
        assert outcome.retries == FAST.retries
        assert outcome.error is not None

    def test_body_flags_flow_into_the_outcome(self, flaky_server):
        outcome = http_client(flaky_server.url, policy=FAST)(make_request())
        assert outcome.stale is False and outcome.cached is False
        assert outcome.body == {"tenant": "alice", "items": [], "stale": False}


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.1, backoff_max=0.3, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.3)
        assert policy.delay(10, rng) == pytest.approx(0.3)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff=0.1, backoff_max=0.1, jitter=0.5)
        rng = random.Random(7)
        for _ in range(50):
            delay = policy.delay(1, rng)
            assert 0.1 <= delay <= 0.15

    def test_validation(self):
        with pytest.raises(EngineConfigError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(EngineConfigError):
            RetryPolicy(retries=-1)
        with pytest.raises(EngineConfigError):
            RetryPolicy(backoff=0.0)
        with pytest.raises(EngineConfigError):
            RetryPolicy(backoff=0.2, backoff_max=0.1)
        with pytest.raises(EngineConfigError):
            RetryPolicy(jitter=-0.1)
