"""Tests for the synthetic workloads: census, determinism, semantics."""

import pytest

from repro.history import estimate_sigma
from repro.workloads import (
    ContextPattern,
    PlantedRule,
    Section5Counts,
    build_tvtouch,
    generate_population,
    generate_rule_series,
    generate_test_database,
    install_context_series,
    sample_history,
    sample_workday_mornings,
)
from repro.history.episodes import Candidate


class TestSection5Database:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_test_database(seed=7)

    def test_paper_census(self, world):
        """~11,000 tuples: 1000 persons, 300 programs, 12/6/4/5 metadata."""
        census = world.census()
        assert census["concept Person"] == 1000
        assert census["concept TvProgram"] == 300
        assert census["concept Genre"] == 12
        assert census["concept Subject"] == 6
        assert census["concept Activity"] == 4
        assert census["concept Room"] == 5
        assert 10000 <= census["TOTAL"] <= 12500

    def test_relations_present(self, world):
        census = world.census()
        for role in ("role hasGenre", "role likes", "role locatedIn", "role doing", "role watched"):
            assert census[role] > 0
        assert census["role locatedIn"] == 1000
        assert census["role doing"] == 1000

    def test_deterministic_by_seed(self):
        small = Section5Counts().scaled(0.02)
        first = generate_test_database(seed=3, counts=small)
        second = generate_test_database(seed=3, counts=small)
        assert first.census() == second.census()
        third = generate_test_database(seed=4, counts=small)
        assert first.census() != third.census() or len(first.abox) == len(third.abox)

    def test_database_mirror_loaded(self, world):
        assert world.database.total_rows() >= len(world.abox)

    def test_scaled_counts(self):
        scaled = Section5Counts().scaled(0.1)
        assert scaled.persons == 100
        assert scaled.programs == 30
        assert scaled.rooms == 1  # floors at 1


class TestRuleSeries:
    @pytest.fixture()
    def world(self):
        return generate_test_database(seed=7, counts=Section5Counts().scaled(0.05))

    def test_contexts_installed_with_probabilities(self, world):
        probabilities = install_context_series(world, k=4, seed=1)
        assert len(probabilities) == 4
        assert all(0.55 <= p <= 0.95 for p in probabilities)

    def test_rules_are_applicable(self, world):
        install_context_series(world, k=3, seed=1)
        repository = generate_rule_series(world, k=3, seed=2)
        applicable = repository.applicable(world.abox, world.tbox, world.user, world.space)
        assert len(applicable) == 3
        assert all(0.0 < a.context_probability < 1.0 for a in applicable)

    def test_rules_deterministic(self, world):
        first = generate_rule_series(world, k=5, seed=2)
        second = generate_rule_series(world, k=5, seed=2)
        assert [r.sigma for r in first] == [r.sigma for r in second]


class TestHistorySampling:
    def test_workday_mornings_recover_figure1(self):
        log = sample_workday_mornings(episodes=4000, seed=5)
        traffic = estimate_sigma(log, "WorkdayMorning", "TrafficBulletin")
        weather = estimate_sigma(log, "WorkdayMorning", "WeatherBulletin")
        assert traffic.value == pytest.approx(0.8, abs=0.03)
        assert weather.value == pytest.approx(0.6, abs=0.03)

    def test_group_choices_occur(self):
        log = sample_workday_mornings(episodes=500, seed=5)
        assert any(len(episode.chosen) == 2 for episode in log)

    def test_sampling_deterministic(self):
        first = sample_workday_mornings(episodes=50, seed=9)
        second = sample_workday_mornings(episodes=50, seed=9)
        assert [e.chosen for e in first] == [e.chosen for e in second]

    def test_sample_history_respects_patterns(self):
        rules = [PlantedRule("Evening", "Movie", 0.9)]
        catalogue = [Candidate.of("m", "Movie"), Candidate.of("n", "News")]
        log = sample_history(
            rules,
            catalogue,
            [ContextPattern(frozenset({"Morning"}))],
            episodes=50,
            seed=3,
        )
        # The rule's context never occurs, so nothing is ever chosen.
        assert all(not episode.chosen for episode in log)

    def test_sample_history_validation(self):
        from repro.errors import HistoryError

        with pytest.raises(HistoryError):
            sample_history([], [], [ContextPattern(frozenset())], 1)
        with pytest.raises(HistoryError):
            sample_history([], [Candidate.of("x")], [], 1)


class TestPopulation:
    def test_population_shapes(self):
        users = generate_population(
            contexts=["Morning", "Evening", "Weekend"],
            genres=["comedy", "news", "drama", "sports"],
            size=5,
            rules_per_user=2,
            seed=1,
        )
        assert len(users) == 5
        assert all(len(user.rules) == 2 for user in users)
        assert len({user.name for user in users}) == 5

    def test_population_deterministic(self):
        kwargs = dict(contexts=["A", "B"], genres=["x", "y"], size=3, seed=2)
        first = generate_population(**kwargs)
        second = generate_population(**kwargs)
        assert [u.rules[0].sigma for u in first] == [u.rules[0].sigma for u in second]


class TestTvTouchWorkload:
    def test_world_shape(self):
        world = build_tvtouch()
        assert len(world.program_ids) == 4
        assert len(world.repository) == 2
        assert world.database.has_base_table("Programs")
