"""Preference-view memoization: hits, invalidation, bounds."""

import pytest

from repro.engine import RankingEngine, RankRequest, ViewCache
from repro.engine.cache import CacheInfo
from repro.errors import EngineConfigError
from repro.rules import PreferenceRule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def engine(world):
    return RankingEngine.from_world(world)


class TestCacheHits:
    def test_repeat_request_hits(self, engine, world):
        request = RankRequest(documents=world.program_ids)
        first = engine.rank(request)
        second = engine.rank(request)
        assert not first.from_cache
        assert second.from_cache
        info = engine.cache_info()
        assert (info.hits, info.misses) == (1, 1)
        assert second.scores() == pytest.approx(first.scores())

    def test_different_requests_share_the_view(self, engine, world):
        engine.rank(RankRequest(documents=world.program_ids))
        engine.rank("SELECT id FROM Programs WHERE preferencescore > 0.5")
        engine.rank()
        info = engine.cache_info()
        assert info.misses == 1
        assert info.hits == 2

    def test_hit_rate(self, engine):
        engine.rank()
        engine.rank()
        assert engine.cache_info().hit_rate == pytest.approx(0.5)


class TestInvalidation:
    def test_context_change_misses(self, engine, world):
        engine.rank()
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        response = engine.rank()
        assert not response.from_cache
        assert engine.cache_info().misses == 2

    def test_context_flip_back_still_cached(self, engine, world):
        baseline = engine.rank()
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        engine.rank()
        # restoring the original certain context restores the signature
        set_breakfast_weekend_context(world)
        restored = engine.rank()
        assert restored.from_cache
        assert restored.scores() == pytest.approx(baseline.scores())

    def test_static_knowledge_change_misses(self, engine, world):
        baseline = engine.rank()
        # a new catalogue entry is a *static* assertion — the cached
        # view must not survive it
        world.abox.assert_concept("TvProgram", "late_night_show")
        response = engine.rank()
        assert not response.from_cache
        assert "late_night_show" in response.scores()
        assert "late_night_show" not in baseline.scores()

    def test_rule_addition_misses(self, engine, world):
        engine.rank()
        world.repository.add(
            PreferenceRule.parse("r3", "Weekend", "TvProgram", 0.5)
        )
        response = engine.rank()
        assert not response.from_cache
        assert engine.cache_info().misses == 2

    def test_rule_removal_misses(self, engine, world):
        baseline = engine.rank()
        world.repository.remove("r1")
        response = engine.rank()
        assert not response.from_cache
        assert response.scores() != pytest.approx(baseline.scores())

    def test_explicit_invalidate(self, engine):
        engine.rank()
        engine.invalidate_cache()
        assert not engine.rank().from_cache
        assert engine.cache_info().misses == 2

    def test_method_is_part_of_the_key(self, engine):
        engine.rank()
        engine.method = "exact"
        assert not engine.rank().from_cache

    def test_cached_scores_match_fresh(self, engine, world):
        request = RankRequest(documents=world.program_ids)
        cached = engine.rank(request)  # miss
        cached2 = engine.rank(request)  # hit
        engine.invalidate_cache()
        fresh = engine.rank(request)  # recomputed
        assert cached.scores() == pytest.approx(fresh.scores())
        assert cached2.scores() == pytest.approx(fresh.scores())


class TestViewCacheUnit:
    def test_lru_eviction(self):
        cache = ViewCache(max_entries=2)
        cache.put("a", {})
        cache.put("b", {})
        assert cache.get("a") is not None  # refresh a
        cache.put("c", {})  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_info_counters(self):
        cache = ViewCache(max_entries=2)
        cache.get("missing")
        cache.put("a", {})
        cache.get("a")
        assert cache.info() == CacheInfo(hits=1, misses=1, entries=1, max_entries=2)

    def test_invalidate_keeps_counters(self):
        cache = ViewCache()
        cache.put("a", {})
        cache.get("a")
        cache.invalidate()
        info = cache.info()
        assert info.entries == 0
        assert info.hits == 1

    def test_bad_size_rejected(self):
        with pytest.raises(EngineConfigError):
            ViewCache(max_entries=0)

    def test_engine_cache_is_bounded(self, world):
        engine = RankingEngine.from_world(world, cache_size=2)
        for tick in ("t1", "t2", "t3", "t4"):
            set_breakfast_weekend_context(world, weekend_probability=0.9, tick=tick)
            engine.rank()
        assert engine.cache_info().entries == 2
