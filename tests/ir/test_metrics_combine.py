"""Unit tests for ranking metrics and score combination."""

import math

import pytest

from repro.errors import ReproError
from repro.ir import (
    average_precision,
    combine_log_linear,
    combined_ranking,
    dcg_at_k,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
    spearman_rho,
)


class TestPrecisionStyleMetrics:
    def test_precision_at_k(self):
        ranking = ["a", "b", "c", "d"]
        assert precision_at_k(ranking, {"a", "c"}, 2) == pytest.approx(0.5)
        assert precision_at_k(ranking, {"a", "c"}, 4) == pytest.approx(0.5)
        assert precision_at_k(ranking, set(), 4) == 0.0
        with pytest.raises(ReproError):
            precision_at_k(ranking, {"a"}, 0)

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "y", "hit"], {"hit"}) == pytest.approx(1 / 3)
        assert reciprocal_rank(["x"], {"hit"}) == 0.0

    def test_average_precision(self):
        ranking = ["rel", "non", "rel2"]
        # hits at ranks 1 and 3: (1/1 + 2/3) / 2
        assert average_precision(ranking, {"rel", "rel2"}) == pytest.approx((1.0 + 2 / 3) / 2)
        assert average_precision(ranking, set()) == 0.0


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], gains, 3) == pytest.approx(1.0)

    def test_reversed_ranking_is_less(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_no_gains_is_zero(self):
        assert ndcg_at_k(["a"], {}, 1) == 0.0

    def test_dcg_discounting(self):
        gains = {"a": 1.0, "b": 1.0}
        assert dcg_at_k(["a", "b"], gains, 2) == pytest.approx(1.0 + 1.0 / math.log2(3))


class TestCorrelations:
    def test_identical_orderings(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_reversed_orderings(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert spearman_rho([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        value = kendall_tau([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_length_validation(self):
        with pytest.raises(ReproError):
            kendall_tau([1], [1, 2])
        with pytest.raises(ReproError):
            spearman_rho([1], [1])

    def test_against_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        first = [0.1, 0.5, 0.3, 0.9, 0.2]
        second = [0.2, 0.4, 0.1, 0.8, 0.3]
        assert kendall_tau(first, second) == pytest.approx(
            scipy_stats.kendalltau(first, second).statistic
        )
        assert spearman_rho(first, second) == pytest.approx(
            scipy_stats.spearmanr(first, second).statistic
        )


class TestCombination:
    def test_lambda_extremes(self):
        pure_ir = combine_log_linear(0.5, 0.9, 1.0)
        pure_context = combine_log_linear(0.5, 0.9, 0.0)
        assert pure_ir == pytest.approx(math.log(0.5))
        assert pure_context == pytest.approx(math.log(0.9))

    def test_invalid_lambda(self):
        with pytest.raises(ReproError):
            combine_log_linear(0.5, 0.5, 1.5)

    def test_combined_ranking_merges_maps(self):
        ranking = combined_ranking(
            query_scores={"a": 0.9, "b": 0.1},
            preference_scores={"a": 0.2, "b": 0.8, "c": 0.99},
            mixing_weight=0.5,
        )
        docs = [score.doc_id for score in ranking]
        assert set(docs) == {"a", "b", "c"}
        # c has no query score at all; with the floor it ranks last.
        assert docs[-1] == "c"

    def test_mixing_weight_shifts_winner(self):
        query_scores = {"ir_doc": 0.9, "ctx_doc": 0.1}
        preference_scores = {"ir_doc": 0.1, "ctx_doc": 0.9}
        ir_heavy = combined_ranking(query_scores, preference_scores, 0.95)
        ctx_heavy = combined_ranking(query_scores, preference_scores, 0.05)
        assert ir_heavy[0].doc_id == "ir_doc"
        assert ctx_heavy[0].doc_id == "ctx_doc"
