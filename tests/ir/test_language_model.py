"""Unit tests for the query-likelihood baseline and smoothing."""

import math

import pytest

from repro.errors import ReproError
from repro.ir import (
    Corpus,
    Dirichlet,
    Document,
    JelinekMercer,
    LanguageModelRanker,
    Laplace,
    tokenize,
)


@pytest.fixture()
def corpus():
    corpus = Corpus()
    corpus.add_text("traffic", "traffic bulletin roads jams traffic commute")
    corpus.add_text("weather", "weather bulletin rain sunshine forecast")
    corpus.add_text("cooking", "recipes kitchen pasta dinner")
    return corpus


class TestTokenizeAndDocuments:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Channel 5 News!") == ["channel", "5", "news"]

    def test_document_from_text_counts(self):
        document = Document.from_text("d", "news news weather")
        assert document.count("news") == 2
        assert document.length == 3
        assert "weather" in document

    def test_duplicate_ids_rejected(self, corpus):
        with pytest.raises(ReproError):
            corpus.add_text("traffic", "again")

    def test_collection_statistics(self, corpus):
        assert corpus.collection_count("bulletin") == 2
        assert corpus.collection_probability("bulletin") == pytest.approx(2 / 15)
        assert "pasta" in corpus.vocabulary
        assert len(corpus) == 3


class TestSmoothing:
    def test_jelinek_mercer_interpolates(self, corpus):
        document = corpus.get("traffic")
        smoothing = JelinekMercer(0.5)
        p = smoothing.probability(corpus, document, "traffic")
        ml = 2 / 6
        collection = 2 / 15
        assert p == pytest.approx(0.5 * ml + 0.5 * collection)

    def test_unseen_term_gets_collection_mass(self, corpus):
        smoothing = JelinekMercer(0.5)
        p = smoothing.probability(corpus, corpus.get("cooking"), "weather")
        assert p > 0.0

    def test_dirichlet_shrinks_with_mu(self, corpus):
        document = corpus.get("traffic")
        near_ml = Dirichlet(mu=0.001).probability(corpus, document, "traffic")
        heavy = Dirichlet(mu=10000.0).probability(corpus, document, "traffic")
        assert near_ml == pytest.approx(2 / 6, abs=1e-3)
        assert heavy == pytest.approx(corpus.collection_probability("traffic"), abs=1e-3)

    def test_laplace_is_a_distribution_over_vocabulary(self, corpus):
        document = corpus.get("weather")
        smoothing = Laplace(1.0)
        total = sum(
            smoothing.probability(corpus, document, term) for term in corpus.vocabulary
        )
        assert total == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            JelinekMercer(1.5)
        with pytest.raises(ReproError):
            Dirichlet(0.0)
        with pytest.raises(ReproError):
            Laplace(0.0)


class TestRanker:
    def test_on_topic_document_wins(self, corpus):
        ranker = LanguageModelRanker(corpus)
        assert ranker.rank("traffic roads")[0].doc_id == "traffic"
        assert ranker.rank("rain forecast")[0].doc_id == "weather"

    def test_scores_are_probabilities(self, corpus):
        ranker = LanguageModelRanker(corpus)
        scores = ranker.score_all("bulletin")
        assert all(0.0 <= value <= 1.0 for value in scores.values())
        assert scores["traffic"] > scores["cooking"]

    def test_limit(self, corpus):
        ranker = LanguageModelRanker(corpus)
        assert len(ranker.rank("bulletin", limit=2)) == 2

    def test_log_likelihood_sums_terms(self, corpus):
        ranker = LanguageModelRanker(corpus, JelinekMercer(0.5))
        single = ranker.log_likelihood("traffic", "traffic")
        double = ranker.log_likelihood("traffic traffic", "traffic")
        assert double == pytest.approx(2 * single)

    def test_impossible_query_is_minus_infinity(self, corpus):
        # Laplace over vocabulary gives no mass to out-of-vocabulary terms.
        ranker = LanguageModelRanker(corpus, JelinekMercer(0.0))
        assert ranker.log_likelihood("zeppelin", "cooking") == -math.inf
