"""Deprecation shims: the old entry points stay importable, with a warning."""

import warnings

import pytest

import repro


class TestDeprecatedShims:
    def test_scorer_shim_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="RankingEngine"):
            shimmed = repro.ContextAwareScorer
        from repro.core import ContextAwareScorer

        assert shimmed is ContextAwareScorer

    def test_ranker_shim_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="relevance backend"):
            shimmed = repro.ContextAwareRanker
        from repro.core import ContextAwareRanker

        assert shimmed is ContextAwareRanker

    def test_from_import_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro import ContextAwareScorer  # noqa: F401

    def test_shimmed_scorer_still_scores(self):
        from repro.workloads import build_tvtouch, set_breakfast_weekend_context

        world = build_tvtouch()
        set_breakfast_weekend_context(world)
        with pytest.warns(DeprecationWarning):
            scorer_class = repro.ContextAwareScorer
        scorer = scorer_class(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        assert scorer.score_map(world.program_ids)["channel5_news"] == pytest.approx(
            0.6006, abs=1e-9
        )

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.DefinitelyNotAThing


class TestPublicSurface:
    def test_new_api_importable_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro import (  # noqa: F401
                EngineBuilder,
                RankRequest,
                RankResponse,
                RankingEngine,
            )

    def test_all_names_resolve(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in repro.__all__:
                assert getattr(repro, name) is not None, name

    def test_deprecated_names_stay_in_all(self):
        assert "ContextAwareScorer" in repro.__all__
        assert "ContextAwareRanker" in repro.__all__

    def test_dir_lists_shims(self):
        listing = dir(repro)
        assert "ContextAwareScorer" in listing
        assert "RankingEngine" in listing
