"""`combine_top_k` must be indistinguishable from `combine(...)[:k]`.

The engine routes every top-k request through the backend's heap
shortcut, so any divergence — order, positions, tie-breaks, dropped
documents — would silently change served rankings.
"""

import random

import pytest

from repro.engine.relevance import (
    GatedRelevance,
    LogLinearRelevance,
    MixedRelevance,
)

STRATEGIES = [GatedRelevance(), MixedRelevance(0.3), LogLinearRelevance(0.7)]


def score_maps(seed):
    rng = random.Random(seed)
    documents = [f"doc_{index:03d}" for index in range(rng.randrange(1, 120))]
    # Quantised scores so ties are common and tie-breaking is exercised.
    preference = {doc: rng.randrange(6) / 5.0 for doc in documents}
    query = None
    if seed % 2:
        query = {doc: rng.randrange(4) / 3.0 for doc in rng.sample(documents, len(documents) // 2)}
    rng.shuffle(documents)
    return preference, query, documents


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
def test_top_k_matches_sliced_full_ranking(strategy):
    for seed in range(40):
        preference, query, documents = score_maps(seed)
        full = strategy.combine(preference, query, documents)
        for k in (0, 1, 3, len(documents), len(documents) + 5):
            assert strategy.combine_top_k(preference, query, documents, k) == full[:k]


def test_engine_top_k_identical_with_and_without_shortcut():
    from repro.engine import RankingEngine, RankRequest
    from repro.workloads import build_tvtouch, set_breakfast_weekend_context

    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    engine = RankingEngine.from_world(world)
    reference = engine.rank(RankRequest()).items[:2]
    shortcut = engine.rank(RankRequest(top_k=2)).items
    assert shortcut == reference
