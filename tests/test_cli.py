"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads import sample_workday_mornings

RULES_TEXT = (
    "RULE r1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8\n"
    "RULE r2: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9\n"
)


@pytest.fixture()
def rules_file(tmp_path):
    path = tmp_path / "rules.prefs"
    path.write_text(RULES_TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture()
def history_file(tmp_path):
    log = sample_workday_mornings(episodes=200, seed=3)
    path = tmp_path / "history.jsonl"
    log.save(path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_example_command_parses(self):
        args = build_parser().parse_args(["example"])
        assert args.command == "example"

    def test_rank_command_options(self):
        args = build_parser().parse_args(["rank", "rules.prefs", "--context", "Weekend"])
        assert args.context == ["Weekend"]

    def test_serve_command_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--shards", "4", "--max-concurrency", "2"]
        )
        assert args.command == "serve"
        assert (args.port, args.shards, args.max_concurrency) == (0, 4, 2)
        assert args.host == "127.0.0.1"
        assert args.max_sessions == 4096


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "channel5_news" in out
        assert "0.6006" in out

    def test_rank_with_certain_context(self, rules_file, capsys):
        assert main(["rank", rules_file, "--context", "Weekend", "--context", "Breakfast"]) == 0
        out = capsys.readouterr().out
        assert "0.6006" in out

    def test_rank_with_uncertain_context(self, rules_file, capsys):
        assert main(["rank", rules_file, "--context", "Weekend", "--context", "Breakfast:0.5"]) == 0
        out = capsys.readouterr().out
        assert "channel5_news" in out

    def test_rank_uncovered_context_warns(self, rules_file, capsys):
        assert main(["rank", rules_file]) == 0
        err = capsys.readouterr().err
        assert "no rule applies" in err

    def test_rank_bad_context_spec_clean_error(self, rules_file, capsys):
        assert main(["rank", rules_file, "--context", "Breakfast:abc"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "probability" in err

    def test_rank_missing_rules_file_clean_error(self, tmp_path, capsys):
        assert main(["rank", str(tmp_path / "nope.prefs")]) == 2
        assert "error: cannot load rule file" in capsys.readouterr().err

    def test_rank_malformed_rules_file_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.prefs"
        path.write_text("RULE broken WHEN\n", encoding="utf-8")
        assert main(["rank", str(path)]) == 2
        assert "error: cannot load rule file" in capsys.readouterr().err

    def test_mine(self, history_file, capsys):
        assert main(["mine", history_file, "--min-support", "5", "--min-lift", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "WorkdayMorning" in out
        assert "TrafficBulletin" in out

    def test_mine_thresholds_too_strict(self, history_file, capsys):
        assert main(["mine", history_file, "--min-support", "100000"]) == 1

    def test_serve_missing_rules_file_clean_error(self, tmp_path, capsys):
        code = main(["serve", "--rules", str(tmp_path / "nope.prefs"), "--port", "0"])
        assert code == 2
        assert "cannot load rule file" in capsys.readouterr().err

    def test_scaling(self, capsys):
        assert main(["scaling", "--max-rules", "3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "naive (s)" in out
        assert "naive growth per extra rule" in out
