"""End-to-end tests for the :class:`RankingEngine` facade."""

import pytest

from repro.core import ContextAwareScorer
from repro.engine import (
    GatedRelevance,
    GroupRelevance,
    LogLinearRelevance,
    MixedRelevance,
    RankingEngine,
    RankRequest,
    RankResponse,
)
from repro.errors import EngineError
from repro.multiuser import GroupRanker
from repro.workloads import (
    EXPECTED_TABLE1_SCORES,
    build_tvtouch,
    set_breakfast_weekend_context,
)

QUERY = (
    "SELECT name, preferencescore FROM Programs "
    "WHERE preferencescore > 0.5 ORDER BY preferencescore DESC"
)


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def engine(world):
    return RankingEngine.from_world(world)


class TestAcceptance:
    def test_one_call_sql_pipeline(self, engine):
        response = engine.rank(RankRequest(query=QUERY))
        assert isinstance(response, RankResponse)
        assert response.result is not None
        assert response.result.column("name") == ["Channel 5 news"]
        # No id column in the projection: the query's filter cannot be
        # mapped back onto documents, so the response carries the raw
        # SQL result and no fabricated item ranking.
        assert response.items == ()

    def test_sql_string_shorthand(self, engine):
        response = engine.rank(QUERY)
        assert response.result is not None
        assert len(response.result) == 1

    def test_id_projection_gates_items(self, engine):
        response = engine.rank(
            "SELECT id, preferencescore FROM Programs WHERE preferencescore > 0.1"
        )
        assert response.documents() == ["channel5_news", "bbc_news"]
        assert all(item.query_dependent == 1.0 for item in response)

    def test_table1_scores(self, engine, world):
        response = engine.rank(RankRequest(documents=world.program_ids))
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert response.scores()[program] == pytest.approx(expected, abs=1e-9)

    def test_paper_ranking_order(self, engine):
        response = engine.rank()  # no request: every target member
        assert response.documents() == ["channel5_news", "bbc_news", "oprah", "mpfs"]
        positions = [item.position for item in response]
        assert positions == [1, 2, 3, 4]


class TestParity:
    def test_matches_direct_scorer(self, engine, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        direct = scorer.score_map(world.program_ids)
        response = engine.rank(RankRequest(documents=world.program_ids))
        assert response.scores() == pytest.approx(direct)

    def test_batch_matches_single(self, engine, world):
        requests = [
            RankRequest(documents=world.program_ids),
            RankRequest(documents=world.program_ids, top_k=2),
            QUERY,
        ]
        batched = engine.rank_many(requests)
        engine.invalidate_cache()
        singles = [engine.rank(request) for request in requests]
        assert len(batched) == 3
        for batch_response, single_response in zip(batched, singles):
            assert batch_response.scores() == pytest.approx(single_response.scores())
            assert batch_response.documents() == single_response.documents()

    def test_batch_costs_one_view_computation(self, engine, world):
        engine.rank_many([RankRequest(documents=world.program_ids)] * 5)
        info = engine.cache_info()
        assert info.misses == 1
        assert info.hits == 4


class TestResponseShape:
    def test_iter_and_len(self, engine, world):
        response = engine.rank(RankRequest(documents=world.program_ids))
        assert len(response) == 4
        assert [item.document for item in response] == response.documents()

    def test_top_k(self, engine, world):
        response = engine.rank(RankRequest(documents=world.program_ids, top_k=2))
        assert len(response) == 2
        assert response.top().document == "channel5_news"

    def test_to_table_renders_through_shared_renderer(self, engine, world):
        response = engine.rank(RankRequest(documents=world.program_ids))
        rendered = response.render(names={"channel5_news": "Channel 5 news"})
        assert "Channel 5 news" in rendered
        assert "0.6006" in rendered
        assert rendered.splitlines()[0].split() == ["rank", "document", "score"]

    def test_explain_threads_through(self, engine, world):
        response = engine.rank(RankRequest(documents=world.program_ids, explain=True))
        assert response.explanation is not None
        assert "rule r1" in response.explanation
        assert "0.6006" in response.explanation
        no_explain = engine.rank(RankRequest(documents=world.program_ids))
        assert no_explain.explanation is None

    def test_engine_explain_single_document(self, engine):
        text = engine.explain("channel5_news")
        assert "P(ideal | context) = 0.6006" in text


class TestRequestValidation:
    def test_query_and_query_scores_conflict(self):
        with pytest.raises(EngineError):
            RankRequest(query="SELECT 1", query_scores={"a": 1.0})

    def test_top_k_positive(self):
        with pytest.raises(EngineError):
            RankRequest(top_k=0)

    def test_documents_normalised_to_tuple(self):
        request = RankRequest(documents=["b", "a"])
        assert request.documents == ("b", "a")

    def test_query_scores_normalised(self):
        request = RankRequest(query_scores={"b": 0.5, "a": 1.0})
        assert request.query_scores == (("a", 1.0), ("b", 0.5))
        assert request.query_score_map == {"a": 1.0, "b": 0.5}

    def test_query_scores_sequence_normalised_and_hashable(self):
        request = RankRequest(query_scores=[("b", 0.5), ("a", 1.0)])
        assert request.query_scores == (("a", 1.0), ("b", 0.5))
        assert isinstance(hash(request), int)

    def test_bad_request_type_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.rank(42)

    def test_query_without_storage_rejected(self, world):
        engine = (
            RankingEngine.builder()
            .knowledge(world.abox, world.tbox, world.user, world.space)
            .preferences(world.repository)
            .target(world.target)
            .build()
        )
        with pytest.raises(EngineError, match="storage"):
            engine.rank(QUERY)


class TestRelevanceStrategies:
    def test_gated_without_query_is_pure_preference(self, world):
        engine = RankingEngine.from_world(world, relevance=GatedRelevance())
        response = engine.rank(RankRequest(documents=world.program_ids))
        assert all(item.query_dependent is None for item in response)

    def test_mixed_strategy(self, world):
        engine = RankingEngine.from_world(world)
        engine.relevance = MixedRelevance(mixing_weight=0.5)
        scores = {"channel5_news": 0.4, "mpfs": 1.0}
        response = engine.rank(
            RankRequest(documents=world.program_ids, query_scores=scores)
        )
        expected = (0.4 ** 0.5) * (EXPECTED_TABLE1_SCORES["channel5_news"] ** 0.5)
        assert response.scores()["channel5_news"] == pytest.approx(expected)
        # absent from query scores -> gated to 0 in the open interval
        assert response.scores()["bbc_news"] == 0.0

    def test_log_linear_strategy(self, world):
        engine = RankingEngine.from_world(world, relevance="log_linear")
        assert isinstance(engine.relevance, LogLinearRelevance)
        response = engine.rank(
            RankRequest(documents=world.program_ids, query_scores={"bbc_news": 0.9})
        )
        # log-space scores: present-in-both beats penalised documents
        assert response.top().document == "bbc_news"
        assert all(item.score <= 0.0 for item in response)

    def test_group_relevance_plugin(self, world):
        group = GroupRanker(
            [
                RankingEngine.from_world(world).as_member("peter"),
                RankingEngine.from_world(world).as_member("mary"),
            ],
            strategy="average",
        )
        engine = (
            RankingEngine.builder().world(world).relevance(GroupRelevance(group)).build()
        )
        response = engine.rank(RankRequest(documents=world.program_ids))
        # identical members: the average equals the single-user score
        for program, expected in EXPECTED_TABLE1_SCORES.items():
            assert response.scores()[program] == pytest.approx(expected, abs=1e-9)
        # the group backend opted out of the engine's own view: no
        # single-user scoring ran for the document-list request
        info = engine.cache_info()
        assert (info.hits, info.misses) == (0, 0)


class TestContextHelpers:
    def test_install_context_and_coverage(self):
        world = build_tvtouch()
        engine = RankingEngine.from_world(world)
        engine.install_context()  # empty context
        assert not engine.context_covered()
        engine.install_context("Weekend", "Breakfast")
        assert engine.context_covered()
        response = engine.rank(RankRequest(documents=world.program_ids))
        assert response.scores()["channel5_news"] == pytest.approx(0.6006, abs=1e-9)

    def test_reinstall_uncertain_context_with_new_probability(self):
        # a long-lived engine must survive the same concept arriving at
        # a different probability (a fresh event is allocated), and
        # re-installing an identical spec must restore the cache entry
        world = build_tvtouch()
        engine = RankingEngine.from_world(world)
        engine.install_context("Weekend", "Breakfast:0.7")
        first = engine.rank()
        engine.install_context("Weekend", "Breakfast:0.3")
        lower = engine.rank()
        assert not lower.from_cache
        assert lower.scores() != pytest.approx(first.scores())
        engine.install_context("Weekend", "Breakfast:0.7")
        again = engine.rank()
        assert again.from_cache
        assert again.scores() == pytest.approx(first.scores())

    def test_bad_context_specs_rejected(self):
        from repro.errors import EngineConfigError

        engine = RankingEngine.from_world(build_tvtouch())
        with pytest.raises(EngineConfigError, match="must be a probability"):
            engine.install_context("Breakfast:abc")
        with pytest.raises(EngineConfigError, match="in \\[0, 1\\]"):
            engine.install_context("Breakfast:1.5")

    def test_uncertain_install_spec(self):
        world = build_tvtouch()
        engine = RankingEngine.from_world(world)
        engine.install_context("Weekend", "Breakfast")
        certain = engine.preference_scores()
        engine.install_context("Weekend", "Breakfast:0.5", tick="t9")
        uncertain = engine.preference_scores()
        # a half-certain breakfast pulls every r2 factor toward the
        # neutral 1: matching documents rise, missing documents rise too
        assert uncertain["channel5_news"] != pytest.approx(certain["channel5_news"])
        assert uncertain["oprah"] > certain["oprah"]
        assert 0.0 < uncertain["channel5_news"] < 1.0
