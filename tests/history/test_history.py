"""Unit tests for episodes, the log and the sigma estimator."""

import pytest

from repro.errors import HistoryError
from repro.history import Candidate, Episode, HistoryLog, estimate_sigma, sigma_table


def make_morning_episode(choose_traffic: bool, choose_weather: bool, label: str = "") -> Episode:
    return Episode.build(
        context=["Workday", "Morning"],
        candidates=[
            Candidate.of("t", "traffic"),
            Candidate.of("w", "weather"),
            Candidate.of("m", "movie"),
        ],
        chosen=(["t"] if choose_traffic else []) + (["w"] if choose_weather else []),
        label=label,
    )


class TestEpisode:
    def test_chosen_must_be_candidates(self):
        with pytest.raises(HistoryError):
            Episode.build(context=["C"], candidates=[Candidate.of("a")], chosen=["b"])

    def test_duplicate_candidates_rejected(self):
        with pytest.raises(HistoryError):
            Episode.build(
                context=["C"],
                candidates=[Candidate.of("a"), Candidate.of("a")],
                chosen=[],
            )

    def test_group_choice_supported(self):
        episode = make_morning_episode(True, True)
        assert episode.chose("traffic") and episode.chose("weather")
        assert len(episode.chosen_candidates()) == 2

    def test_offered_vs_chosen(self):
        episode = make_morning_episode(True, False)
        assert episode.offered("weather")
        assert not episode.chose("weather")
        assert not episode.offered("sports")

    def test_document_features(self):
        episode = make_morning_episode(False, False)
        assert episode.document_features == {"traffic", "weather", "movie"}

    def test_json_round_trip(self):
        episode = make_morning_episode(True, False, label="mon")
        assert Episode.from_json_line(episode.to_json_line()) == episode


class TestHistoryLog:
    def test_record_and_query(self):
        log = HistoryLog([make_morning_episode(True, False)])
        log.record(make_morning_episode(False, True))
        assert len(log) == 2
        assert len(log.with_context("Morning")) == 2
        assert len(log.with_context("Evening")) == 0

    def test_only_episodes_accepted(self):
        with pytest.raises(HistoryError):
            HistoryLog().record("not an episode")

    def test_feature_enumeration(self):
        log = HistoryLog([make_morning_episode(True, False)])
        assert log.context_features() == {"Workday", "Morning"}
        assert "traffic" in log.document_features()
        assert ("Morning", "traffic") in log.observed_pairs()

    def test_save_and_load(self, tmp_path):
        log = HistoryLog([make_morning_episode(True, True), make_morning_episode(False, False)])
        path = tmp_path / "history.jsonl"
        assert log.save(path) == 2
        restored = HistoryLog.load(path)
        assert len(restored) == 2
        assert restored[0] == log[0]


class TestSigmaEstimation:
    def test_figure1_distribution(self):
        """Figure 1: traffic chosen 80% of workday mornings, weather 60%."""
        log = HistoryLog()
        for index in range(10):
            log.record(
                make_morning_episode(choose_traffic=index < 8, choose_weather=index % 10 < 6)
            )
        traffic = estimate_sigma(log, "Morning", "traffic")
        weather = estimate_sigma(log, "Morning", "weather")
        assert traffic.value == pytest.approx(0.8)
        assert weather.value == pytest.approx(0.6)
        # The paper's derived number: P(neither featured) = 0.2 * 0.4 = 0.08.
        assert (1 - traffic.value) * (1 - weather.value) == pytest.approx(0.08)

    def test_availability_conditioning(self):
        """Episodes without an f-candidate don't count against sigma."""
        log = HistoryLog()
        log.record(
            Episode.build(
                context=["Morning"],
                candidates=[Candidate.of("m", "movie")],  # no traffic available
                chosen=["m"],
            )
        )
        log.record(make_morning_episode(True, False))
        estimate = estimate_sigma(log, "Morning", "traffic")
        assert estimate.denominator == 1
        assert estimate.value == pytest.approx(1.0)

    def test_undefined_sigma(self):
        log = HistoryLog([make_morning_episode(True, False)])
        estimate = estimate_sigma(log, "Evening", "traffic")
        assert not estimate.defined
        with pytest.raises(HistoryError):
            _ = estimate.value

    def test_smoothed_value_always_defined(self):
        log = HistoryLog()
        estimate = estimate_sigma(log, "Evening", "traffic")
        assert estimate.smoothed() == pytest.approx(0.5)

    def test_sigma_table_support_filter(self):
        log = HistoryLog([make_morning_episode(True, False)])
        table = sigma_table(log, min_support=1)
        assert ("Morning", "traffic") in table
        assert all(estimate.denominator >= 1 for estimate in table.values())
        with pytest.raises(HistoryError):
            sigma_table(log, min_support=0)

    def test_sigma_counts_episodes_not_documents(self):
        """A group choice of two traffic docs still counts once."""
        log = HistoryLog()
        log.record(
            Episode.build(
                context=["Morning"],
                candidates=[
                    Candidate.of("t1", "traffic"),
                    Candidate.of("t2", "traffic"),
                ],
                chosen=["t1", "t2"],
            )
        )
        estimate = estimate_sigma(log, "Morning", "traffic")
        assert estimate.numerator == 1
        assert estimate.denominator == 1
