"""Unit tests for event spaces, mutex groups and the chain encoding."""

import pytest

from repro.errors import EventSpaceError, UnknownEventError
from repro.events import EventSpace, chain_encode, probability


@pytest.fixture()
def space():
    return EventSpace("test")


class TestRegistration:
    def test_event_registration_roundtrip(self, space):
        event = space.event("x", 0.3)
        assert space.get("x") is event
        assert "x" in space
        assert len(space) == 1

    def test_reregistration_same_probability_is_noop(self, space):
        first = space.event("x", 0.3)
        second = space.event("x", 0.3)
        assert first is second

    def test_reregistration_different_probability_fails(self, space):
        space.event("x", 0.3)
        with pytest.raises(EventSpaceError):
            space.event("x", 0.4)

    def test_unknown_event_lookup_fails(self, space):
        with pytest.raises(UnknownEventError):
            space.get("missing")

    def test_invalid_probability_rejected(self, space):
        with pytest.raises(EventSpaceError):
            space.event("x", 1.5)
        with pytest.raises(EventSpaceError):
            space.event("y", -0.1)
        with pytest.raises(EventSpaceError):
            space.event("z", float("nan"))

    def test_empty_name_rejected(self, space):
        with pytest.raises(EventSpaceError):
            space.event("", 0.5)

    def test_fresh_atoms_are_unique(self, space):
        names = {space.fresh_atom(0.5).name for _ in range(100)}
        assert len(names) == 100

    def test_atom_without_probability_requires_registration(self, space):
        with pytest.raises(UnknownEventError):
            space.atom("nope")


class TestMutexGroups:
    def test_declare_and_lookup(self, space):
        space.event("kitchen", 0.6)
        space.event("livingroom", 0.3)
        group = space.declare_mutex("location", ["kitchen", "livingroom"])
        assert group.none_probability == pytest.approx(0.1)
        assert space.group_of("kitchen") is group
        assert space.group_of("unrelated-name") is None
        assert space.are_exclusive("kitchen", "livingroom")
        assert not space.are_exclusive("kitchen", "kitchen")

    def test_probabilities_must_sum_to_at_most_one(self, space):
        space.event("p", 0.7)
        space.event("q", 0.7)
        with pytest.raises(EventSpaceError):
            space.declare_mutex("bad", ["p", "q"])

    def test_event_cannot_join_two_groups(self, space):
        for name in ("a", "b", "c"):
            space.event(name, 0.2)
        space.declare_mutex("g1", ["a", "b"])
        with pytest.raises(EventSpaceError):
            space.declare_mutex("g2", ["a", "c"])

    def test_duplicate_members_rejected(self, space):
        space.event("a", 0.2)
        with pytest.raises(EventSpaceError):
            space.declare_mutex("g", ["a", "a"])

    def test_singleton_group_rejected(self, space):
        space.event("a", 0.2)
        with pytest.raises(EventSpaceError):
            space.declare_mutex("g", ["a"])

    def test_redeclaring_group_rejected(self, space):
        for name in ("a", "b", "c", "d"):
            space.event(name, 0.2)
        space.declare_mutex("g", ["a", "b"])
        with pytest.raises(EventSpaceError):
            space.declare_mutex("g", ["c", "d"])

    def test_mutex_choice_helper(self, space):
        atoms = space.mutex_choice("act", {"cooking": 0.5, "reading": 0.3}, prefix="act:")
        assert set(atoms) == {"cooking", "reading"}
        assert space.are_exclusive("act:cooking", "act:reading")


class TestMutexSemantics:
    def test_disjoint_union_adds(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        assert probability(a | b, space) == pytest.approx(0.9)

    def test_joint_occurrence_impossible(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        assert probability(a & b, space) == pytest.approx(0.0)

    def test_one_implies_not_other(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        assert probability(a & ~b, space) == pytest.approx(0.6)

    def test_without_space_atoms_independent(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        # Passing no space ignores the mutex declaration.
        assert probability(a & b, None) == pytest.approx(0.18)


class TestChainEncoding:
    def test_no_groups_is_identity(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        expr = a & ~b
        encoded, probs = chain_encode(expr, space)
        assert encoded == expr
        assert probs == {"a": 0.6, "b": 0.3}

    def test_chain_probabilities(self, space):
        space.atom("a", 0.5)
        space.atom("b", 0.25)
        space.declare_mutex("g", ["a", "b"])
        _encoded, probs = chain_encode(space.atom("a") | space.atom("b"), space)
        chain_names = sorted(name for name in probs if name.startswith("__chain"))
        assert len(chain_names) == 2
        assert probs[chain_names[0]] == pytest.approx(0.5)
        assert probs[chain_names[1]] == pytest.approx(0.5)  # 0.25 / (1 - 0.5)

    def test_exhausted_mass_gives_zero_conditional(self, space):
        space.atom("a", 1.0)
        space.atom("b", 0.0)
        space.declare_mutex("g", ["a", "b"])
        _encoded, probs = chain_encode(space.atom("b"), space)
        chain_names = sorted(name for name in probs if name.startswith("__chain"))
        assert probs[chain_names[1]] == pytest.approx(0.0)

    def test_encoding_preserves_probability(self, space):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.2)
        c = space.atom("c", 0.4)
        space.declare_mutex("g", ["a", "b"])
        for expr in (a, b, a | b, a & c, (a | b) & ~c, ~a & ~b):
            direct = probability(expr, space, engine="worlds")
            via_bdd = probability(expr, space, engine="bdd")
            assert via_bdd == pytest.approx(direct, abs=1e-12)
