"""Unit tests for event-expression serialisation."""

import pytest

from repro.errors import ParseError
from repro.events import ALWAYS, NEVER, BasicEvent, atom, dumps, loads


@pytest.fixture()
def a():
    return atom(BasicEvent("sensor:loc a/b", 0.25))


@pytest.fixture()
def b():
    return atom(BasicEvent("b", 0.5))


class TestRoundTrip:
    def test_constants(self):
        assert loads(dumps(ALWAYS)) is ALWAYS
        assert loads(dumps(NEVER)) is NEVER

    def test_atom_with_awkward_name(self, a):
        assert loads(dumps(a)) == a

    def test_nested_expression(self, a, b):
        expr = (a & ~b) | (~a & b)
        assert loads(dumps(expr)) == expr

    def test_probability_preserved(self, a):
        restored = loads(dumps(a))
        (event,) = restored.atoms()
        assert event.probability == pytest.approx(0.25)

    def test_name_with_parentheses(self):
        tricky = atom(BasicEvent("fact(x, y)", 0.5))
        assert loads(dumps(tricky)) == tricky


class TestParseFailures:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "(",
            "(a name)",
            "(a name notaprob )",
            "(z x)",
            "(n T",
            "(&)",
            "T extra",
            ")",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            loads(text)
