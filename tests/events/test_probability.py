"""Unit tests for the probability engines on hand-computable cases."""

import pytest

from repro.errors import ComplexityLimitError, EventError
from repro.events import (
    ALWAYS,
    NEVER,
    EventSpace,
    ShannonEngine,
    conditional_probability,
    probability,
    probability_by_bdd,
    probability_by_dnf,
    probability_by_enumeration,
    probability_by_shannon,
)

ALL_ENGINES = ["shannon", "bdd", "worlds", "dnf"]


@pytest.fixture()
def space():
    return EventSpace()


@pytest.mark.parametrize("engine", ALL_ENGINES)
class TestEveryEngine:
    def test_constants(self, space, engine):
        assert probability(ALWAYS, space, engine) == 1.0
        assert probability(NEVER, space, engine) == 0.0

    def test_single_atom(self, space, engine):
        a = space.atom("a", 0.3)
        assert probability(a, space, engine) == pytest.approx(0.3)
        assert probability(~a, space, engine) == pytest.approx(0.7)

    def test_independent_conjunction(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        assert probability(a & b, space, engine) == pytest.approx(0.2)

    def test_independent_disjunction(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        assert probability(a | b, space, engine) == pytest.approx(0.7)

    def test_shared_atom_not_double_counted(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        # (a & b) | (a & ~b) == a
        expr = (a & b) | (a & ~b)
        assert probability(expr, space, engine) == pytest.approx(0.5)

    def test_xor_probability(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        xor = (a & ~b) | (~a & b)
        assert probability(xor, space, engine) == pytest.approx(0.5 * 0.6 + 0.5 * 0.4)

    def test_figure1_neither_bulletin(self, space, engine):
        """Figure 1 of the paper: P(neither traffic nor weather) = 0.08."""
        traffic = space.atom("traffic", 0.8)
        weather = space.atom("weather", 0.6)
        assert probability(~traffic & ~weather, space, engine) == pytest.approx(0.08)

    def test_mutex_group(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        assert probability(a | b, space, engine) == pytest.approx(0.8)
        assert probability(a & b, space, engine) == pytest.approx(0.0)
        assert probability(~a & ~b, space, engine) == pytest.approx(0.2)

    def test_mutex_mixed_with_independent(self, space, engine):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.3)
        c = space.atom("c", 0.4)
        space.declare_mutex("g", ["a", "b"])
        # (a | b) & c : groups independent of c
        assert probability((a | b) & c, space, engine) == pytest.approx(0.8 * 0.4)


class TestFacade:
    def test_unknown_engine_rejected(self, space):
        a = space.atom("a", 0.5)
        with pytest.raises(EventError):
            probability(a, space, engine="magic")

    def test_default_engine_is_shannon(self, space):
        a = space.atom("a", 0.25)
        assert probability(a, space) == pytest.approx(0.25)


class TestConditional:
    def test_conditional_probability(self, space):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        # P(a | a or b) = 0.5 / 0.7
        assert conditional_probability(a, a | b, space) == pytest.approx(0.5 / 0.7)

    def test_conditioning_on_impossible_event_fails(self, space):
        a = space.atom("a", 0.5)
        with pytest.raises(EventError):
            conditional_probability(a, NEVER, space)


class TestEngineSpecifics:
    def test_enumeration_respects_limit(self, space):
        atoms = [space.atom(f"x{i}", 0.5) for i in range(8)]
        expr = atoms[0]
        for extra in atoms[1:]:
            expr = expr | extra
        with pytest.raises(ComplexityLimitError):
            probability_by_enumeration(expr, space, limit=4)

    def test_dnf_term_limit(self, space):
        atoms = [space.atom(f"x{i}", 0.5) for i in range(25)]
        expr = atoms[0]
        for extra in atoms[1:]:
            expr = expr | extra
        with pytest.raises(ComplexityLimitError):
            probability_by_dnf(expr, space, term_limit=10)

    def test_shannon_engine_memo_reuse(self, space):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        engine = ShannonEngine(space)
        assert engine.probability(a & b) == pytest.approx(0.2)
        assert engine.probability(a & b) == pytest.approx(0.2)
        engine.clear()
        assert engine.probability(a | b) == pytest.approx(0.7)

    def test_bdd_handles_moderate_width(self, space):
        # 24 independent atoms in a disjunction: enumeration would need
        # 2^24 worlds, the BDD is linear.
        atoms = [space.atom(f"x{i}", 0.5) for i in range(24)]
        expr = atoms[0]
        for extra in atoms[1:]:
            expr = expr | extra
        expected = 1.0 - 0.5**24
        assert probability_by_bdd(expr, space) == pytest.approx(expected)
        assert probability_by_shannon(expr, space) == pytest.approx(expected)

    def test_results_clamped_to_unit_interval(self, space):
        a = space.atom("a", 0.999999)
        b = space.atom("b", 0.999999)
        for engine in ALL_ENGINES:
            value = probability(a | b, space, engine)
            assert 0.0 <= value <= 1.0
