"""Unit tests for event-expression construction and simplification."""

import pytest

from repro.errors import EventError
from repro.events import ALWAYS, NEVER, And, Atom, BasicEvent, Not, Or, atom, conj, disj, neg


@pytest.fixture()
def a():
    return atom(BasicEvent("a", 0.5))


@pytest.fixture()
def b():
    return atom(BasicEvent("b", 0.25))


@pytest.fixture()
def c():
    return atom(BasicEvent("c", 0.75))


class TestConstants:
    def test_always_is_certain(self):
        assert ALWAYS.is_certain
        assert not ALWAYS.is_impossible

    def test_never_is_impossible(self):
        assert NEVER.is_impossible
        assert not NEVER.is_certain

    def test_constants_evaluate(self):
        assert ALWAYS.evaluate({}) is True
        assert NEVER.evaluate({}) is False

    def test_constants_have_no_atoms(self):
        assert ALWAYS.atoms() == frozenset()
        assert NEVER.atoms() == frozenset()


class TestAtom:
    def test_atom_requires_basic_event(self):
        with pytest.raises(EventError):
            Atom("not-an-event")

    def test_atom_name_and_atoms(self, a):
        assert a.name == "a"
        assert a.atom_names() == frozenset({"a"})

    def test_atom_evaluate(self, a):
        assert a.evaluate({"a": True}) is True
        assert a.evaluate({"a": False}) is False

    def test_atom_evaluate_missing_assignment(self, a):
        with pytest.raises(EventError):
            a.evaluate({})

    def test_atom_substitute(self, a):
        assert a.substitute({"a": True}) is ALWAYS
        assert a.substitute({"a": False}) is NEVER
        assert a.substitute({"b": True}) == a


class TestNegation:
    def test_double_negation_cancels(self, a):
        assert neg(neg(a)) == a

    def test_negation_of_constants(self):
        assert neg(ALWAYS) is NEVER
        assert neg(NEVER) is ALWAYS

    def test_invert_operator(self, a):
        assert ~a == neg(a)

    def test_negation_evaluate(self, a):
        assert (~a).evaluate({"a": True}) is False


class TestConjunction:
    def test_identity_element(self, a):
        assert conj([a, ALWAYS]) == a

    def test_annihilator(self, a):
        assert conj([a, NEVER]) is NEVER

    def test_empty_conjunction_is_true(self):
        assert conj([]) is ALWAYS

    def test_single_child_collapses(self, a):
        assert conj([a]) == a

    def test_flattening(self, a, b, c):
        nested = conj([a, conj([b, c])])
        flat = conj([a, b, c])
        assert nested == flat
        assert isinstance(nested, And)
        assert len(nested.children) == 3

    def test_deduplication(self, a, b):
        assert conj([a, a, b]) == conj([a, b])

    def test_complementary_pair_collapses_to_never(self, a, b):
        assert conj([a, ~a]) is NEVER
        assert conj([a, b, ~a]) is NEVER

    def test_order_does_not_matter(self, a, b, c):
        assert conj([a, b, c]) == conj([c, b, a])

    def test_and_operator(self, a, b):
        assert (a & b) == conj([a, b])

    def test_evaluate(self, a, b):
        expr = a & b
        assert expr.evaluate({"a": True, "b": True}) is True
        assert expr.evaluate({"a": True, "b": False}) is False


class TestDisjunction:
    def test_identity_element(self, a):
        assert disj([a, NEVER]) == a

    def test_annihilator(self, a):
        assert disj([a, ALWAYS]) is ALWAYS

    def test_empty_disjunction_is_false(self):
        assert disj([]) is NEVER

    def test_flattening_and_dedup(self, a, b, c):
        assert disj([a, disj([b, c]), b]) == disj([a, b, c])

    def test_complementary_pair_collapses_to_always(self, a):
        assert disj([a, ~a]) is ALWAYS

    def test_or_operator(self, a, b):
        assert (a | b) == disj([a, b])

    def test_evaluate(self, a, b):
        expr = a | b
        assert expr.evaluate({"a": False, "b": False}) is False
        assert expr.evaluate({"a": False, "b": True}) is True


class TestStructuralIdentity:
    def test_equal_structures_hash_equal(self, a, b):
        assert hash(a & b) == hash(b & a)
        assert (a & b) == (b & a)

    def test_distinct_structures_differ(self, a, b):
        assert (a & b) != (a | b)

    def test_atoms_union(self, a, b, c):
        assert ((a & b) | c).atom_names() == {"a", "b", "c"}


class TestSubstitute:
    def test_partial_substitution_simplifies(self, a, b):
        expr = (a & b) | (~a & ~b)
        assert expr.substitute({"a": True}) == b
        assert expr.substitute({"a": False}) == ~b

    def test_full_substitution_gives_constant(self, a, b):
        expr = a & b
        assert expr.substitute({"a": True, "b": True}) is ALWAYS
        assert expr.substitute({"a": True, "b": False}) is NEVER


class TestStringRendering:
    def test_atom_str(self, a):
        assert str(a) == "a"

    def test_not_str(self, a):
        assert str(~a) == "NOT a"

    def test_nested_parenthesisation(self, a, b, c):
        text = str((a | b) & c)
        assert "(" in text and "AND" in text and "OR" in text
