"""Property tests for the event-expression s-expression codec.

Random expression trees — hostile atom names (spaces, parens, quotes,
unicode, the escape character itself) and edge probabilities (0.0, 1.0)
included — must round-trip through ``loads(dumps(e))`` onto the *same
interned node* (pointer equality under hash-consing), and malformed
input must always fail as :class:`~repro.errors.ParseError`, never an
``IndexError`` or other internal escape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.events import BasicEvent, atom, conj, disj, dumps, loads, neg

# Names chosen to stress the URL-quoting: whitespace, both parens,
# percent signs (the escape character), quotes, newlines and unicode.
HOSTILE_NAMES = st.one_of(
    st.sampled_from(
        [
            "plain",
            "with space",
            "(open",
            "close)",
            "(both)",
            "100%",
            "%41",  # quoted 'A' — must not double-decode
            'quo"te',
            "new\nline",
            "tab\tstop",
            "ünïcodé☃",
            "sensor:loc a/b",
            "a",  # single char, same as the atom tag
            "n",
            "T",  # the constant tokens as *names*
            "F",
        ]
    ),
    st.text(min_size=1, max_size=12),
)

# 0.0 and 1.0 are the edge cases: the constructors simplify around
# certainty, and ``repr(float)`` must survive the float() re-parse.
PROBABILITIES = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        name = draw(HOSTILE_NAMES)
        prob = draw(PROBABILITIES)
        return atom(BasicEvent(name, prob))
    kind = draw(st.sampled_from(["neg", "conj", "disj"]))
    if kind == "neg":
        return neg(draw(expressions(depth=depth - 1)))
    children = draw(st.lists(expressions(depth=depth - 1), min_size=1, max_size=3))
    return (conj if kind == "conj" else disj)(children)


class TestRoundTripProperty:
    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_pointer_equal(self, expr):
        # Hash-consing: parsing must land on the identical interned
        # node, not merely an equal one.
        assert loads(dumps(expr)) is expr

    @given(expressions())
    @settings(max_examples=100, deadline=None)
    def test_serialisation_is_deterministic(self, expr):
        assert dumps(expr) == dumps(loads(dumps(expr)))

    @given(HOSTILE_NAMES, PROBABILITIES)
    @settings(max_examples=200, deadline=None)
    def test_atom_name_and_probability_survive(self, name, prob):
        expr = atom(BasicEvent(name, prob))
        parsed = loads(dumps(expr))
        assert parsed is expr
        # Even through simplification the payload is preserved
        # wherever an Atom node survives.
        for parsed_atom in parsed.atoms():
            if parsed_atom.name == name:
                assert parsed_atom.probability == prob


class TestMalformedInputs:
    """Garbage in, ParseError out — never an internal IndexError."""

    MALFORMED = [
        "",
        "(",
        ")",
        "(a",
        "(a name",
        "(a name 0.5",
        "(a name 0.5 extra)",
        "(a name notafloat)",
        "(n)",
        "(n T",
        "(&)",
        "(|)",
        "(& T",
        "(z T)",
        "T T",
        "((a x 0.5))",
        "(a x 0.5) trailing",
        "(n (a x 0.5)",
        "(& (a x 0.5) (|)",
        "(((((",
        ")))))",
        "(n (n (n",
    ]

    @pytest.mark.parametrize("text", MALFORMED)
    def test_malformed_raises_parse_error(self, text):
        with pytest.raises(ParseError):
            loads(text)

    @given(st.text(max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_escapes_parse_error(self, text):
        try:
            loads(text)
        except ParseError:
            pass  # the contract: malformed input fails loudly but typed


class TestLineStream:
    def test_dump_load_lines_round_trip(self):
        exprs = [
            atom(BasicEvent("with space", 0.25)),
            neg(atom(BasicEvent("(p)", 1.0))),
            conj([atom(BasicEvent("x", 0.5)), atom(BasicEvent("y", 0.0))]),
        ]
        from repro.events import dump_lines, load_lines

        restored = load_lines(dump_lines(exprs))
        assert len(restored) == len(exprs)
        for original, parsed in zip(exprs, restored):
            assert parsed is original

    def test_load_lines_skips_blanks_and_rejects_garbage(self):
        from repro.events import load_lines

        assert load_lines("\n\nT\n\nF\n") == [loads("T"), loads("F")]
        with pytest.raises(ParseError):
            load_lines("T\n(a broken\nF")
