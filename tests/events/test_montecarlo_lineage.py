"""Tests for the Monte Carlo engine and lineage rendering."""

import pytest

from repro.errors import EventError
from repro.events import (
    ALWAYS,
    NEVER,
    BasicEvent,
    EventSpace,
    atom,
    derivations,
    explain_probability,
    probability,
    probability_by_sampling,
    render_tree,
)


@pytest.fixture()
def space():
    return EventSpace()


class TestMonteCarlo:
    def test_constants(self, space):
        assert probability_by_sampling(ALWAYS, space, samples=10).value == 1.0
        assert probability_by_sampling(NEVER, space, samples=10).value == 0.0

    def test_single_atom_estimate(self, space):
        a = space.atom("a", 0.3)
        estimate = probability_by_sampling(a, space, samples=20000, seed=1)
        assert estimate.value == pytest.approx(0.3, abs=0.02)
        assert estimate.agrees_with(0.3)

    def test_matches_exact_on_compound(self, space):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.4)
        c = space.atom("c", 0.7)
        expr = (a & ~b) | (c & b)
        exact = probability(expr, space)
        estimate = probability_by_sampling(expr, space, samples=40000, seed=2)
        assert estimate.agrees_with(exact)

    def test_respects_mutex_groups(self, space):
        a = space.atom("a", 0.6)
        b = space.atom("b", 0.3)
        space.declare_mutex("g", ["a", "b"])
        joint = probability_by_sampling(a & b, space, samples=5000, seed=3)
        assert joint.value == 0.0
        either = probability_by_sampling(a | b, space, samples=40000, seed=4)
        assert either.value == pytest.approx(0.9, abs=0.02)

    def test_deterministic_by_seed(self, space):
        a = space.atom("a", 0.5)
        first = probability_by_sampling(a, space, samples=1000, seed=9)
        second = probability_by_sampling(a, space, samples=1000, seed=9)
        assert first.value == second.value

    def test_half_width_shrinks_with_samples(self, space):
        a = space.atom("a", 0.5)
        small = probability_by_sampling(a, space, samples=100, seed=1)
        large = probability_by_sampling(a, space, samples=10000, seed=1)
        assert large.half_width_95 < small.half_width_95

    def test_sample_count_validated(self, space):
        with pytest.raises(EventError):
            probability_by_sampling(space.atom("a", 0.5), space, samples=0)


class TestLineage:
    def test_render_tree_shows_atoms_and_connectives(self, space):
        a = space.atom("sensor:loc", 0.7)
        b = space.atom("sensor:act", 0.6)
        text = render_tree((a & b) | ~a)
        assert "OR" in text and "AND" in text and "NOT" in text
        assert "sensor:loc  (p=0.7)" in text

    def test_render_constants(self):
        assert render_tree(ALWAYS) == "TRUE"
        assert render_tree(NEVER) == "FALSE"

    def test_derivations_sorted_by_probability(self, space):
        strong = space.atom("strong", 0.9)
        weak = space.atom("weak", 0.1)
        result = derivations(strong | weak, space)
        assert len(result) == 2
        assert result[0].probability >= result[1].probability
        assert "strong" in str(result[0])

    def test_derivations_of_conjunction(self, space):
        a = space.atom("a", 0.5)
        b = space.atom("b", 0.5)
        result = derivations(a & b, space)
        assert len(result) == 1
        assert result[0].probability == pytest.approx(0.25)

    def test_explain_probability_text(self, space):
        a = space.atom("a", 0.25)
        text = explain_probability(a | ~a & atom(BasicEvent("b", 0.5)), space)
        assert text.startswith("P = ")
        assert "lineage:" in text
        assert "derivations" in text

    def test_explain_probability_constant(self):
        text = explain_probability(ALWAYS)
        assert text.startswith("P = 1")
