"""Unit tests for candidate enumeration and the preference miner."""

import pytest

from repro.errors import MiningError
from repro.history import Candidate, Episode, HistoryLog
from repro.mining import (
    CandidatePair,
    MiningConfig,
    enumerate_candidates,
    evaluate_mining,
    mine_rules,
    ranking_agreement,
    to_repository,
)
from repro.rules import PreferenceRule


def build_log(n: int = 20, traffic_rate: float = 0.8) -> HistoryLog:
    """Workday-morning episodes: traffic chosen at ``traffic_rate``."""
    log = HistoryLog()
    threshold = int(n * traffic_rate)
    for index in range(n):
        log.record(
            Episode.build(
                context=["Morning"],
                candidates=[
                    Candidate.of("t", "TrafficBulletin"),
                    Candidate.of("m", "Movie"),
                ],
                chosen=["t"] if index < threshold else ["m"],
            )
        )
    return log


class TestCandidates:
    def test_candidates_cover_observed_pairs(self):
        log = build_log(5)
        pairs = set(enumerate_candidates(log, include_default=False))
        assert CandidatePair("Morning", "TrafficBulletin") in pairs
        assert CandidatePair("Morning", "Movie") in pairs

    def test_default_candidates_included(self):
        log = build_log(5)
        pairs = set(enumerate_candidates(log, include_default=True))
        assert CandidatePair("TOP", "Movie") in pairs

    def test_candidate_limit(self):
        log = build_log(5)
        with pytest.raises(MiningError):
            list(enumerate_candidates(log, max_candidates=1))

    def test_concepts_round_trip(self):
        pair = CandidatePair("Morning", "TvProgram AND EXISTS hasGenre.{COMEDY}")
        context, preference = pair.concepts()
        assert str(context) == "Morning"
        assert "COMEDY" in str(preference)


class TestMiner:
    def test_recovers_sigma(self):
        log = build_log(20, traffic_rate=0.8)
        mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
        by_pair = {m.rule.feature_pair: m for m in mined}
        traffic = by_pair[("Morning", "TrafficBulletin")]
        assert traffic.rule.sigma == pytest.approx(0.8)
        assert traffic.support == 20

    def test_min_support_filters(self):
        log = build_log(3)
        assert mine_rules(log, MiningConfig(min_support=5, min_lift=0.0)) == []

    def test_min_lift_drops_context_free_behaviour(self):
        """A feature chosen equally in all contexts has zero lift."""
        log = HistoryLog()
        for context in (["Morning"], ["Evening"]):
            for index in range(10):
                log.record(
                    Episode.build(
                        context=context,
                        candidates=[Candidate.of("t", "News"), Candidate.of("m", "Movie")],
                        chosen=["t"] if index % 2 == 0 else ["m"],
                    )
                )
        mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.2))
        assert mined == []

    def test_default_rules_emitted_when_requested(self):
        log = build_log(20)
        mined = mine_rules(
            log, MiningConfig(min_support=5, min_lift=0.0, include_default=True)
        )
        assert any(m.rule.is_default for m in mined)

    def test_smoothing_moves_extreme_sigmas_inward(self):
        log = build_log(10, traffic_rate=1.0)
        raw = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
        smoothed = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0, smoothing=1.0))
        raw_sigma = {m.rule.feature_pair: m.rule.sigma for m in raw}[("Morning", "TrafficBulletin")]
        smoothed_sigma = {m.rule.feature_pair: m.rule.sigma for m in smoothed}[
            ("Morning", "TrafficBulletin")
        ]
        assert raw_sigma == pytest.approx(1.0)
        assert smoothed_sigma == pytest.approx(11 / 12)

    def test_config_validation(self):
        with pytest.raises(MiningError):
            MiningConfig(min_support=0)
        with pytest.raises(MiningError):
            MiningConfig(min_lift=-0.1)
        with pytest.raises(MiningError):
            MiningConfig(smoothing=-1.0)

    def test_to_repository(self):
        log = build_log(20)
        mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
        repository = to_repository(mined)
        assert len(repository) == len(mined)


class TestEvaluation:
    def test_report_counts(self):
        true_rules = [
            PreferenceRule.parse("r1", "Morning", "TrafficBulletin", 0.8),
            PreferenceRule.parse("r2", "Evening", "Movie", 0.7),
        ]
        log = build_log(20, traffic_rate=0.8)
        mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
        report = evaluate_mining(true_rules, mined)
        assert report.planted == 2
        assert report.matched == 1
        assert report.recall == pytest.approx(0.5)
        assert report.sigma_mae == pytest.approx(0.0, abs=1e-9)

    def test_ranking_agreement(self):
        true_scores = {"a": 0.9, "b": 0.5, "c": 0.1}
        assert ranking_agreement(true_scores, true_scores) == pytest.approx(1.0)
        reversed_scores = {"a": 0.1, "b": 0.5, "c": 0.9}
        assert ranking_agreement(true_scores, reversed_scores) == pytest.approx(-1.0)
        assert ranking_agreement({"a": 1.0}, {"a": 1.0}) == 0.0
