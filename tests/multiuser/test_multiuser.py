"""Unit tests for group ranking strategies and the group ranker."""

import pytest

from repro.errors import ScoringError
from repro.core import ContextAwareScorer
from repro.multiuser import (
    Average,
    GroupMember,
    GroupRanker,
    LeastMisery,
    MostPleasure,
    Product,
    resolve_strategy,
)
from repro.rules import RuleRepository, parse_rule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy,expected",
        [
            (Average(), 0.5),
            (Product(), 0.9 * 0.1),
            (LeastMisery(), 0.1),
            (MostPleasure(), 0.9),
        ],
    )
    def test_aggregation_values(self, strategy, expected):
        assert strategy.aggregate([0.9, 0.1]) == pytest.approx(expected)

    @pytest.mark.parametrize("name", ["average", "product", "least_misery", "most_pleasure"])
    def test_unanimity(self, name):
        strategy = resolve_strategy(name)
        if name == "product":
            assert strategy.aggregate([0.7]) == pytest.approx(0.7)
        else:
            assert strategy.aggregate([0.7, 0.7, 0.7]) == pytest.approx(0.7)

    def test_resolve_by_name_and_object(self):
        assert resolve_strategy("average").name == "average"
        assert resolve_strategy(Product()).name == "product"
        with pytest.raises(ScoringError):
            resolve_strategy("dictatorship")

    def test_empty_vector_rejected(self):
        with pytest.raises(ScoringError):
            Average().aggregate([])


def _member(name: str, world, rules_text: list[str]) -> GroupMember:
    repository = RuleRepository([parse_rule(text) for text in rules_text])
    scorer = ContextAwareScorer(
        abox=world.abox, tbox=world.tbox, user=world.user,
        repository=repository, space=world.space,
    )
    return GroupMember(name, scorer)


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def group(world):
    """Peter likes human interest at weekends; Mary wants news at breakfast."""
    peter = _member(
        "peter",
        world,
        ["RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.9"],
    )
    mary = _member(
        "mary",
        world,
        ["RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"],
    )
    return GroupRanker([peter, mary], strategy="average")


class TestGroupRanker:
    def test_group_needs_members(self):
        with pytest.raises(ScoringError):
            GroupRanker([])

    def test_duplicate_names_rejected(self, world):
        member = _member("peter", world, ["RULE x: ALWAYS PREFER TvProgram WITH 0.5"])
        with pytest.raises(ScoringError):
            GroupRanker([member, member])

    def test_from_sessions_rejects_memberless_objects(self):
        with pytest.raises(ScoringError, match="as_member"):
            GroupRanker.from_sessions({"peter": object()})

    def test_from_sessions_requires_names_for_bare_engines(self, world):
        from repro.engine import RankingEngine

        engine = RankingEngine.from_world(world)
        with pytest.raises(ScoringError, match="mapping"):
            GroupRanker.from_sessions([engine])
        # named through a mapping, the same engine is fine
        group = GroupRanker.from_sessions({"peter": engine, "mary": engine})
        assert [member.name for member in group.members] == ["peter", "mary"]

    def test_scores_have_member_breakdown(self, group, world):
        scores = group.score(world.program_ids)
        for score in scores:
            assert len(score.per_member) == 2
            assert 0.0 <= score.value <= 1.0
        oprah = next(score for score in scores if score.document == "oprah")
        assert oprah.member_score("peter") > oprah.member_score("mary")
        with pytest.raises(ScoringError):
            oprah.member_score("nobody")

    def test_compromise_program_wins_on_average(self, group, world):
        """Channel 5 news satisfies both members; it should top the group."""
        ranked = group.rank(world.program_ids)
        assert ranked[0].document == "channel5_news"

    def test_least_misery_changes_order(self, world, group):
        misery = GroupRanker(list(group.members), strategy="least_misery")
        averaged = {score.document: score.value for score in group.rank(world.program_ids)}
        misered = {score.document: score.value for score in misery.rank(world.program_ids)}
        assert all(misered[doc] <= averaged[doc] + 1e-12 for doc in misered)

    def test_available_strategies(self):
        assert set(GroupRanker.available_strategies()) == {
            "average",
            "product",
            "least_misery",
            "most_pleasure",
        }

    def test_members_share_one_compiled_kb(self, group, world):
        """Scorers over one world share the registry KB, so group
        ranking reasons each event once per group and epoch."""
        shared = group.shared_kb()
        assert shared is not None
        assert all(member.scorer.kb is shared for member in group.members)
        before = shared.info()
        group.rank(world.program_ids)
        group.rank(world.program_ids)
        after = shared.info()
        assert after.membership_hits > before.membership_hits

    def test_private_kbs_disable_sharing(self, world):
        from repro.reason import CompiledKB

        members = [
            _member("peter", world, ["RULE x: ALWAYS PREFER TvProgram WITH 0.5"]),
            _member("mary", world, ["RULE y: ALWAYS PREFER TvProgram WITH 0.6"]),
        ]
        members[0].scorer.kb = CompiledKB(world.abox, world.tbox, world.space)
        assert GroupRanker(members).shared_kb() is None
