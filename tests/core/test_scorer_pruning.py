"""Unit tests for the scorer facade, pruning and explanations."""

import pytest

from repro.core import (
    ContextAwareScorer,
    all_miss_score,
    explain_ranking,
    explain_score,
    prune_rules,
    split_trivial_documents,
)
from repro.core.problem import bind_problem
from repro.rules import PreferenceRule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def scorer(world):
    return ContextAwareScorer(
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        space=world.space,
    )


class TestPruning:
    def test_rule_pruning_drops_impossible_contexts(self, world):
        world.repository.add(
            PreferenceRule.parse("r3", "Holiday", "TvProgram", 0.7)  # never holds
        )
        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        pruned = prune_rules(problem)
        assert problem.rule_count == 3
        assert pruned.rule_count == 2
        assert all(len(d.preference_events) == 2 for d in pruned.documents)

    def test_lossless_pruning_preserves_scores(self, world, scorer):
        baseline = scorer.score_map(world.program_ids)
        world.repository.add(PreferenceRule.parse("r3", "Holiday", "TvProgram", 0.7))
        with_extra_rule = scorer.score_map(world.program_ids)
        for program in baseline:
            assert with_extra_rule[program] == pytest.approx(baseline[program])

    def test_threshold_pruning_approximates(self, world):
        set_breakfast_weekend_context(world, breakfast_probability=0.05)
        exact_scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        pruned_scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space, rule_threshold=0.1,
        )
        exact = exact_scorer.score_map(world.program_ids)
        approximate = pruned_scorer.score_map(world.program_ids)
        # r2 (breakfast) is pruned; scores differ but only slightly for
        # documents with small r2 involvement.
        assert approximate["oprah"] != pytest.approx(exact["oprah"], abs=1e-12)
        assert approximate["oprah"] == pytest.approx(exact["oprah"], abs=0.05)

    def test_document_split_and_all_miss_score(self, world):
        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        interesting, trivial = split_trivial_documents(problem)
        assert {d.document.name for d in trivial} == {"mpfs"}
        assert {d.document.name for d in interesting} == {"oprah", "bbc_news", "channel5_news"}
        assert all_miss_score(problem.bindings) == pytest.approx(0.2 * 0.1)

    def test_prune_report(self, scorer, world):
        scorer.score(world.program_ids)
        report = scorer.last_prune_report
        assert report is not None
        assert report.kept_rules == 2
        assert report.trivial_documents == 1
        assert report.scored_documents == 3

    def test_prune_documents_off_scores_everything(self, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space, prune_documents=False,
        )
        scores = scorer.score_map(world.program_ids)
        assert scores["mpfs"] == pytest.approx(0.02)
        assert scorer.last_prune_report.trivial_documents == 0


class TestScorerFacade:
    def test_score_concept_members(self, scorer, world):
        ranked = scorer.score_concept_members(world.target)
        names = [score.document for score in ranked]
        assert set(names) >= set(world.program_ids)
        assert names[0] == "channel5_news"

    def test_invalid_method_rejected(self, world):
        from repro.errors import ScoringError

        with pytest.raises(ScoringError):
            ContextAwareScorer(
                abox=world.abox, tbox=world.tbox, user=world.user,
                repository=world.repository, space=world.space, method="nope",
            )

    def test_score_order_follows_input(self, scorer, world):
        scores = scorer.score(["mpfs", "oprah"])
        assert [s.document for s in scores] == ["mpfs", "oprah"]


class TestExplanations:
    def test_explain_score_mentions_rules(self, scorer, world):
        ranked = scorer.rank(world.program_ids)
        text = explain_score(ranked[0], world.repository)
        assert "channel5_news" in text
        assert "r1" in text and "r2" in text
        assert "0.6006" in text

    def test_explain_ranking_lists_everything(self, scorer, world):
        ranked = scorer.rank(world.program_ids)
        text = explain_ranking(ranked, world.repository)
        for program in world.program_ids:
            assert program in text
        assert text.splitlines()[1].strip().startswith("1")

    def test_explain_trivial_document(self, scorer, world):
        ranked = scorer.rank(world.program_ids)
        mpfs = next(score for score in ranked if score.document == "mpfs")
        text = explain_score(mpfs, world.repository)
        assert "no applicable rule" in text

    def test_event_lineage_rendering(self, world):
        from repro.core import explain_document_events

        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        text = explain_document_events(problem, "channel5_news")
        assert "genre:ch5:hi" in text
        assert "subject:ch5:weather" in text
