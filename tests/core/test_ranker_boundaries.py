"""The Section 6 mixture's λ = 0 and λ = 1 boundaries, defined exactly."""

import pytest

from repro.core import ContextAwareScorer, PreferenceView
from repro.core.ranker import ContextAwareRanker, mix_scores
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


class TestMixScores:
    def test_lambda_zero_is_pure_context(self):
        # the query part is ignored entirely — even a missing (0.0)
        # query score does not gate, and no 0**0 accident applies
        assert mix_scores(0.0, 0.42, 0.0) == pytest.approx(0.42)
        assert mix_scores(0.9, 0.42, 0.0) == pytest.approx(0.42)
        assert mix_scores(0.0, 0.0, 0.0) == 0.0

    def test_lambda_one_is_pure_ir(self):
        # the preference part is ignored entirely — a zero preference
        # does not zero the document, a missing query score does
        assert mix_scores(0.7, 0.0, 1.0) == pytest.approx(0.7)
        assert mix_scores(0.7, 0.9, 1.0) == pytest.approx(0.7)
        assert mix_scores(0.0, 0.9, 1.0) == 0.0

    def test_interior_gates_on_either_zero(self):
        assert mix_scores(0.0, 0.9, 0.5) == 0.0
        assert mix_scores(0.9, 0.0, 0.5) == 0.0

    def test_interior_is_the_power_mixture(self):
        assert mix_scores(0.4, 0.9, 0.25) == pytest.approx(
            (0.4 ** 0.25) * (0.9 ** 0.75)
        )

    def test_weight_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mix_scores(0.5, 0.5, -0.1)
        with pytest.raises(ValueError):
            mix_scores(0.5, 0.5, 1.1)


class TestRankMixedBoundaries:
    @pytest.fixture()
    def ranker(self):
        world = build_tvtouch()
        set_breakfast_weekend_context(world)
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        view = PreferenceView(scorer, world.target, world.database)
        return ContextAwareRanker(view, world.database, "Programs", id_column="id")

    def test_lambda_zero_matches_preference_ranking(self, ranker):
        # documents absent from query_scores keep their preference score
        ranked = ranker.rank_mixed({"mpfs": 1.0}, mixing_weight=0.0)
        by_doc = {r.document: r for r in ranked}
        assert by_doc["channel5_news"].combined == pytest.approx(
            by_doc["channel5_news"].preference
        )
        assert by_doc["channel5_news"].combined == pytest.approx(0.6006, abs=1e-9)
        assert [r.document for r in ranked][0] == "channel5_news"

    def test_lambda_one_matches_query_ranking(self, ranker):
        ranked = ranker.rank_mixed(
            {"mpfs": 0.9, "oprah": 0.4}, mixing_weight=1.0
        )
        by_doc = {r.document: r for r in ranked}
        assert by_doc["mpfs"].combined == pytest.approx(0.9)
        assert by_doc["oprah"].combined == pytest.approx(0.4)
        # absent from the query: gated to zero at λ = 1
        assert by_doc["channel5_news"].combined == 0.0
        assert [r.document for r in ranked][:2] == ["mpfs", "oprah"]

    def test_interior_gates_absent_documents(self, ranker):
        ranked = ranker.rank_mixed({"mpfs": 1.0}, mixing_weight=0.5)
        by_doc = {r.document: r for r in ranked}
        assert by_doc["channel5_news"].combined == 0.0
        assert by_doc["mpfs"].combined == pytest.approx(
            by_doc["mpfs"].preference ** 0.5
        )

    def test_boundary_continuity_for_present_documents(self, ranker):
        # for a document present in both parts the boundaries agree
        # with the interior limits
        scores = {"channel5_news": 0.8}
        near_zero = ranker.rank_mixed(scores, mixing_weight=1e-9)
        at_zero = ranker.rank_mixed(scores, mixing_weight=0.0)
        c_near = next(r for r in near_zero if r.document == "channel5_news")
        c_at = next(r for r in at_zero if r.document == "channel5_news")
        assert c_near.combined == pytest.approx(c_at.combined, rel=1e-6)

    def test_weight_validation(self, ranker):
        with pytest.raises(ValueError):
            ranker.rank_mixed({}, mixing_weight=1.5)
