"""Unit tests for the compiled batch-scoring kernel."""

import pytest

from repro.errors import ScoringError
from repro.events import ALWAYS, NEVER, EventSpace
from repro.rules import PreferenceRule
from repro.core import (
    CompiledCandidates,
    ContextAwareScorer,
    DocumentBinding,
    LazyContributions,
    RuleBinding,
    ScoringKernel,
    ScoringProblem,
    bind_problem,
    compile_candidates,
    factorised_score,
    prune_rules,
    score_document,
)
from repro.dl.vocabulary import Individual
from repro.perf.backend import (
    BACKEND_ENV,
    backend_name,
    numpy_or_none,
    reset_backend,
    resolve_backend,
)
from repro.workloads import build_tvtouch, set_breakfast_weekend_context

BACKENDS = ["python"] + (["numpy"] if numpy_or_none() is not None else [])


@pytest.fixture()
def force_backend(monkeypatch):
    """Flip ``REPRO_KERNEL_BACKEND`` and drop the per-process cache so
    the override is actually seen (and cleaned up afterwards)."""

    def _force(name: str) -> None:
        monkeypatch.setenv(BACKEND_ENV, name)
        reset_backend()

    yield _force
    reset_backend()


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def problem(world):
    return bind_problem(
        world.abox, world.tbox, world.user, world.repository,
        world.program_ids, world.space,
    )


def synthetic_problem(sigmas, p_contexts, rows, space=None):
    """A problem straight from probabilities (no DL binding)."""
    space = space or EventSpace("kernel-test")
    bindings = []
    for index, (sigma, p_g) in enumerate(zip(sigmas, p_contexts)):
        rule = PreferenceRule.parse(f"r{index}", "TOP", "TvProgram", sigma)
        if p_g >= 1.0:
            event = ALWAYS
        elif p_g <= 0.0:
            event = NEVER
        else:
            event = space.atom(f"g{index}", p_g)
        bindings.append(RuleBinding(rule, event, p_g))
    documents = []
    for row_index, row in enumerate(rows):
        events = []
        for column, p_f in enumerate(row):
            if p_f >= 1.0:
                events.append(ALWAYS)
            elif p_f <= 0.0:
                events.append(NEVER)
            else:
                events.append(space.atom(f"f{row_index}:{column}", p_f))
        documents.append(
            DocumentBinding(Individual(f"d{row_index}"), tuple(events), tuple(row))
        )
    return ScoringProblem(tuple(bindings), tuple(documents), space)


class TestCompile:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matrix_shape_and_bits(self, problem, backend):
        candidates = compile_candidates(problem, backend)
        assert isinstance(candidates, CompiledCandidates)
        assert candidates.backend == backend
        assert candidates.document_count == 4
        assert candidates.rule_count == 2
        # mpfs satisfies no preference -> empty bitmask
        by_name = dict(zip(candidates.names, candidates.possible_bits))
        assert by_name["mpfs"] == 0
        assert by_name["channel5_news"] == 0b11

    def test_env_override_forces_python(self, problem, force_backend):
        force_backend("python")
        assert backend_name() == "python"
        assert compile_candidates(problem).backend == "python"

    def test_env_override_cached_until_reset(self, monkeypatch):
        # The default resolution reads the environment once per process:
        # flipping the variable without reset_backend() has no effect.
        reset_backend()
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        before = backend_name()
        monkeypatch.setenv(
            BACKEND_ENV, "python" if before == "numpy" else "numpy"
        )
        try:
            assert backend_name() == before
        finally:
            reset_backend()

    def test_bad_backend_rejected(self, problem):
        with pytest.raises(ScoringError):
            compile_candidates(problem, "fortran")

    def test_resolve_backend_names(self):
        assert resolve_backend("python") is None
        if numpy_or_none() is not None:
            assert resolve_backend("numpy") is not None

    def test_rule_count_mismatch_rejected(self, problem):
        candidates = compile_candidates(problem, "python")
        with pytest.raises(ScoringError):
            ScoringKernel(candidates, problem.bindings[:1])


class TestScores:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_reference_scorer(self, world, problem, backend):
        kernel = ScoringKernel.compile(problem, backend=backend)
        values = dict(zip(kernel.names, kernel.scores()))
        for document in problem.documents:
            expected = score_document(problem, document, "factorised").value
            assert values[document.document.name] == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trivial_documents_share_all_miss(self, problem, backend):
        kernel = ScoringKernel.compile(problem, backend=backend)
        assert kernel.trivial_rows() == [kernel.names.index("mpfs")]
        values = dict(zip(kernel.names, kernel.scores()))
        assert values["mpfs"] == pytest.approx(kernel.all_miss, abs=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_threshold_mask_matches_prune_rules(self, world, backend):
        world.repository.add(PreferenceRule.parse("dead", "Holiday", "TvProgram", 0.7))
        problem = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        kernel = ScoringKernel.compile(problem, rule_threshold=0.0, backend=backend)
        assert kernel.kept_rules == (0, 1)
        assert kernel.dropped_rule_count == 1
        pruned = prune_rules(problem)
        values = dict(zip(kernel.names, kernel.scores(prune_documents=False)))
        for document in pruned.documents:
            expected = factorised_score(list(pruned.bindings), document)
            assert values[document.document.name] == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_rules_scores_one(self, backend):
        problem = synthetic_problem([], [], [[], []])
        kernel = ScoringKernel.compile(problem, backend=backend)
        assert kernel.scores() == [1.0, 1.0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_candidate_set(self, backend):
        problem = synthetic_problem([0.8], [0.5], [])
        kernel = ScoringKernel.compile(problem, backend=backend)
        assert kernel.scores() == []
        assert kernel.score_documents() == []


class TestLazyContributions:
    def test_materialises_to_reference_breakdown(self, problem):
        kernel = ScoringKernel.compile(problem)
        scored = {s.document: s for s in kernel.score_documents()}
        reference = score_document(
            problem, problem.document(Individual("channel5_news")), "factorised"
        )
        lazy = scored["channel5_news"].contributions
        assert isinstance(lazy, LazyContributions)
        assert lazy._items is None, "breakdown must not materialise eagerly"
        assert tuple(lazy) == reference.contributions
        assert lazy._items is not None

    def test_sequence_protocol_and_equality(self, problem):
        kernel = ScoringKernel.compile(problem)
        scored = {s.document: s for s in kernel.score_documents()}
        lazy = scored["bbc_news"].contributions
        eager = score_document(
            problem, problem.document(Individual("bbc_news")), "factorised"
        ).contributions
        assert len(lazy) == len(eager) == 2
        assert lazy[0] == eager[0]
        assert lazy == eager
        assert eager == tuple(lazy)
        assert hash(lazy) == hash(eager)
        assert bool(lazy)

    def test_trivial_document_has_empty_contributions(self, problem):
        kernel = ScoringKernel.compile(problem)
        scored = {s.document: s for s in kernel.score_documents()}
        assert scored["mpfs"].contributions == ()


class TestTopK:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 9])
    def test_agrees_with_full_sort(self, problem, backend, k):
        kernel = ScoringKernel.compile(problem, backend=backend)
        full = sorted(
            kernel.score_documents(), key=lambda s: (-s.value, s.document)
        )
        top = kernel.rank_top_k(k)
        assert [(s.document, s.value) for s in top] == [
            (s.document, s.value) for s in full[:k]
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prunes_but_stays_exact_on_wide_problems(self, backend):
        # Many similar rows with ties: the heap + strict bound must not
        # drop a tied candidate that wins on name order.
        rows = [[0.9, 0.1, 0.5], [0.1, 0.9, 0.5], [0.5, 0.5, 0.5]] * 20
        problem = synthetic_problem([0.9, 0.7, 0.6], [0.8, 0.9, 1.0], rows)
        kernel = ScoringKernel.compile(problem, backend=backend)
        full = sorted(
            kernel.score_documents(), key=lambda s: (-s.value, s.document)
        )
        for k in (1, 5, 17, 60):
            top = kernel.rank_top_k(k)
            assert [(s.document, s.value) for s in top] == [
                (s.document, s.value) for s in full[:k]
            ]

    def test_invalid_k_rejected(self, problem):
        kernel = ScoringKernel.compile(problem)
        with pytest.raises(ScoringError):
            kernel.rank_top_k(0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_ties_survive_the_prune(self, backend):
        # Identical rows at the per-rule upper bound: every score ties
        # exactly, so the winner set is decided purely by name order.
        # The prefix x suffix-bound product associates multiplications
        # differently than the full score and can round a few ulps
        # below the threshold — tied rows must still survive (this
        # failed before the rounding slack on the prune threshold).
        import random

        rng = random.Random(0)
        for trial in range(40):
            n = rng.randint(3, 8)
            sigmas = [round(rng.uniform(0.55, 0.95), 3) for _ in range(n)]
            p_contexts = [round(rng.uniform(0.5, 1.0), 3) for _ in range(n)]
            problem = synthetic_problem(sigmas, p_contexts, [[1.0] * n] * 50)
            kernel = ScoringKernel.compile(problem, backend=backend)
            full = sorted(
                kernel.score_documents(), key=lambda s: (-s.value, s.document)
            )
            top = kernel.rank_top_k(7)
            assert [(s.document, s.value) for s in top] == [
                (s.document, s.value) for s in full[:7]
            ], f"tie-break violated at trial {trial}"


class TestWithContext:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_cold_recompile(self, world, problem, backend):
        kernel = ScoringKernel.compile(problem, backend=backend)
        # flip the context: weekend becomes uncertain
        set_breakfast_weekend_context(world, weekend_probability=0.6, tick="flip")
        fresh = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        incremental = kernel.with_context(fresh.bindings)
        cold = ScoringKernel.compile(fresh, backend=backend)
        assert incremental.scores() == cold.scores()
        assert incremental.candidates is kernel.candidates, "matrix must be shared"

    def test_rule_count_change_rejected(self, problem):
        kernel = ScoringKernel.compile(problem)
        with pytest.raises(ScoringError):
            kernel.with_context(problem.bindings[:1])

    def test_rule_identity_change_rejected(self, problem):
        kernel = ScoringKernel.compile(problem)
        swapped = (problem.bindings[1], problem.bindings[0])
        with pytest.raises(ScoringError):
            kernel.with_context(swapped)


class TestScorerIntegration:
    def test_duplicate_documents_scored_once_and_shared(self, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        scores = scorer.score(["oprah", "bbc_news", "oprah"])
        assert [s.document for s in scores] == ["oprah", "bbc_news", "oprah"]
        assert scores[0] is scores[2], "duplicates share one DocumentScore"

    def test_scorer_rank_top_k_matches_rank(self, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        full = scorer.rank(world.program_ids)
        top = scorer.rank_top_k(world.program_ids, 2)
        assert [(s.document, s.value) for s in top] == [
            (s.document, s.value) for s in full[:2]
        ]

    def test_reference_method_rank_top_k_falls_back(self, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space, method="exact",
        )
        full = scorer.rank(world.program_ids)
        top = scorer.rank_top_k(world.program_ids, 3)
        assert [(s.document, s.value) for s in top] == [
            (s.document, s.value) for s in full[:3]
        ]
        assert scorer.last_kernel is None

    def test_last_kernel_exposed_on_fast_path(self, world):
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        scorer.score(world.program_ids)
        kernel = scorer.last_kernel
        assert kernel is not None
        assert set(kernel.names) == set(world.program_ids)

    def test_log_linear_rows_matches_reference(self):
        import random

        from repro.ir.combine import LOG_FLOOR, combine_log_linear
        from repro.perf.flatops import log_linear_rows

        rng = random.Random(5)
        dependents = [rng.choice([0.0, rng.random()]) for _ in range(100)]
        preferences = [rng.choice([0.0, rng.random()]) for _ in range(100)]
        for weight in (0.0, 0.3, 1.0):
            batched = log_linear_rows(dependents, preferences, weight, LOG_FLOOR)
            for value, qd, qi in zip(batched, dependents, preferences):
                assert value == combine_log_linear(qd, qi, weight)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scorer_results_backend_independent(self, world, force_backend, backend):
        force_backend(backend)
        scorer = ContextAwareScorer(
            abox=world.abox, tbox=world.tbox, user=world.user,
            repository=world.repository, space=world.space,
        )
        scores = scorer.score_map(world.program_ids)
        assert scores["channel5_news"] == pytest.approx(0.6006, abs=1e-9)
        assert scores["mpfs"] == pytest.approx(0.02, abs=1e-9)
