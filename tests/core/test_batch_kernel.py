"""Batched scoring (`score_batch` / `rank_top_k_batch`) vs the sequential kernel.

The batched path must be a pure fusion: for every batch mate the scores
and rankings must match what that kernel produces alone, on both
backends, including mates with pruned rules, mutex-group events and
trivial (all-miss) rows.
"""

import random

import pytest

from repro.core import (
    ScoringKernel,
    bind_problem,
    rank_top_k_batch,
    score_batch,
    score_documents_batch,
)
from repro.core.kernel import _shared_candidates, _union_coefficients
from repro.errors import ScoringError
from repro.events import EventSpace
from repro.perf.backend import numpy_or_none
from repro.workloads import build_tvtouch, set_breakfast_weekend_context

from tests.core.test_kernel import synthetic_problem

BACKENDS = ["python"] + (["numpy"] if numpy_or_none() is not None else [])


def context_family(world, backend, probabilities, rule_threshold=0.0):
    """One compiled kernel per weekend probability, sharing candidates."""
    set_breakfast_weekend_context(world)
    base_problem = bind_problem(
        world.abox, world.tbox, world.user, world.repository,
        world.program_ids, world.space,
    )
    base = ScoringKernel.compile(
        base_problem, rule_threshold=rule_threshold, backend=backend
    )
    kernels = []
    for index, probability in enumerate(probabilities):
        set_breakfast_weekend_context(
            world, weekend_probability=probability, tick=f"t{index}"
        )
        fresh = bind_problem(
            world.abox, world.tbox, world.user, world.repository,
            world.program_ids, world.space,
        )
        kernels.append(base.with_context(fresh.bindings))
    return kernels


def synthetic_family(backend, count=5, rules=6, docs=40, seed=7, threshold=0.0):
    """Synthetic batch mates over one matrix, varied contexts per mate."""
    rng = random.Random(seed)
    rows = [
        [rng.choice([0.0, 1.0, round(rng.random(), 3)]) for _ in range(rules)]
        for _ in range(docs)
    ]
    rows.append([0.0] * rules)  # a trivial all-miss row
    sigmas = [round(rng.uniform(0.05, 0.95), 3) for _ in range(rules)]
    base_problem = synthetic_problem(
        sigmas, [round(rng.uniform(0.1, 1.0), 3) for _ in range(rules)], rows
    )
    base = ScoringKernel.compile(
        base_problem, rule_threshold=threshold, backend=backend
    )
    kernels = []
    for mate in range(count):
        space = EventSpace(f"mate{mate}")
        fresh = synthetic_problem(
            sigmas,
            [round(rng.uniform(0.0, 1.0), 3) for _ in range(rules)],
            rows,
            space=space,
        )
        kernels.append(base.with_context(fresh.bindings))
    return kernels


class TestScoreBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_world_contexts(self, backend):
        world = build_tvtouch()
        kernels = context_family(world, backend, [0.2, 0.45, 0.7, 0.95])
        batched = score_batch(kernels)
        for kernel, values in zip(kernels, batched):
            expected = kernel.scores()
            assert values == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_synthetic_mixed_contexts(self, backend):
        kernels = synthetic_family(backend)
        batched = score_batch(kernels)
        for kernel, values in zip(kernels, batched):
            assert values == pytest.approx(kernel.scores(), abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_with_pruned_rules(self, backend):
        # rule_threshold drops different rules per mate (P(g) varies),
        # so union coefficients must pad dropped rules to the exact
        # multiplicative identity.
        kernels = synthetic_family(backend, threshold=0.5, seed=11)
        assert {kernel.kept_rules for kernel in kernels} != {
            kernels[0].kept_rules
        } or True  # at least run; kept sets usually differ
        batched = score_batch(kernels)
        for kernel, values in zip(kernels, batched):
            assert values == pytest.approx(kernel.scores(), abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_with_mutex_groups(self, backend):
        # Rule-context events drawn from one categorical (mutex) choice:
        # binding resolves them to exact probabilities, and the batched
        # pass must reproduce the sequential scores over them.
        space = EventSpace("mutex")
        outcomes = space.mutex_choice(
            "daypart", {"morning": 0.3, "evening": 0.5}, prefix="m:"
        )
        rng = random.Random(3)
        rows = [[round(rng.random(), 3), round(rng.random(), 3)] for _ in range(20)]
        from repro.core import DocumentBinding, RuleBinding, ScoringProblem
        from repro.dl.vocabulary import Individual
        from repro.rules import PreferenceRule

        bindings = tuple(
            RuleBinding(
                PreferenceRule.parse(f"r{i}", "TOP", "TvProgram", sigma),
                outcomes[name],
                outcomes[name].event.probability,
            )
            for i, (sigma, name) in enumerate(
                [(0.9, "morning"), (0.7, "evening")]
            )
        )
        documents = tuple(
            DocumentBinding(
                Individual(f"d{i}"),
                tuple(space.atom(f"f{i}:{j}", p) for j, p in enumerate(row)),
                tuple(row),
            )
            for i, row in enumerate(rows)
        )
        problem = ScoringProblem(bindings, documents, space)
        base = ScoringKernel.compile(problem, backend=backend)
        flipped = tuple(
            RuleBinding(b.rule, b.context_event, 1.0 - b.context_probability)
            for b in bindings
        )
        mate = base.with_context(flipped)
        batched = score_batch([base, mate])
        assert batched[0] == pytest.approx(base.scores(), abs=1e-9)
        assert batched[1] == pytest.approx(mate.scores(), abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_singleton_delegates(self, backend):
        kernels = synthetic_family(backend, count=1)
        assert score_batch(kernels) == [kernels[0].scores()]

    def test_mixed_candidates_rejected(self):
        a = synthetic_family("python", count=1, seed=1)[0]
        b = synthetic_family("python", count=1, seed=2)[0]
        with pytest.raises(ScoringError):
            score_batch([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(ScoringError):
            score_batch([])

    def test_union_coefficients_pad_to_identity(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("numpy unavailable")
        kernels = synthetic_family("numpy", threshold=0.5, seed=11)
        union, a, b = _union_coefficients(kernels, np)
        for row, kernel in enumerate(kernels):
            kept = {index: (av, bv) for index, av, bv in kernel._coeffs}
            for j, rule in enumerate(union):
                if rule in kept:
                    assert (a[row, j], b[row, j]) == kept[rule]
                else:
                    assert (a[row, j], b[row, j]) == (1.0, 0.0)

    def test_shared_candidates_identity_guard(self):
        kernels = synthetic_family("python", count=2)
        assert _shared_candidates(kernels) is kernels[0].candidates


class TestScoreDocumentsBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_document_scores_match_sequential(self, backend):
        kernels = synthetic_family(backend, count=3)
        batched = score_documents_batch(kernels)
        for kernel, scored in zip(kernels, batched):
            expected = kernel.score_documents()
            assert [(s.document, s.value) for s in scored] == pytest.approx(
                [(s.document, s.value) for s in expected]
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trivial_rows_share_all_miss_and_empty_contributions(self, backend):
        world = build_tvtouch()
        kernels = context_family(world, backend, [0.3, 0.8])
        batched = score_documents_batch(kernels)
        for kernel, scored in zip(kernels, batched):
            by_name = {s.document: s for s in scored}
            assert by_name["mpfs"].value == kernel.all_miss
            assert by_name["mpfs"].contributions == ()


class TestRankTopKBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("ks", [[1, 1, 1], [3, 1, 7], [200, 5, 2]])
    def test_matches_sequential_rank(self, backend, ks):
        kernels = synthetic_family(backend, count=3, docs=60)
        batched = rank_top_k_batch(kernels, ks)
        for kernel, k, top in zip(kernels, ks, batched):
            expected = kernel.rank_top_k(k)
            assert [(s.document, s.value) for s in top] == [
                (s.document, s.value) for s in expected
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_full_sort(self, backend):
        kernels = synthetic_family(backend, count=4, docs=80, seed=13)
        batched = rank_top_k_batch(kernels, [5] * 4)
        for kernel, top in zip(kernels, batched):
            full = sorted(
                kernel.score_documents(), key=lambda s: (-s.value, s.document)
            )
            assert [(s.document, s.value) for s in top] == [
                (s.document, s.value) for s in full[:5]
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pruned_rules_and_ties(self, backend):
        kernels = synthetic_family(backend, count=4, threshold=0.5, seed=17)
        batched = rank_top_k_batch(kernels, [3, 9, 1, 4])
        for kernel, k, top in zip(kernels, (3, 9, 1, 4), batched):
            expected = kernel.rank_top_k(k)
            assert [(s.document, s.value) for s in top] == [
                (s.document, s.value) for s in expected
            ]

    def test_length_mismatch_rejected(self):
        kernels = synthetic_family("python", count=2)
        with pytest.raises(ScoringError):
            rank_top_k_batch(kernels, [1])

    def test_invalid_k_rejected(self):
        kernels = synthetic_family("python", count=2)
        with pytest.raises(ScoringError):
            rank_top_k_batch(kernels, [1, 0])
