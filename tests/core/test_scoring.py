"""Unit tests for equation (4) and the three Section 3.3 scorers."""

import pytest

from repro.errors import ComplexityLimitError, ScoringError
from repro.events import ALWAYS, EventSpace
from repro.dl import parse_concept
from repro.rules import PreferenceRule
from repro.core import (
    DocumentBinding,
    RuleBinding,
    ScoringProblem,
    enumeration_score,
    exact_event_score,
    factorised_score,
    score_certain,
    score_document,
)
from repro.dl.vocabulary import Individual


def make_binding(rule_id: str, sigma: float, p_context: float, space: EventSpace) -> RuleBinding:
    rule = PreferenceRule.parse(rule_id, "TOP", "TvProgram", sigma)
    if p_context >= 1.0:
        event = ALWAYS
    else:
        event = space.atom(f"ctx:{rule_id}", p_context)
    return RuleBinding(rule, event, p_context)


def make_document(name: str, probabilities: list[float], space: EventSpace) -> DocumentBinding:
    events = []
    for index, p in enumerate(probabilities):
        if p >= 1.0:
            events.append(ALWAYS)
        elif p <= 0.0:
            from repro.events import NEVER

            events.append(NEVER)
        else:
            events.append(space.atom(f"doc:{name}:{index}", p))
    return DocumentBinding(Individual(name), tuple(events), tuple(probabilities))


@pytest.fixture()
def space():
    return EventSpace()


class TestEquationFour:
    def test_inactive_rule_contributes_one(self, space):
        bindings = [make_binding("r", 0.8, 1.0, space)]
        assert score_certain(bindings, [False], [False]) == pytest.approx(1.0)
        assert score_certain(bindings, [False], [True]) == pytest.approx(1.0)

    def test_active_matching_rule_contributes_sigma(self, space):
        bindings = [make_binding("r", 0.8, 1.0, space)]
        assert score_certain(bindings, [True], [True]) == pytest.approx(0.8)

    def test_active_missing_rule_contributes_one_minus_sigma(self, space):
        bindings = [make_binding("r", 0.8, 1.0, space)]
        assert score_certain(bindings, [True], [False]) == pytest.approx(0.2)

    def test_product_over_rules(self, space):
        bindings = [make_binding("r1", 0.8, 1.0, space), make_binding("r2", 0.9, 1.0, space)]
        assert score_certain(bindings, [True, True], [True, False]) == pytest.approx(0.8 * 0.1)

    def test_figure1_neither(self, space):
        """Figure 1: (1-0.8)*(1-0.6) = 0.08 for a program with no bulletin."""
        bindings = [make_binding("traffic", 0.8, 1.0, space), make_binding("weather", 0.6, 1.0, space)]
        assert score_certain(bindings, [True, True], [False, False]) == pytest.approx(0.08)

    def test_vector_length_validation(self, space):
        bindings = [make_binding("r", 0.8, 1.0, space)]
        with pytest.raises(ScoringError):
            score_certain(bindings, [True, False], [True])


class TestScorerAgreement:
    @pytest.mark.parametrize(
        "p_contexts,p_features,sigmas",
        [
            ([1.0, 1.0], [0.95, 0.85], [0.8, 0.9]),  # Channel 5 news
            ([1.0], [0.0], [0.7]),
            ([0.5, 0.25, 0.75], [0.1, 0.9, 0.5], [0.2, 0.6, 0.99]),
            ([0.0, 1.0], [0.5, 0.5], [0.5, 0.5]),
            ([1.0, 1.0, 1.0, 1.0], [1.0, 0.0, 0.3, 0.7], [0.9, 0.1, 0.4, 0.6]),
        ],
    )
    def test_enumeration_equals_factorised_equals_exact(self, space, p_contexts, p_features, sigmas):
        bindings = [
            make_binding(f"r{i}", sigma, p, space)
            for i, (sigma, p) in enumerate(zip(sigmas, p_contexts))
        ]
        document = make_document("d", p_features, space)
        by_enumeration = enumeration_score(bindings, document)
        by_factorisation = factorised_score(bindings, document)
        by_events = exact_event_score(bindings, document, space)
        assert by_factorisation == pytest.approx(by_enumeration, abs=1e-12)
        assert by_events == pytest.approx(by_enumeration, abs=1e-9)

    def test_enumeration_rule_limit(self, space):
        bindings = [make_binding(f"r{i}", 0.5, 0.5, space) for i in range(15)]
        document = make_document("d", [0.5] * 15, space)
        with pytest.raises(ComplexityLimitError):
            enumeration_score(bindings, document)
        # The factorised scorer handles the same input fine.
        assert 0.0 <= factorised_score(bindings, document) <= 1.0


class TestExactScorerCorrelations:
    def test_shared_atom_between_context_and_feature(self, space):
        """When the same basic event drives context and feature, the
        independence-assuming scorers are wrong and the exact one right."""
        shared = space.atom("shared", 0.5)
        rule = PreferenceRule.parse("r", "TOP", "TvProgram", 0.9)
        binding = RuleBinding(rule, shared, 0.5)
        document = DocumentBinding(Individual("d"), (shared,), (0.5,))
        # Exact: with p=0.5 the worlds are (g=f=1) -> 0.9 and (g=f=0) -> 1.
        assert exact_event_score([binding], document, space) == pytest.approx(0.5 * 0.9 + 0.5 * 1.0)
        # Factorised (wrongly) mixes in the g=1,f=0 case.
        assert factorised_score([binding], document) == pytest.approx(
            0.5 + 0.5 * (0.5 * 0.9 + 0.5 * 0.1)
        )

    def test_mutex_features_between_rules(self, space):
        """Two rules preferring mutually exclusive features."""
        a = space.atom("fa", 0.5)
        b = space.atom("fb", 0.5)
        space.declare_mutex("g", ["fa", "fb"])
        bindings = [
            RuleBinding(PreferenceRule.parse("r1", "TOP", "A", 0.8), ALWAYS, 1.0),
            RuleBinding(PreferenceRule.parse("r2", "TOP", "B", 0.6), ALWAYS, 1.0),
        ]
        document = DocumentBinding(Individual("d"), (a, b), (0.5, 0.5))
        # Worlds: fa (p .5) -> 0.8*0.4; fb (p .5) -> 0.2*0.6 ; never both.
        expected = 0.5 * (0.8 * 0.4) + 0.5 * (0.2 * 0.6)
        assert exact_event_score(bindings, document, space) == pytest.approx(expected)


class TestScoreDocument:
    def test_breakdown_matches_factorised(self, space):
        bindings = [make_binding("r1", 0.8, 1.0, space), make_binding("r2", 0.9, 0.5, space)]
        document = make_document("d", [0.95, 0.85], space)
        problem = ScoringProblem(tuple(bindings), (document,), space)
        result = score_document(problem, document, "factorised")
        product = 1.0
        for contribution in result.contributions:
            product *= contribution.factor
        assert result.value == pytest.approx(product)

    def test_unknown_method_rejected(self, space):
        bindings = [make_binding("r1", 0.8, 1.0, space)]
        document = make_document("d", [0.5], space)
        problem = ScoringProblem(tuple(bindings), (document,), space)
        with pytest.raises(ScoringError):
            score_document(problem, document, "magic")

    def test_problem_width_validation(self, space):
        bindings = (make_binding("r1", 0.8, 1.0, space),)
        document = make_document("d", [0.5, 0.5], space)
        with pytest.raises(ScoringError):
            ScoringProblem(bindings, (document,), space)
