"""TenantRegistry / UserSession: the multi-tenant serving layer."""

import threading

import pytest

from repro.dl import ConceptName, Individual
from repro.engine import EngineBuilder, RankingEngine
from repro.errors import ABoxError, EngineConfigError
from repro.reason import base_tier, clear_registry
from repro.rules import RuleRepository, parse_rule
from repro.tenants import TenantRegistry, UserSession
from repro.workloads import (
    EXPECTED_TABLE1_SCORES,
    build_tvtouch,
    generate_population,
    sessions_for_population,
    set_breakfast_weekend_context,
)


RULE_P = "RULE p1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8"
RULE_M = "RULE m1: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9"


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_registry()
    yield
    clear_registry()


@pytest.fixture()
def registry():
    return TenantRegistry(build_tvtouch(), max_sessions=64)


def repository(*lines):
    return RuleRepository([parse_rule(line) for line in lines])


class TestCheckout:
    def test_checkout_is_stable_and_counted(self, registry):
        alice = registry.session("alice")
        assert registry.session("alice") is alice
        info = registry.info()
        assert (info.minted, info.hits, info.active) == (1, 1, 1)
        assert "alice" in registry and len(registry) == 1

    def test_base_is_frozen_by_default(self, registry):
        with pytest.raises(ABoxError):
            registry.abox.assert_concept("X", "y")

    def test_lru_eviction_of_idle_sessions(self):
        registry = TenantRegistry(build_tvtouch(), max_sessions=2)
        registry.session("a")
        registry.session("b")
        registry.session("a")  # refresh a
        registry.session("c")  # evicts b
        assert "a" in registry and "c" in registry and "b" not in registry
        assert registry.info().evictions == 1

    def test_explicit_evict_and_clear(self, registry):
        registry.session("a")
        registry.session("b")
        assert registry.evict("a") and not registry.evict("a")
        assert registry.clear() == 1
        assert len(registry) == 0

    def test_session_carries_engine_and_overlay(self, registry):
        alice = registry.session("alice")
        assert isinstance(alice, UserSession)
        assert isinstance(alice.engine, RankingEngine)
        assert alice.overlay.base is registry.abox
        assert alice.user == Individual("alice")

    def test_rejects_worldless_base(self):
        with pytest.raises(EngineConfigError, match="abox"):
            TenantRegistry(object())

    def test_engine_options_apply_at_mint(self):
        registry = TenantRegistry(build_tvtouch(), method="enumeration")
        assert registry.session("a").engine.method == "enumeration"
        assert registry.session("b", method="exact").engine.method == "exact"

    def test_rules_factory_per_tenant(self):
        def factory(tenant_id):
            return repository(RULE_P if tenant_id == "p" else RULE_M)

        registry = TenantRegistry(build_tvtouch(), rules=factory)
        assert registry.session("p").repository.rules[0].rule_id == "p1"
        assert registry.session("m").repository.rules[0].rule_id == "m1"


class TestIsolation:
    def test_context_never_leaks_to_siblings_or_base(self, registry):
        alice = registry.session("alice")
        bob = registry.session("bob")
        alice.install_context("Weekend", "Breakfast")
        weekend = ConceptName("Weekend")
        assert alice.overlay.concept_event(weekend, alice.user) is not None
        assert bob.overlay.concept_event(weekend, alice.user) is None
        assert registry.abox.concept_event(weekend, alice.user) is None
        # and the scores differ accordingly
        assert alice.preference_scores() != bob.preference_scores()

    def test_clear_context_leaves_base_untouched(self, registry):
        alice = registry.session("alice")
        alice.install_context("Weekend")
        base_len = len(registry.abox)
        assert alice.clear_context() == 1
        assert len(registry.abox) == base_len
        assert not alice.overlay.dynamic_assertions()

    def test_assert_fact_defaults_to_own_user(self, registry):
        alice = registry.session("alice")
        alice.assert_fact("Premium")
        assert alice.overlay.concept_event(ConceptName("Premium"), alice.user)

    def test_threaded_checkout_is_race_free(self):
        registry = TenantRegistry(build_tvtouch(), max_sessions=256)
        results: dict[int, list] = {}
        errors = []

        def worker(worker_id):
            try:
                local = []
                for index in range(40):
                    session = registry.session(f"tenant_{index % 8}")
                    session.install_context("Weekend")
                    local.append(session)
                results[worker_id] = local
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # same tenant id -> same session object across all threads
        by_tenant: dict[str, UserSession] = {}
        for sessions in results.values():
            for session in sessions:
                seen = by_tenant.setdefault(session.tenant_id, session)
                assert seen is session
        info = registry.info()
        assert info.minted == 8
        assert info.hits == 8 * 40 - 8


class TestShardingAndPinning:
    def test_shard_routing_is_stable_and_complete(self):
        registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=64)
        for index in range(24):
            registry.session(f"tenant_{index}")
        info = registry.info()
        assert info.shards == 4
        assert info.active == 24 and info.minted == 24
        assert sorted(registry) == sorted(f"tenant_{index}" for index in range(24))
        # Re-checkout lands on the same shard (same session object).
        assert registry.session("tenant_3") is registry.session("tenant_3")

    def test_per_shard_lru_eviction(self):
        # One shard, capacity 2: the classic global LRU behaviour.
        registry = TenantRegistry(build_tvtouch(), shards=1, max_sessions=2)
        registry.session("a")
        registry.session("b")
        registry.session("a")  # refresh a
        registry.session("c")  # evicts b
        assert "a" in registry and "c" in registry and "b" not in registry
        assert registry.info().evictions == 1

    def test_pinned_session_is_never_an_lru_victim(self):
        registry = TenantRegistry(build_tvtouch(), shards=1, max_sessions=1)
        with registry.checkout("pinned") as session:
            assert registry.info().pinned == 1
            other = registry.session("other")  # over capacity
            # The pinned session survived; the shard overflowed or
            # evicted the unpinned newcomer — never the pinned one.
            assert "pinned" in registry
            assert session.pins == 1
            assert other is not session
        assert registry.info().pinned == 0
        # After release the shard shrinks back to capacity.
        assert len(registry) == 1

    def test_unpinned_mint_survives_a_pinned_full_shard(self):
        """An unpinned session() mint must not be the sweep's victim
        either: evicting the newcomer would make every checkout of
        that tenant a fresh mint (distinct objects, divergent state)."""
        registry = TenantRegistry(build_tvtouch(), shards=1, max_sessions=1)
        with registry.checkout("a"):
            first = registry.session("b")
            second = registry.session("b")
            assert first is second  # linearisable despite the overflow
            assert "b" in registry
        assert len(registry) == 1  # shrinks back once the pin releases

    def test_mint_under_pressure_pins_before_the_capacity_sweep(self):
        """A just-minted pinned session must not be the sweep's victim:
        on a shard full of pinned sessions it stays in the table, or a
        concurrent checkout of the same tenant would mint a second
        live session."""
        registry = TenantRegistry(build_tvtouch(), shards=1, max_sessions=1)
        with registry.checkout("a"):
            with registry.checkout("b") as b:
                assert "b" in registry  # pinned before eviction ran
                assert registry.session("b") is b  # still linearisable
        assert len(registry) == 1  # shrinks back once pins release

    def test_explicit_evict_of_pinned_session_is_deferred(self):
        registry = TenantRegistry(build_tvtouch(), max_sessions=8)
        with registry.checkout("alice") as session:
            session.install_context("Weekend", "Breakfast")
            assert registry.evict("alice")
            # Gone from the table: a new checkout mints a *fresh* session...
            fresh = registry.session("alice")
            assert fresh is not session
            # ...but the in-flight holder still ranks on a live overlay.
            assert session.doomed
            scores = session.preference_scores()
            assert scores["channel5_news"] == pytest.approx(0.6006, abs=1e-9)
        assert not session.doomed  # released and settled

    def test_checkout_mints_and_counts_like_session(self):
        registry = TenantRegistry(build_tvtouch(), shards=2, max_sessions=16)
        with registry.checkout("alice") as alice:
            assert isinstance(alice, UserSession)
        assert registry.session("alice") is alice
        info = registry.info()
        assert (info.minted, info.hits) == (1, 1)

    def test_concurrent_checkout_across_shards_is_consistent(self):
        registry = TenantRegistry(build_tvtouch(), shards=4, max_sessions=256)
        errors = []
        infos = []

        def worker(worker_id):
            try:
                for index in range(50):
                    with registry.checkout(f"tenant_{(worker_id + index) % 16}") as s:
                        assert s.pins >= 1
                    infos.append(registry.info())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = registry.info()
        assert final.minted == 16
        assert final.hits == 8 * 50 - 16
        assert final.pinned == 0
        # Every mid-flight snapshot was arithmetically sane.
        for info in infos:
            assert info.active <= 16
            assert info.minted + info.hits <= 8 * 50

    def test_rejects_bad_shard_count(self):
        with pytest.raises(EngineConfigError, match="shards"):
            TenantRegistry(build_tvtouch(), shards=0)

    def test_max_sessions_bounds_the_whole_registry_exactly(self):
        # Shards must never multiply the bound: ceil-per-shard would
        # hold up to shards sessions here.
        registry = TenantRegistry(build_tvtouch(), shards=8, max_sessions=3)
        assert registry.shards == 3  # clamped: no zero-capacity shards
        for index in range(20):
            registry.session(f"tenant_{index}")
        assert len(registry) <= 3
        # Uneven split distributes the remainder: 4 over 3 shards.
        registry = TenantRegistry(build_tvtouch(), shards=3, max_sessions=4)
        for index in range(20):
            registry.session(f"tenant_{index}")
        assert len(registry) <= 4

    def test_shared_basis_pool_bound_is_exact_across_stripes(self):
        from repro.engine.basis import SharedBasisPool, ViewBasis

        pool = SharedBasisPool(max_entries=4, stripes=8)
        assert pool.stripes == 4
        for index in range(20):
            pool.put(("key", index), ViewBasis(kernel=None, snapshot=frozenset()))
        assert len(pool) <= 4


class TestSharing:
    def test_sessions_share_one_base_tier(self, registry):
        alice = registry.session("alice")
        bob = registry.session("bob")
        alice.install_context("Weekend")
        alice.preference_scores()
        bob.preference_scores()
        tier = base_tier(registry.abox, registry.tbox, registry.space)
        assert alice.engine.kb.session().base is tier
        assert bob.engine.kb.session().base is tier
        assert alice.engine.reasoner_info().shared_base
        assert alice.engine.reasoner_info().base_events > 0

    def test_context_change_keeps_base_tier_warm(self, registry):
        alice = registry.session("alice")
        alice.install_context("Weekend")
        alice.preference_scores()
        tier = base_tier(registry.abox, registry.tbox, registry.space)
        warm = len(tier._events)
        assert warm > 0
        alice.install_context("Breakfast")
        alice.preference_scores()
        assert base_tier(registry.abox, registry.tbox, registry.space) is tier
        assert len(tier._events) >= warm


class TestScoreAgreement:
    def test_overlay_scores_match_private_world_exactly(self):
        # Private path: the classic single-user world with the paper's
        # context installed directly into the (only) ABox.
        private_world = build_tvtouch()
        set_breakfast_weekend_context(private_world)
        private = RankingEngine.from_world(private_world)
        private_scores = private.preference_scores()

        # Tenant path: same static world, same rules, but the context
        # lives in alice's overlay over a frozen base.
        registry = TenantRegistry(build_tvtouch())
        alice = registry.session("alice", user="peter")
        alice.install_context("Weekend", "Breakfast")
        overlay_scores = alice.preference_scores()

        assert set(private_scores) == set(overlay_scores)
        for document, expected in private_scores.items():
            assert overlay_scores[document] == pytest.approx(expected, abs=1e-9)
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert overlay_scores[document] == pytest.approx(expected, abs=1e-9)

    def test_population_sessions_rank_like_private_scorers(self):
        contexts, genres = ["Weekend", "Breakfast"], ["HUMAN-INTEREST"]
        population = generate_population(contexts, genres, size=3, rules_per_user=1)

        registry = TenantRegistry(build_tvtouch())
        sessions = sessions_for_population(registry, population)
        assert sorted(sessions) == [user.name for user in population]
        for user in population:
            session = sessions[user.name]
            session.install_context(*contexts)
            private_world = build_tvtouch()
            set_breakfast_weekend_context(private_world)
            private = RankingEngine.from_world(private_world, rules=user.repository)
            expected = private.preference_scores()
            actual = session.preference_scores()
            for document, value in expected.items():
                assert actual[document] == pytest.approx(value, abs=1e-9)


class TestSharedBasisPool:
    def test_sibling_tenant_rescoring_reuses_the_compiled_basis(self):
        from repro.engine import shared_basis_pool

        registry = TenantRegistry(build_tvtouch())
        pool = shared_basis_pool()
        pool.clear()

        alice = registry.session("alice")
        alice.install_context("Weekend", "Breakfast")
        alice_scores = alice.preference_scores()  # cold bind -> pool put
        assert len(pool) == 1

        bob = registry.session("bob")
        bob.install_context("Weekend")  # different context, same statics
        hits_before = pool.hits
        bob_scores = bob.preference_scores()
        # bob's very first request rescored on alice's compiled matrix
        assert pool.hits == hits_before + 1
        assert bob.engine.cache_info().context_refreshes == 1
        assert bob.engine.cache_info().misses == 1

        # and the pooled fast path is score-identical to a private world
        private_world = build_tvtouch()
        set_breakfast_weekend_context(private_world, breakfast_probability=0.0)
        private_world.abox.clear_dynamic()
        private_world.abox.assert_concept("Weekend", private_world.user, dynamic=True)
        private = RankingEngine.from_world(private_world)
        for document, value in private.preference_scores().items():
            assert bob_scores[document] == pytest.approx(value, abs=1e-9)
        assert alice_scores["channel5_news"] == pytest.approx(0.6006, abs=1e-9)

    def test_pool_never_aliases_distinct_tboxes_at_equal_revision(self):
        # Two registries share one frozen base ABox but carry different
        # TBoxes, both at revision 0: the pool key must separate them.
        from types import SimpleNamespace

        from repro.dl import TBox
        from repro.engine import shared_basis_pool
        from repro.workloads import build_tvtouch as build

        shared_basis_pool().clear()
        world = build()
        plain_tbox = TBox()  # no WeatherBulletin ⊑ NewsSubject axiom
        plain_tbox.add_subsumption("Unrelated1", "UnrelatedTop")
        plain_tbox.add_subsumption("Unrelated2", "UnrelatedTop")
        assert plain_tbox.revision == world.tbox.revision
        with_axioms = TenantRegistry(world)
        without_axioms = TenantRegistry(
            SimpleNamespace(
                abox=world.abox,
                tbox=plain_tbox,
                space=world.space,
                target=world.target,
                repository=world.repository,
            ),
            freeze=False,
        )
        alice = with_axioms.session("alice")
        alice.install_context("Weekend", "Breakfast")
        taxonomic = alice.preference_scores()["bbc_news"]
        bob = without_axioms.session("bob")
        bob.install_context("Weekend", "Breakfast")
        plain = bob.preference_scores()["bbc_news"]
        # Without the subsumption, bbc_news' weather bulletin no longer
        # counts as news: had bob reused alice's pooled basis the two
        # values would wrongly coincide.
        assert taxonomic == pytest.approx(0.18, abs=1e-9)
        assert plain == pytest.approx(0.02, abs=1e-9)

    def test_overlay_static_fact_blocks_unsafe_reuse(self):
        from repro.engine import shared_basis_pool

        registry = TenantRegistry(build_tvtouch())
        pool = shared_basis_pool()
        pool.clear()

        alice = registry.session("alice")
        alice.install_context("Weekend", "Breakfast")
        alice.preference_scores()

        # carol's overlay rewires a shared document: reuse must refuse.
        carol = registry.session("carol")
        carol.overlay.assert_role(
            "hasGenre", "mpfs", "HUMAN-INTEREST", registry.space.atom("g:mpfs", 0.9)
        )
        carol.install_context("Weekend", "Breakfast")
        carol_scores = carol.preference_scores()
        assert carol.engine.cache_info().context_refreshes == 0  # cold bind
        assert carol_scores["mpfs"] > alice.preference_scores()["mpfs"]


class TestBuilderDuckTyping:
    def test_builder_accepts_a_user_session(self, registry):
        alice = registry.session("alice")
        alice.install_context("Weekend", "Breakfast")
        engine = EngineBuilder().world(alice).build()
        scores = engine.preference_scores()
        assert scores["channel5_news"] == pytest.approx(0.6006, abs=1e-9)

    def test_builder_accepts_a_bare_overlay_pair(self, registry):
        class OverlayWorld:
            def __init__(self, overlay, base):
                self.overlay = overlay
                self.base = base

        world = OverlayWorld(registry.abox.overlay(), registry.world)
        engine = EngineBuilder().world(world).build()
        assert engine.abox is world.overlay

    def test_overlay_pair_missing_tbox_names_the_gap(self):
        class Bare:
            pass

        base = build_tvtouch()
        bare = Bare()
        bare.overlay = base.abox.overlay()
        bare.base = object()
        with pytest.raises(EngineConfigError, match="tbox"):
            EngineBuilder().world(bare)

    def test_plain_world_error_hints_at_tenant_registry(self):
        with pytest.raises(EngineConfigError, match="TenantRegistry"):
            EngineBuilder().world(object())
