"""Incremental context rescoring through the engine's basis cache."""

import pytest

from repro.engine import RankingEngine
from repro.engine.basis import build_view_basis, dynamic_snapshot, support_closure
from repro.rules import PreferenceRule
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


@pytest.fixture()
def engine(world):
    return RankingEngine.from_world(world)


def fresh_scores(world):
    """The ground truth: a brand-new non-incremental engine."""
    cold = RankingEngine.from_world(world, incremental=False)
    return cold.rank().scores()


class TestIncrementalRefresh:
    def test_context_flip_served_from_basis(self, engine, world):
        engine.rank()
        assert engine.cache_info().bases == 1
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        response = engine.rank()
        assert not response.from_cache
        info = engine.cache_info()
        assert info.context_refreshes == 1
        assert response.scores() == pytest.approx(fresh_scores(world))

    def test_repeated_flips_keep_rescoring_incrementally(self, engine, world):
        engine.rank()
        for index, probability in enumerate((0.9, 0.5, 0.3)):
            set_breakfast_weekend_context(
                world, weekend_probability=probability, tick=f"t{index}"
            )
            response = engine.rank()
            assert response.scores() == pytest.approx(fresh_scores(world))
        assert engine.cache_info().context_refreshes == 3

    def test_flip_back_is_a_plain_cache_hit(self, engine, world):
        baseline = engine.rank()
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        engine.rank()
        set_breakfast_weekend_context(world)
        restored = engine.rank()
        assert restored.from_cache
        assert restored.scores() == pytest.approx(baseline.scores())

    def test_explanations_survive_the_incremental_path(self, engine, world):
        engine.rank()
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        text = engine.explain("channel5_news")
        assert "r1" in text and "r2" in text

    def test_disabled_incremental_never_uses_a_basis(self, world):
        engine = RankingEngine.from_world(world, incremental=False)
        engine.rank()
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        engine.rank()
        info = engine.cache_info()
        assert info.context_refreshes == 0
        assert info.bases == 0

    def test_invalidate_drops_bases_too(self, engine):
        engine.rank()
        assert engine.cache_info().bases == 1
        engine.invalidate_cache()
        assert engine.cache_info().bases == 0


class TestGuardFallsBackCold:
    def test_rule_change_misses_the_basis(self, engine, world):
        engine.rank()
        world.repository.add(PreferenceRule.parse("r3", "Weekend", "TvProgram", 0.5))
        response = engine.rank()
        assert engine.cache_info().context_refreshes == 0
        assert response.scores() == pytest.approx(fresh_scores(world))

    def test_static_change_misses_the_basis(self, engine, world):
        engine.rank()
        world.abox.assert_concept("TvProgram", "late_night_show")
        response = engine.rank()
        assert engine.cache_info().context_refreshes == 0
        assert "late_night_show" in response.scores()

    def test_dynamic_assertion_on_a_document_forces_cold(self, engine, world):
        engine.rank()
        # Touching a candidate dynamically may change its events — the
        # delta guard must refuse to reuse the compiled matrix.
        world.abox.assert_concept("Promoted", "oprah", dynamic=True)
        response = engine.rank()
        assert engine.cache_info().context_refreshes == 0
        assert response.scores() == pytest.approx(fresh_scores(world))

    def test_dynamic_target_member_forces_cold(self, engine, world):
        engine.rank()
        # A dynamic assertion that *adds* a target member: the view
        # gains a document, so the basis cannot be reused.
        world.abox.assert_concept("TvProgram", "popup_show", dynamic=True)
        response = engine.rank()
        assert engine.cache_info().context_refreshes == 0
        assert "popup_show" in response.scores()


class TestBasisInternals:
    def test_support_closure_follows_roles(self, world):
        support = support_closure(world.abox, ["channel5_news"])
        assert "channel5_news" in support
        assert "HUMAN-INTEREST" in support  # via hasGenre
        assert world.user.name not in support

    def test_dynamic_snapshot_diffs_context_changes(self, world):
        before = dynamic_snapshot(world.abox)
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        after = dynamic_snapshot(world.abox)
        delta = before ^ after
        assert delta
        touched = {
            assertion.individual.name
            for assertion in delta
            if hasattr(assertion, "individual")
        }
        assert touched == {world.user.name}

    def test_reusable_for_accepts_user_only_deltas(self, engine, world):
        engine.rank()
        kernel = engine._scorer.last_kernel
        basis = build_view_basis(world.abox, kernel)
        set_breakfast_weekend_context(world, weekend_probability=0.7, tick="t2")
        assert basis.reusable_for(world.abox, world.tbox, engine.target)

    def test_reusable_for_rejects_document_deltas(self, engine, world):
        engine.rank()
        basis = build_view_basis(world.abox, engine._scorer.last_kernel)
        world.abox.assert_concept("Promoted", "bbc_news", dynamic=True)
        assert not basis.reusable_for(world.abox, world.tbox, engine.target)


class TestEngineTopK:
    def test_engine_rank_top_k_matches_view_ranking(self, engine, world):
        full = engine.rank()
        top = engine.rank_top_k(2)
        assert [score.document for score in top] == full.documents()[:2]

    def test_engine_rank_top_k_with_explicit_documents(self, engine, world):
        top = engine.rank_top_k(1, documents=world.program_ids)
        assert [score.document for score in top] == ["channel5_news"]

    def test_view_rank_top_k(self, engine):
        top = engine.view.rank_top_k(2)
        assert [score.document for score in top][:1] == ["channel5_news"]
