"""Unit tests for clock, sensors, snapshots and the context manager."""

from datetime import datetime

import pytest

from repro.errors import ContextError
from repro.events import EventSpace
from repro.dl import ABox, Individual, TBox, atomic, parse_concept
from repro.context import (
    ActivitySensor,
    CalendarSensor,
    CompanionSensor,
    ContextManager,
    GroundTruth,
    LocationSensor,
    SimClock,
    SituatedUser,
    define_context,
    define_location_concept,
)
from repro.storage import Database


@pytest.fixture()
def peter():
    return Individual("peter")


@pytest.fixture()
def saturday_morning():
    return SimClock(datetime(2007, 4, 14, 8, 30))  # Saturday


class TestSimClock:
    def test_weekend_detection(self, saturday_morning):
        assert saturday_morning.is_weekend
        assert not saturday_morning.is_workday
        assert saturday_morning.weekday_name == "Saturday"

    def test_part_of_day(self):
        assert SimClock(datetime(2007, 4, 16, 8, 0)).part_of_day == "Morning"
        assert SimClock(datetime(2007, 4, 16, 14, 0)).part_of_day == "Afternoon"
        assert SimClock(datetime(2007, 4, 16, 20, 0)).part_of_day == "Evening"
        assert SimClock(datetime(2007, 4, 16, 2, 0)).part_of_day == "Night"
        assert SimClock(datetime(2007, 4, 16, 23, 30)).part_of_day == "Night"

    def test_calendar_concepts(self, saturday_morning):
        assert saturday_morning.calendar_concepts == ("Weekend", "Morning")

    def test_advance(self, saturday_morning):
        saturday_morning.advance(hours=5)
        assert saturday_morning.part_of_day == "Afternoon"

    def test_clock_cannot_rewind(self, saturday_morning):
        with pytest.raises(ContextError):
            saturday_morning.advance(minutes=-10)


class TestSensors:
    def test_calendar_sensor_certain(self, peter, saturday_morning):
        space = EventSpace()
        sensor = CalendarSensor(peter)
        measurements = sensor.read(saturday_morning, GroundTruth(), space, "t1")
        assert {str(m.concept) for m in measurements} == {"Weekend", "Morning"}
        assert all(m.probability == 1.0 for m in measurements)

    def test_location_sensor_confusion(self, peter, saturday_morning):
        space = EventSpace()
        sensor = LocationSensor(peter, rooms=("kitchen", "living", "study"), accuracy=0.8)
        measurements = sensor.read(
            saturday_morning, GroundTruth(location="kitchen"), space, "t1"
        )
        by_room = {m.target.name: m.probability for m in measurements}
        assert by_room["kitchen"] == pytest.approx(0.8)
        assert by_room["living"] == pytest.approx(0.1)
        assert sum(by_room.values()) == pytest.approx(1.0)

    def test_location_measurements_are_mutex(self, peter, saturday_morning):
        space = EventSpace()
        sensor = LocationSensor(peter, rooms=("kitchen", "living"), accuracy=0.7)
        measurements = sensor.read(
            saturday_morning, GroundTruth(location="kitchen"), space, "t1"
        )
        names = [m.event.atom_names() for m in measurements]
        flat = [next(iter(n)) for n in names]
        assert space.are_exclusive(flat[0], flat[1])

    def test_unknown_ground_truth_rejected(self, peter, saturday_morning):
        space = EventSpace()
        sensor = LocationSensor(peter, rooms=("kitchen",), accuracy=0.9)
        with pytest.raises(ContextError):
            sensor.read(saturday_morning, GroundTruth(location="garage"), space, "t1")

    def test_no_truth_no_measurements(self, peter, saturday_morning):
        space = EventSpace()
        sensor = ActivitySensor(peter, activities=("Breakfast", "Working"))
        assert sensor.read(saturday_morning, GroundTruth(), space, "t1") == []

    def test_companion_sensor_independent(self, peter, saturday_morning):
        space = EventSpace()
        sensor = CompanionSensor(peter, detection_probability=0.9)
        measurements = sensor.read(
            saturday_morning, GroundTruth(companions=("mary", "paul")), space, "t1"
        )
        assert len(measurements) == 2
        names = [next(iter(m.event.atom_names())) for m in measurements]
        assert not space.are_exclusive(names[0], names[1])


class TestContextManager:
    @pytest.fixture()
    def manager(self, peter, saturday_morning):
        space = EventSpace()
        abox = ABox()
        tbox = TBox()
        define_location_concept(tbox, "InKitchen", "kitchen")
        define_context(tbox, "BreakfastTime", "InKitchen AND Morning")
        manager = ContextManager(
            user=SituatedUser(peter),
            clock=saturday_morning,
            abox=abox,
            tbox=tbox,
            space=space,
            database=Database(),
        )
        manager.add_sensor(CalendarSensor(peter))
        manager.add_sensor(LocationSensor(peter, rooms=("kitchen", "living"), accuracy=0.7))
        return manager

    def test_refresh_installs_snapshot(self, manager):
        snapshot = manager.refresh(GroundTruth(location="kitchen"))
        assert len(snapshot) == 4  # 2 calendar + 2 location
        assert manager.last_snapshot is snapshot

    def test_context_probability_combines_measurements(self, manager):
        manager.refresh(GroundTruth(location="kitchen"))
        assert manager.context_probability(atomic("Weekend")) == pytest.approx(1.0)
        assert manager.context_probability(atomic("InKitchen")) == pytest.approx(0.7)
        assert manager.context_probability(atomic("BreakfastTime")) == pytest.approx(0.7)

    def test_refresh_replaces_dynamic_context(self, manager):
        manager.refresh(GroundTruth(location="kitchen"))
        manager.refresh(GroundTruth(location="living"))
        assert manager.context_probability(atomic("InKitchen")) == pytest.approx(0.3)

    def test_database_mirrors_context(self, manager):
        manager.refresh(GroundTruth(location="kitchen"))
        role_table = manager.database.table("role_locatedIn")
        assert len(role_table) == 2

    def test_derived_context_through_parse(self, manager):
        manager.refresh(GroundTruth(location="kitchen"))
        probability = manager.context_probability(parse_concept("Weekend AND InKitchen"))
        assert probability == pytest.approx(0.7)
