"""The overlay journal: durability for per-tenant context overlays."""

import json

import pytest

from repro.dl import ABox
from repro.errors import SnapshotError
from repro.store import OverlayJournal
from repro.tenants import TenantRegistry
from repro.workloads import EXPECTED_TABLE1_SCORES, build_tvtouch


@pytest.fixture()
def base():
    return ABox().freeze()


class TestRecordReplay:
    def test_round_trip_one_tenant(self, base, tmp_path):
        journal = OverlayJournal(tmp_path / "j.jsonl")
        overlay = base.overlay()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        overlay.assert_concept("AtHome", "alice")
        journal.record("alice", overlay)

        fresh = base.overlay()
        assert OverlayJournal(tmp_path / "j.jsonl").replay_into("alice", fresh)
        restored = fresh.overlay_snapshot()
        assert len(restored) == 2
        assert {a.dynamic for a in restored} == {True, False}

    def test_latest_record_wins(self, base, tmp_path):
        journal = OverlayJournal(tmp_path / "j.jsonl")
        overlay = base.overlay()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        journal.record("alice", overlay)
        overlay.clear_dynamic()
        overlay.assert_concept("Workday", "alice", dynamic=True)
        journal.record("alice", overlay)

        fresh = base.overlay()
        OverlayJournal(tmp_path / "j.jsonl").replay_into("alice", fresh)
        concepts = {a.concept.name for a in fresh.overlay_assertions()}
        assert concepts == {"Workday"}

    def test_unknown_tenant_is_a_noop(self, base, tmp_path):
        journal = OverlayJournal(tmp_path / "j.jsonl")
        fresh = base.overlay()
        assert not journal.replay_into("nobody", fresh)
        assert not fresh.overlay_snapshot()

    def test_torn_trailing_line_is_ignored(self, base, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OverlayJournal(path)
        overlay = base.overlay()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        journal.record("alice", overlay)
        # Simulate a crash mid-append: a second record without newline.
        with open(path, "ab") as handle:
            handle.write(b'{"tenant": "bob", "seq": 99, "concepts"')
        reader = OverlayJournal(path)
        assert reader.tenants == ("alice",)

    def test_corrupt_record_loses_only_itself(self, base, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OverlayJournal(path)
        overlay = base.overlay()
        overlay.assert_concept("Weekend", "alice", dynamic=True)
        journal.record("alice", overlay)
        with open(path, "ab") as handle:
            handle.write(b"this is not json\n")
        journal.record("bob", overlay)
        reader = OverlayJournal(path)
        assert set(reader.tenants) == {"alice", "bob"}

    def test_malformed_event_text_raises_snapshot_error(self, base, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {
            "tenant": "alice",
            "seq": 1,
            "concepts": [["Weekend", "alice", "(a broken", True]],
            "roles": [],
        }
        path.write_text(json.dumps(record) + "\n")
        journal = OverlayJournal(path)
        with pytest.raises(SnapshotError, match="malformed"):
            journal.replay_into("alice", base.overlay())

    def test_compact_keeps_latest_per_tenant(self, base, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = OverlayJournal(path)
        overlay = base.overlay()
        for _ in range(5):
            overlay.clear_dynamic()
            overlay.assert_concept("Weekend", "alice", dynamic=True)
            journal.record("alice", overlay)
        journal.record("bob", overlay)
        assert journal.compact() == 2
        assert len(path.read_text().strip().splitlines()) == 2
        fresh = base.overlay()
        assert OverlayJournal(path).replay_into("alice", fresh)


class TestRegistryIntegration:
    def test_context_survives_registry_restart(self, tmp_path):
        path = tmp_path / "overlays.jsonl"
        registry = TenantRegistry(build_tvtouch(), journal=str(path))
        session = registry.session("alice")
        session.install_context("Weekend", "Breakfast")
        before = {i.document: i.score for i in session.rank().items}

        # A new registry over a fresh world build = a fleet restart.
        revived = TenantRegistry(build_tvtouch(), journal=str(path))
        again = revived.session("alice")
        after = {i.document: i.score for i in again.rank().items}
        assert set(after) == set(before)
        for document, score in before.items():
            assert abs(after[document] - score) <= 1e-9, document
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert abs(after[document] - expected) <= 1e-9, document

    def test_clear_context_is_journalled(self, tmp_path):
        path = tmp_path / "overlays.jsonl"
        registry = TenantRegistry(build_tvtouch(), journal=str(path))
        session = registry.session("alice")
        session.install_context("Weekend")
        session.clear_context()

        revived = TenantRegistry(build_tvtouch(), journal=str(path))
        again = revived.session("alice")
        assert not any(a.dynamic for a in again.overlay.overlay_assertions())

    def test_eviction_then_checkout_rehydrates(self, tmp_path):
        path = tmp_path / "overlays.jsonl"
        registry = TenantRegistry(build_tvtouch(), journal=str(path))
        session = registry.session("alice")
        session.install_context("Weekend", "Breakfast")
        registry.evict("alice")
        again = registry.session("alice")
        assert again is not session
        scores = {i.document: i.score for i in again.rank().items}
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert abs(scores[document] - expected) <= 1e-9, document

    def test_no_journal_means_no_files(self, tmp_path):
        registry = TenantRegistry(build_tvtouch())
        session = registry.session("alice")
        session.install_context("Weekend")
        assert list(tmp_path.iterdir()) == []
