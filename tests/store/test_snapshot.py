"""Snapshot round-trip identity, shared-memory mapping and corruption.

The store's correctness bar: a snapshot-loaded world must rank with
*identical* scores (≤ 1e-9) to a world built directly from source —
in-process, attached through shared memory, and in a genuinely fresh
interpreter — while any corruption or truncation is caught by the
digest and degrades to a rebuild, never to wrong answers.
"""

import os
import struct
import subprocess
import sys
from types import SimpleNamespace

import pytest

from repro.dl import ABox, TBox
from repro.errors import SnapshotError
from repro.events import EventSpace
from repro.rules import parse_rules
from repro.store import (
    SNAPSHOT_FORMAT_VERSION,
    inspect_snapshot,
    load_or_build,
    load_world,
    write_world_snapshot,
)
from repro.tenants import TenantRegistry
from repro.workloads import EXPECTED_TABLE1_SCORES, build_tvtouch

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def build_office_world():
    """A no-repository world (per-session rules, no relational mirror)."""
    space = EventSpace("office")
    abox = ABox()
    tbox = TBox()
    tbox.add_role_subsumption("hasMainTopic", "hasTopic")
    for topic in ("dl", "prob", "ranking"):
        abox.assert_concept("OwnTopic", f"topic_{topic}")
    for doc in ("paper_dl", "paper_prob", "dashboard", "newsletter"):
        abox.assert_concept("Reading", doc)
    abox.assert_concept("Dashboard", "dashboard")
    abox.assert_concept("Light", "newsletter")
    abox.assert_role("hasMainTopic", "paper_dl", "topic_dl")
    abox.assert_role(
        "hasTopic", "paper_dl", "topic_ranking", space.atom("t:dl:rank", 0.7)
    )
    abox.assert_role("hasMainTopic", "paper_prob", "topic_prob")
    abox.assert_role(
        "hasTopic", "paper_prob", "topic_dl", space.atom("t:prob:dl", 0.4)
    )
    return SimpleNamespace(abox=abox, tbox=tbox, space=space, target="Reading")


OFFICE_RULES = """
RULE deep1: WHEN DeepWork PREFER Reading AND ATLEAST 2 hasTopic.OwnTopic WITH 0.85
RULE meet1: WHEN InMeeting PREFER Reading AND Dashboard WITH 0.9
"""


def rank_alice(world_like) -> dict[str, float]:
    registry = TenantRegistry(world_like)
    session = registry.session("alice")
    session.install_context("Weekend", "Breakfast")
    return {item.document: item.score for item in session.rank().items}


class TestRoundTripIdentity:
    def test_tvtouch_scores_identical(self, tmp_path):
        path = tmp_path / "tv.snap"
        digest = write_world_snapshot(path, build_tvtouch())
        assert len(digest) == 64
        loaded = load_world(path, share_memory=False)
        assert loaded.source == "snapshot"
        scores = rank_alice(loaded)
        direct = rank_alice(build_tvtouch())
        assert set(scores) == set(direct)
        for document, expected in direct.items():
            assert abs(scores[document] - expected) <= 1e-9, document
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert abs(scores[document] - expected) <= 1e-9, document

    def test_tvtouch_shared_memory_scores_identical(self, tmp_path):
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        loaded = load_world(path, share_memory=True)
        try:
            if loaded.segment_name is None:
                pytest.skip("shared memory unavailable on this platform")
            assert loaded.source == "snapshot+shm"
            scores = rank_alice(loaded)
            for document, expected in EXPECTED_TABLE1_SCORES.items():
                assert abs(scores[document] - expected) <= 1e-9, document

            # A second load attaches to the first's segment — the
            # sibling-worker path — and must score identically too.
            attached = load_world(path, attach=loaded.segment_name)
            assert attached.source == "attach"
            attached_scores = rank_alice(attached)
            for document, expected in EXPECTED_TABLE1_SCORES.items():
                assert abs(attached_scores[document] - expected) <= 1e-9
        finally:
            loaded.release()

    def test_office_world_without_repository(self, tmp_path):
        path = tmp_path / "office.snap"
        write_world_snapshot(path, build_office_world())
        loaded = load_world(path)
        # No repository → no basis/matrix sections, no shared segment.
        assert loaded.segment_name is None

        def scores(world_like):
            registry = TenantRegistry(world_like)
            session = registry.session("eva", rules=parse_rules(OFFICE_RULES))
            session.install_context("DeepWork")
            return {item.document: item.score for item in session.rank().items}

        direct = scores(build_office_world())
        restored = scores(loaded)
        assert set(restored) == set(direct)
        for document, expected in direct.items():
            assert abs(restored[document] - expected) <= 1e-9, document

    def test_fresh_process_scores_identical(self, tmp_path):
        """The real cold-start: a new interpreter loads and ranks."""
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        probe = (
            "import json, sys\n"
            "from repro.store import load_world\n"
            "from repro.tenants import TenantRegistry\n"
            f"loaded = load_world({str(path)!r})\n"
            "registry = TenantRegistry(loaded)\n"
            "session = registry.session('alice')\n"
            "session.install_context('Weekend', 'Breakfast')\n"
            "scores = {i.document: i.score for i in session.rank().items}\n"
            "print(json.dumps({'source': loaded.source, 'scores': scores}))\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        import json

        body = json.loads(result.stdout.strip().splitlines()[-1])
        assert body["source"].startswith("snapshot")
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert abs(body["scores"][document] - expected) <= 1e-9, document


class TestInspection:
    def test_inspect_reports_header_and_sections(self, tmp_path):
        path = tmp_path / "tv.snap"
        digest = write_world_snapshot(path, build_tvtouch())
        info = inspect_snapshot(path)
        assert info.version == SNAPSHOT_FORMAT_VERSION
        assert info.digest == digest
        names = [name for name, _kind, _length in info.sections]
        for required in ("space", "tbox", "abox", "rules", "reasoner", "matrix"):
            assert required in names, names
        assert info.total_bytes > 0
        assert info.meta["target"] == "TvProgram"


class TestCorruption:
    def test_flipped_byte_fails_digest(self, tmp_path):
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="digest"):
            load_world(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError):
            load_world(path)

    def test_future_format_version_rejected(self, tmp_path):
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        raw = bytearray(path.read_bytes())
        raw[10:14] = struct.pack("<I", SNAPSHOT_FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="format version"):
            load_world(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = tmp_path / "tv.snap"
        path.write_bytes(b"definitely not a snapshot file at all")
        with pytest.raises(SnapshotError):
            load_world(path)

    def test_load_or_build_falls_back_to_rebuild(self, tmp_path):
        path = tmp_path / "tv.snap"
        write_world_snapshot(path, build_tvtouch())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        reasons = []
        world = load_or_build(path, build_tvtouch, on_fallback=reasons.append)
        assert world.source == "rebuild"
        assert reasons and "digest" in reasons[0]
        scores = rank_alice(world)
        for document, expected in EXPECTED_TABLE1_SCORES.items():
            assert abs(scores[document] - expected) <= 1e-9, document

    def test_load_or_build_missing_file_falls_back(self, tmp_path):
        world = load_or_build(tmp_path / "absent.snap", build_tvtouch)
        assert world.source == "rebuild"
