"""Engine-level tests for the compiled reasoner: sharing, diagnostics,
builder wiring, and cache invalidation composing with the PR 2
incremental-basis guard (no stale P(f) after ABox/TBox changes)."""

import pytest

from repro.engine import EngineBuilder, RankingEngine
from repro.errors import EngineConfigError
from repro.reason import CompiledKB
from repro.workloads import build_tvtouch, set_breakfast_weekend_context


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


def test_engine_exposes_reasoner_info(world):
    engine = RankingEngine.from_world(world)
    engine.rank()
    info = engine.reasoner_info()
    assert info.membership_misses > 0
    engine.invalidate_cache()
    engine.rank()
    # The second cold rank re-binds on the warm reasoner: hits accrue.
    assert engine.reasoner_info().membership_hits > info.membership_hits


def test_engines_over_one_world_share_their_kb(world):
    first = RankingEngine.from_world(world)
    second = RankingEngine.from_world(world)
    assert first.kb is second.kb
    assert first.as_member("a").scorer.kb is first.kb


def test_builder_accepts_explicit_reasoner(world):
    kb = CompiledKB(world.abox, world.tbox, world.space)
    engine = EngineBuilder().world(world).reasoner(kb).build()
    assert engine.kb is kb
    engine.rank()
    assert kb.info().membership_misses > 0


def test_builder_rejects_foreign_reasoner(world):
    other = build_tvtouch()
    kb = CompiledKB(other.abox, other.tbox, other.space)
    with pytest.raises(EngineConfigError, match="different"):
        EngineBuilder().world(world).reasoner(kb).build()
    with pytest.raises(EngineConfigError, match="CompiledKB"):
        EngineBuilder().world(world).reasoner("nope")


def test_static_mutation_invalidates_through_engine(world):
    """A catalogue change after caching must change scores (stale P(f)
    would keep the old ranking): reasoner epoch + view signature + the
    incremental-basis guard all move together."""
    engine = RankingEngine.from_world(world)
    before = engine.preference_scores()
    # MPFS gains the human-interest genre Peter's R1 prefers.
    world.abox.assert_role("hasGenre", "mpfs", "HUMAN-INTEREST")
    after = engine.preference_scores()
    assert after["mpfs"] > before["mpfs"]


def test_tbox_change_invalidates_through_engine(world):
    """A TBox axiom change leaves every ABox counter untouched, but the
    TBox revision is part of the reasoner epoch, the view signature and
    the basis key — so the next request serves fresh, correct scores,
    not a stale cached view over stale membership memos."""
    world.abox.assert_concept("SportsBulletinSubject", "SPORTS-BULLETIN")
    world.abox.assert_role("hasSubject", "mpfs", "SPORTS-BULLETIN")
    engine = RankingEngine.from_world(world)
    before = engine.preference_scores()
    reasoner_epoch = engine.kb.epoch()
    world.tbox.add_subsumption("SportsBulletinSubject", "NewsSubject")
    assert engine.kb.epoch() != reasoner_epoch
    after = engine.preference_scores()
    # R2 (news subjects at breakfast) now also fires for MPFS's sport
    # bulletin — stale membership memos would have kept the old score.
    assert after["mpfs"] > before["mpfs"]


def test_mutex_declaration_invalidates_through_engine(world):
    """Declaring a mutex group changes joint probabilities without any
    ABox mutation; EventSpace.revision is part of the view signature and
    basis key, so the cached view must not be served stale."""
    # MPFS has two independent reasons to carry the human-interest
    # genre (merged disjunctively into one preference event)...
    world.abox.assert_role(
        "hasGenre", "mpfs", "HUMAN-INTEREST", world.space.atom("g:mpfs:a", 0.5)
    )
    world.abox.assert_role(
        "hasGenre", "mpfs", "HUMAN-INTEREST", world.space.atom("g:mpfs:b", 0.4)
    )
    engine = RankingEngine.from_world(world)
    before = engine.preference_scores()
    # ...which become mutually exclusive: P(a OR b) rises from
    # 0.5 + 0.4 - 0.2 = 0.7 to 0.5 + 0.4 = 0.9, so the weekend rule's
    # factor — and the score — must move without any ABox mutation.
    world.space.declare_mutex("mpfs-genres", ["g:mpfs:a", "g:mpfs:b"])
    after = engine.preference_scores()
    assert after["mpfs"] > before["mpfs"]
    # Unaffected programs keep their scores.
    assert after["bbc_news"] == pytest.approx(before["bbc_news"])


def test_incremental_refresh_composes_with_reasoner(world):
    """Context-only changes still take the PR 2 incremental path (basis
    reuse) while the reasoner serves the rule re-bind from its memo —
    and a document-touching dynamic change still falls back cold."""
    engine = RankingEngine.from_world(world)
    engine.rank()
    set_breakfast_weekend_context(world, weekend_probability=0.6)
    engine.rank()
    info = engine.cache_info()
    assert info.context_refreshes >= 1
    # Dynamic assertion about a *document* must not reuse the basis.
    world.abox.assert_concept("Breakfast", "channel5_news", dynamic=True)
    refreshes = engine.cache_info().context_refreshes
    scores = engine.preference_scores()
    assert engine.cache_info().context_refreshes == refreshes
    assert set(scores)  # still a valid view
