"""Builder validation and config-driven construction."""

import json

import pytest

from repro.engine import (
    AboxContext,
    EngineBuilder,
    MixedRelevance,
    RankingEngine,
    RankRequest,
)
from repro.errors import EngineConfigError
from repro.workloads import build_tvtouch, set_breakfast_weekend_context

RULES_TEXT = (
    "RULE r1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8\n"
    "RULE r2: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9\n"
)


@pytest.fixture()
def world():
    world = build_tvtouch()
    set_breakfast_weekend_context(world)
    return world


class TestValidation:
    def test_missing_knowledge_base(self):
        with pytest.raises(EngineConfigError, match="knowledge base"):
            EngineBuilder().build()

    def test_missing_preferences(self, world):
        builder = EngineBuilder().knowledge(
            world.abox, world.tbox, world.user, world.space
        ).target("TvProgram")
        with pytest.raises(EngineConfigError, match="preference rules"):
            builder.build()

    def test_missing_target(self, world):
        builder = EngineBuilder().knowledge(
            world.abox, world.tbox, world.user, world.space
        ).preferences(world.repository)
        with pytest.raises(EngineConfigError, match="target concept"):
            builder.build()

    def test_unknown_method(self, world):
        with pytest.raises(EngineConfigError, match="scoring method"):
            EngineBuilder().world(world).method("quantum").build()

    def test_rule_threshold_out_of_range(self, world):
        with pytest.raises(EngineConfigError, match="rule_threshold"):
            EngineBuilder().world(world).rule_threshold(1.5).build()

    def test_bad_cache_size(self, world):
        with pytest.raises(EngineConfigError, match="cache_size"):
            EngineBuilder().world(world).cache_size(0).build()

    def test_unknown_relevance_name(self, world):
        with pytest.raises(EngineConfigError, match="unknown relevance strategy"):
            EngineBuilder().world(world).relevance("psychic").build()

    def test_bad_relevance_options(self, world):
        with pytest.raises(EngineConfigError, match="invalid options"):
            EngineBuilder().world(world).relevance("gated", mixing_weight=0.5).build()

    def test_mixing_weight_out_of_range(self, world):
        with pytest.raises(EngineConfigError, match="mixing weight"):
            EngineBuilder().world(world).relevance("mixed", mixing_weight=2.0).build()

    def test_bad_preferences_object(self, world):
        with pytest.raises(EngineConfigError, match="preferences"):
            EngineBuilder().world(world).preferences(object())

    def test_bad_context_backend(self, world):
        with pytest.raises(EngineConfigError, match="context backend"):
            EngineBuilder().world(world).context(object())

    def test_storage_without_data_table(self, world):
        with pytest.raises(EngineConfigError, match="data_table"):
            EngineBuilder().world(world).storage(world.database)

    def test_bad_storage_object(self, world):
        with pytest.raises(EngineConfigError, match="storage"):
            EngineBuilder().world(world).storage(object())

    def test_unknown_option(self, world):
        with pytest.raises(EngineConfigError, match="unknown engine option"):
            EngineBuilder().world(world).options(warp_speed=9)

    def test_world_without_knowledge(self):
        with pytest.raises(EngineConfigError, match="no 'abox'"):
            EngineBuilder().world(object())


class TestAssembly:
    def test_world_shortcut_wires_everything(self, world):
        engine = EngineBuilder().world(world).build()
        assert engine.storage is not None
        response = engine.rank(
            "SELECT id, preferencescore FROM Programs WHERE preferencescore > 0.5"
        )
        assert response.documents() == ["channel5_news"]

    def test_custom_context_backend(self, world):
        backend = AboxContext(world.abox, world.space)
        engine = EngineBuilder().world(world).context(backend).build()
        assert engine.context is backend

    def test_target_parses_strings(self, world):
        engine = (
            EngineBuilder()
            .knowledge(world.abox, world.tbox, world.user, world.space)
            .preferences(world.repository)
            .target("TvProgram")
            .build()
        )
        assert engine.rank().documents()[0] == "channel5_news"

    def test_options_keyword_driving(self, world):
        engine = (
            EngineBuilder()
            .world(world)
            .options(method="exact", cache_size=4, relevance=MixedRelevance(0.5))
            .build()
        )
        assert engine.method == "exact"
        assert engine.cache_info().max_entries == 4
        assert isinstance(engine.relevance, MixedRelevance)

    def test_builder_from_engine_classmethod(self):
        assert isinstance(RankingEngine.builder(), EngineBuilder)


class TestFromConfig:
    def test_mapping_config(self, tmp_path):
        rules = tmp_path / "rules.prefs"
        rules.write_text(RULES_TEXT, encoding="utf-8")
        engine = RankingEngine.from_config(
            {
                "workload": "tvtouch",
                "rules": str(rules),
                "context": ["Weekend", "Breakfast"],
                "method": "factorised",
            }
        )
        response = engine.rank(RankRequest(documents=["channel5_news"]))
        assert response.scores()["channel5_news"] == pytest.approx(0.6006, abs=1e-9)

    def test_json_file_config(self, tmp_path):
        config_path = tmp_path / "engine.json"
        config_path.write_text(
            json.dumps({"context": ["Weekend", "Breakfast"]}), encoding="utf-8"
        )
        engine = RankingEngine.from_config(config_path)
        assert engine.rank().documents()[0] == "channel5_news"

    def test_relevance_and_mixing_weight(self):
        engine = RankingEngine.from_config(
            {"relevance": "mixed", "mixing_weight": 0.25}
        )
        assert isinstance(engine.relevance, MixedRelevance)
        assert engine.relevance.mixing_weight == 0.25

    def test_unknown_key_rejected(self):
        with pytest.raises(EngineConfigError, match="unknown engine config keys"):
            RankingEngine.from_config({"warp": 9})

    def test_unknown_workload_rejected(self):
        with pytest.raises(EngineConfigError, match="workload"):
            RankingEngine.from_config({"workload": "netflix"})

    def test_bad_context_type_rejected(self):
        with pytest.raises(EngineConfigError, match="context"):
            RankingEngine.from_config({"context": "Weekend"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(EngineConfigError, match="cannot load"):
            RankingEngine.from_config(str(tmp_path / "nope.json"))

    def test_non_mapping_rejected(self):
        with pytest.raises(EngineConfigError, match="mapping"):
            RankingEngine.from_config(42)
