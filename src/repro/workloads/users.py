"""Synthetic user populations for the simulated user studies (E5, E7, E12).

Each synthetic user owns planted preference rules over the TVTouch-style
feature space.  For the ranking-quality experiment we simulate, per
trial, which programs the user would actually pick in a context (via
the generative sigma model) and measure how highly each ranker placed
them.

Populations are *profiles* (name + rules); to situate one over a world,
:func:`sessions_for_population` checks every user out of a
:class:`~repro.tenants.TenantRegistry` — each becomes a copy-on-write
overlay of the one shared base world, instead of the deep-copied
private world a naive per-user setup would pay for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.dl.concepts import atomic, one_of, some
from repro.history.episodes import Candidate
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.tenants import TenantRegistry, UserSession

__all__ = [
    "SyntheticUser",
    "generate_population",
    "sessions_for_population",
    "simulate_choice",
]


@dataclass(frozen=True)
class SyntheticUser:
    """A simulated user: a name and their ground-truth rules."""

    name: str
    repository: RuleRepository

    @property
    def rules(self) -> tuple[PreferenceRule, ...]:
        return self.repository.rules


def generate_population(
    contexts: list[str],
    genres: list[str],
    size: int = 10,
    rules_per_user: int = 3,
    seed: int = 31,
) -> list[SyntheticUser]:
    """Users with random (context, genre-preference, sigma) rules.

    Sigmas are drawn from (0.6, 0.95) — the users have real, learnable
    preferences; contexts and genres are drawn without replacement per
    user so one user's rules do not collide.
    """
    rng = random.Random(seed)
    population = []
    for index in range(size):
        repository = RuleRepository()
        user_contexts = rng.sample(contexts, k=min(rules_per_user, len(contexts)))
        user_genres = rng.sample(genres, k=min(rules_per_user, len(genres)))
        for rule_index, (context, genre) in enumerate(zip(user_contexts, user_genres)):
            repository.add(
                PreferenceRule(
                    f"u{index}r{rule_index}",
                    atomic(context),
                    atomic("TvProgram") & some("hasGenre", one_of(genre)),
                    round(rng.uniform(0.6, 0.95), 3),
                )
            )
        population.append(SyntheticUser(f"user_{index:03d}", repository))
    return population


def sessions_for_population(
    registry: "TenantRegistry",
    population: Iterable[SyntheticUser],
) -> dict[str, "UserSession"]:
    """Situate a synthetic population as tenants of one shared world.

    Every user is checked out of ``registry`` under their own name with
    their own planted rules: one overlay per user over the registry's
    frozen base — the multi-user experiments then cost O(population)
    overlays, not O(population) copies of the world.

    Examples
    --------
    >>> from repro.tenants import TenantRegistry
    >>> from repro.workloads import build_tvtouch
    >>> population = generate_population(["Weekend"], ["COMEDY"], size=2)
    >>> sessions = sessions_for_population(
    ...     TenantRegistry(build_tvtouch()), population)
    >>> sorted(sessions)
    ['user_000', 'user_001']
    """
    return {
        user.name: registry.session(user.name, rules=user.repository)
        for user in population
    }


def simulate_choice(
    user: SyntheticUser,
    active_contexts: set[str],
    slate: list[Candidate],
    rng: random.Random,
) -> set[str]:
    """One simulated choice round under the generative sigma model.

    A rule fires when its context key is active; a firing rule picks a
    random candidate carrying its preference key with probability sigma.
    Returns the chosen document ids (possibly empty, possibly several).
    """
    chosen: set[str] = set()
    for rule in user.rules:
        if rule.context_key not in active_contexts:
            continue
        offering = [c for c in slate if c.has(rule.preference_key)]
        if not offering:
            continue
        if rng.random() < rule.sigma:
            chosen.add(rng.choice(offering).doc_id)
    return chosen
