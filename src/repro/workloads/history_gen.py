"""Generative history sampling — choices driven by the sigma semantics.

The paper defines sigma *descriptively* over a user's history; for the
mining and ranking-quality experiments we need the *generative*
counterpart: simulate a user whose choices realise given sigmas, so the
estimator/miner can be tested against known ground truth.

The model per episode:

1. a context pattern (a set of context feature keys) is drawn;
2. a candidate slate is drawn from the catalogue;
3. independently for every planted rule whose context features all
   hold and whose preference feature is offered, a Bernoulli(sigma)
   draw decides whether the user picks a document with that feature
   (uniformly among the offering candidates) — group choices arise
   naturally when several rules fire (Section 3.2's "whole workday
   morning" case).

Under this model the availability-conditioned estimator of
:mod:`repro.history.sigma` is unbiased for each planted sigma
(when preference features do not overlap between rules).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import HistoryError
from repro.history.episodes import Candidate, Episode
from repro.history.log import HistoryLog
from repro.rules.rule import PreferenceRule

__all__ = ["PlantedRule", "ContextPattern", "sample_history", "sample_workday_mornings"]


@dataclass(frozen=True)
class PlantedRule:
    """A ground-truth rule at feature-key granularity."""

    context_feature: str
    preference_feature: str
    sigma: float

    @staticmethod
    def from_rule(rule: PreferenceRule) -> "PlantedRule":
        context_key, preference_key = rule.feature_pair
        return PlantedRule(context_key, preference_key, rule.sigma)


@dataclass(frozen=True)
class ContextPattern:
    """A recurring context with a sampling weight."""

    features: frozenset[str]
    weight: float = 1.0


def sample_history(
    rules: list[PlantedRule],
    catalogue: list[Candidate],
    patterns: list[ContextPattern],
    episodes: int,
    seed: int = 23,
    slate_size: int | None = None,
) -> HistoryLog:
    """Sample a history realising the planted sigmas.

    Parameters
    ----------
    rules:
        Ground truth (context feature, preference feature, sigma).
    catalogue:
        The document pool candidates are drawn from.
    patterns:
        Context patterns with weights (at least one).
    episodes:
        Number of episodes to sample.
    seed:
        RNG seed (the run is fully deterministic).
    slate_size:
        Candidates per episode (default: the whole catalogue).
    """
    if not patterns:
        raise HistoryError("sample_history needs at least one context pattern")
    if not catalogue:
        raise HistoryError("sample_history needs a non-empty catalogue")
    rng = random.Random(seed)
    weights = [pattern.weight for pattern in patterns]
    log = HistoryLog()
    for index in range(episodes):
        pattern = rng.choices(patterns, weights=weights, k=1)[0]
        if slate_size is None or slate_size >= len(catalogue):
            slate = list(catalogue)
        else:
            slate = rng.sample(catalogue, k=slate_size)
        chosen: set[str] = set()
        for rule in rules:
            if rule.context_feature not in pattern.features:
                continue
            offering = [c for c in slate if c.has(rule.preference_feature)]
            if not offering:
                continue
            if rng.random() < rule.sigma:
                chosen.add(rng.choice(offering).doc_id)
        log.record(
            Episode.build(
                context=pattern.features,
                candidates=slate,
                chosen=chosen,
                label=f"episode-{index:05d}",
            )
        )
    return log


def sample_workday_mornings(
    episodes: int = 200,
    traffic_sigma: float = 0.8,
    weather_sigma: float = 0.6,
    seed: int = 42,
) -> HistoryLog:
    """The Figure 1 workload: traffic 80 %, weather 60 % of mornings.

    Every episode offers a fresh traffic bulletin, a fresh weather
    bulletin and a movie; the user picks bulletins per the sigmas
    (possibly both — the paper's group choice).

    Examples
    --------
    >>> log = sample_workday_mornings(episodes=10, seed=1)
    >>> len(log)
    10
    """
    rules = [
        PlantedRule("WorkdayMorning", "TrafficBulletin", traffic_sigma),
        PlantedRule("WorkdayMorning", "WeatherBulletin", weather_sigma),
    ]
    catalogue = [
        Candidate.of("traffic_today", "TrafficBulletin"),
        Candidate.of("weather_today", "WeatherBulletin"),
        Candidate.of("some_movie", "Movie"),
    ]
    patterns = [ContextPattern(frozenset({"WorkdayMorning"}))]
    return sample_history(rules, catalogue, patterns, episodes, seed)
