"""The Section 5 test database: ~11,000 tuples, seeded and reproducible.

"We generated a test database of context and documents containing
around 11000 tuples; around 1000 persons, 300 TV programs, 12 genres,
6 subjects, 4 activities, 5 rooms and their relations."

:func:`generate_test_database` reproduces that census with a seeded
RNG.  Entities become concept assertions; relations become role
assertions; per-person location and activity carry uncertain events
(they are "dynamic context" in the paper's sense).  The focal user
(the first person) is the situated user the rule series of
:mod:`repro.workloads.rules_series` applies to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import Concept, atomic
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.storage.database import Database

__all__ = ["Section5Counts", "Section5World", "generate_test_database"]


@dataclass(frozen=True)
class Section5Counts:
    """Entity counts, defaulting to the paper's census."""

    persons: int = 1000
    programs: int = 300
    genres: int = 12
    subjects: int = 6
    activities: int = 4
    rooms: int = 5

    def scaled(self, factor: float) -> "Section5Counts":
        """A proportionally smaller census (for quick tests)."""
        return Section5Counts(
            persons=max(1, int(self.persons * factor)),
            programs=max(1, int(self.programs * factor)),
            genres=max(1, int(self.genres * factor)),
            subjects=max(1, int(self.subjects * factor)),
            activities=max(1, int(self.activities * factor)),
            rooms=max(1, int(self.rooms * factor)),
        )


@dataclass
class Section5World:
    """The generated world plus its census for reporting (E3b)."""

    space: EventSpace
    abox: ABox
    tbox: TBox
    database: Database
    user: Individual
    counts: Section5Counts
    genres: list[str] = field(default_factory=list)
    subjects: list[str] = field(default_factory=list)
    activities: list[str] = field(default_factory=list)
    rooms: list[str] = field(default_factory=list)
    programs: list[str] = field(default_factory=list)
    persons: list[str] = field(default_factory=list)
    target: Concept = field(default_factory=lambda: atomic("TvProgram"))

    def census(self) -> dict[str, int]:
        """Tuple counts by table kind (concept + role assertions)."""
        concept_rows: dict[str, int] = {}
        for assertion in self.abox.concept_assertions():
            key = f"concept {assertion.concept.name}"
            concept_rows[key] = concept_rows.get(key, 0) + 1
        for assertion in self.abox.role_assertions():
            key = f"role {assertion.role.name}"
            concept_rows[key] = concept_rows.get(key, 0) + 1
        concept_rows["TOTAL"] = len(self.abox)
        return concept_rows


def generate_test_database(
    seed: int = 7,
    counts: Section5Counts | None = None,
) -> Section5World:
    """Generate the Section 5 synthetic database.

    Deterministic for a fixed ``seed`` and ``counts``.

    Examples
    --------
    >>> world = generate_test_database(seed=1, counts=Section5Counts().scaled(0.01))
    >>> len(world.programs)
    3
    """
    counts = counts if counts is not None else Section5Counts()
    rng = random.Random(seed)
    space = EventSpace("section5")
    abox = ABox()
    tbox = TBox()

    genres = [f"genre_{index:02d}" for index in range(counts.genres)]
    subjects = [f"subject_{index:02d}" for index in range(counts.subjects)]
    activities = [f"activity_{index:02d}" for index in range(counts.activities)]
    rooms = [f"room_{index:02d}" for index in range(counts.rooms)]
    programs = [f"prog_{index:04d}" for index in range(counts.programs)]
    persons = [f"person_{index:04d}" for index in range(counts.persons)]

    for genre in genres:
        abox.assert_concept("Genre", genre)
    for subject in subjects:
        abox.assert_concept("Subject", subject)
    for activity in activities:
        abox.assert_concept("Activity", activity)
    for room in rooms:
        abox.assert_concept("Room", room)
    for program in programs:
        abox.assert_concept("TvProgram", program)
    for person in persons:
        abox.assert_concept("Person", person)

    # Program metadata: 1-3 genres, 0-2 subjects per program.
    for program in programs:
        for genre in rng.sample(genres, k=rng.randint(1, min(3, len(genres)))):
            abox.assert_role("hasGenre", program, genre)
        subject_count = rng.randint(0, min(2, len(subjects)))
        for subject in rng.sample(subjects, k=subject_count):
            abox.assert_role("hasSubject", program, subject)

    # Person relations: tastes, friendships, viewing history.
    for person in persons:
        for genre in rng.sample(genres, k=min(3, len(genres))):
            abox.assert_role("likes", person, genre)
        for friend in rng.sample(persons, k=min(2, len(persons))):
            if friend != person:
                abox.assert_role("friendsWith", person, friend)
        for program in rng.sample(programs, k=min(2, len(programs))):
            abox.assert_role("watched", person, program)

    # Dynamic context: one uncertain location and activity per person.
    for index, person in enumerate(persons):
        room = rooms[rng.randrange(len(rooms))]
        abox.assert_role(
            "locatedIn", person, room,
            space.atom(f"loc:{person}", round(rng.uniform(0.6, 0.99), 3)),
            dynamic=True,
        )
        activity = activities[rng.randrange(len(activities))]
        abox.assert_role(
            "doing", person, activity,
            space.atom(f"act:{person}", round(rng.uniform(0.6, 0.99), 3)),
            dynamic=True,
        )

    database = Database("section5")
    database.load_abox(abox)

    return Section5World(
        space=space,
        abox=abox,
        tbox=tbox,
        database=database,
        user=Individual(persons[0]),
        counts=counts,
        genres=genres,
        subjects=subjects,
        activities=activities,
        rooms=rooms,
        programs=programs,
        persons=persons,
    )
