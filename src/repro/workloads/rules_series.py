"""Rule series for the Section 5 scaling experiment.

"We created a series of rules on this test database where we measured
query times for an increasing number of rules."

:func:`install_context_series` gives the focal user ``k`` uncertain
context features; :func:`generate_rule_series` emits ``k`` rules whose
contexts are those features and whose preferences select programs by
genre — so every rule is *applicable* (context probability in (0, 1))
and *selective* (a real subset of the 300 programs matches), exactly
the situation whose cost the paper measures.
"""

from __future__ import annotations

import random

from repro.dl.concepts import atomic, one_of, some
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule
from repro.workloads.generator import Section5World

__all__ = ["install_context_series", "generate_rule_series"]


def install_context_series(world: Section5World, k: int, seed: int = 11) -> list[float]:
    """Assert ``k`` uncertain context concepts on the focal user.

    Context concept ``CtxScenario_i`` holds with a probability drawn
    from (0.55, 0.95); returns the probabilities.  Existing dynamic
    assertions of the focal user are left in place (they model the rest
    of the world), the scenario concepts are simply added.
    """
    rng = random.Random(seed)
    probabilities = []
    for index in range(k):
        probability = round(rng.uniform(0.55, 0.95), 3)
        probabilities.append(probability)
        world.abox.assert_concept(
            f"CtxScenario_{index:02d}",
            world.user,
            world.space.atom(f"ctx:{world.user.name}:{index}", probability),
            dynamic=True,
        )
    world.database.load_abox(world.abox, refresh=True)
    return probabilities


def generate_rule_series(world: Section5World, k: int, seed: int = 13) -> RuleRepository:
    """``k`` rules: WHEN CtxScenario_i PREFER TvProgram ⊓ ∃hasGenre.{g}.

    Genres cycle through the generated genre list, sigmas are drawn
    from (0.55, 0.95) — scores stay informative without saturating.
    """
    rng = random.Random(seed)
    repository = RuleRepository()
    for index in range(k):
        genre = world.genres[index % len(world.genres)]
        sigma = round(rng.uniform(0.55, 0.95), 3)
        repository.add(
            PreferenceRule(
                f"r{index + 1}",
                atomic(f"CtxScenario_{index:02d}"),
                atomic("TvProgram") & some("hasGenre", one_of(genre)),
                sigma,
            )
        )
    return repository
