"""Workloads and synthetic data (S11).

The TVTouch running example (Table 1 exactly), the Section 5 test
database generator, rule-series generation, history sampling from
ground-truth rules, and synthetic user populations.
"""

from repro.workloads.generator import Section5World, Section5Counts, generate_test_database
from repro.workloads.history_gen import (
    ContextPattern,
    PlantedRule,
    sample_history,
    sample_workday_mornings,
)
from repro.workloads.rules_series import generate_rule_series, install_context_series
from repro.workloads.traffic import (
    CONTEXT_MENUS,
    RetryPolicy,
    TrafficConfig,
    TrafficOutcome,
    TrafficReport,
    TrafficRequest,
    build_schedule,
    http_client,
    run_traffic,
    zipf_weights,
)
from repro.workloads.tvtouch import (
    EXPECTED_TABLE1_SCORES,
    PROGRAMS,
    TvTouchWorld,
    build_tvtouch,
    set_breakfast_weekend_context,
)
from repro.workloads.users import (
    SyntheticUser,
    generate_population,
    sessions_for_population,
    simulate_choice,
)

__all__ = [
    "CONTEXT_MENUS",
    "ContextPattern",
    "EXPECTED_TABLE1_SCORES",
    "PROGRAMS",
    "PlantedRule",
    "SyntheticUser",
    "Section5World",
    "Section5Counts",
    "RetryPolicy",
    "TrafficConfig",
    "TrafficOutcome",
    "TrafficReport",
    "TrafficRequest",
    "TvTouchWorld",
    "build_schedule",
    "build_tvtouch",
    "generate_population",
    "generate_rule_series",
    "generate_test_database",
    "install_context_series",
    "http_client",
    "run_traffic",
    "sample_history",
    "sample_workday_mornings",
    "sessions_for_population",
    "set_breakfast_weekend_context",
    "simulate_choice",
    "zipf_weights",
]
