"""The TVTouch running example — Table 1 and the Section 4.2 arithmetic.

Builds the paper's worked example exactly:

=============================  ==============  ===========  ================  ===========
program                        genre           P(genre)     subject           P(subject)
=============================  ==============  ===========  ================  ===========
Oprah                          human interest  0.85         —                 —
BBC news                       —               —            weather bulletin  1.0
Channel 5 news                 human interest  0.95         weather bulletin  0.85
Monty Python's Flying Circus   —               —            —                 —
=============================  ==============  ===========  ================  ===========

with Peter's two scored preference rules:

* R1: *when Weekend, prefer TvProgram ⊓ ∃hasGenre.{HUMAN-INTEREST}*, σ = 0.8;
* R2: *when Breakfast, prefer TvProgram ⊓ ∃hasSubject.NewsSubject*, σ = 0.9.

Modelling note (see DESIGN.md): in Section 4.2 the paper multiplies the
"weather bulletin" subject probabilities against R2's σ, i.e. a weather
bulletin subject *counts as news*.  We encode that taxonomically —
``WeatherBulletinSubject ⊑ NewsSubject`` in the TBox — so R2's
preference is written with a concept filler and matches through
subsumption, reproducing the paper's arithmetic exactly:
Channel 5 news = 0.6006, Oprah = 0.071, BBC news = 0.18, MPFS = 0.02
in a certain breakfast-during-the-weekend context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.expr import ALWAYS
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import Concept, atomic
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.rules.dsl import parse_rules
from repro.rules.repository import RuleRepository
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, Schema

__all__ = [
    "TvTouchWorld",
    "build_tvtouch",
    "set_breakfast_weekend_context",
    "EXPECTED_TABLE1_SCORES",
    "PROGRAMS",
]

#: Program ids and display names, in Table 1 order.
PROGRAMS: tuple[tuple[str, str], ...] = (
    ("oprah", "Oprah"),
    ("bbc_news", "BBC news"),
    ("channel5_news", "Channel 5 news"),
    ("mpfs", "Monty Python's Flying Circus"),
)

#: The Section 4.2 results, to reproduce to 1e-9.
EXPECTED_TABLE1_SCORES: dict[str, float] = {
    "channel5_news": 0.6006,
    "oprah": 0.071,
    "bbc_news": 0.18,
    "mpfs": 0.02,
}

RULES_TEXT = """
# Peter's scored preference rules (Section 4)
RULE r1: WHEN Weekend PREFER TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST} WITH 0.8
RULE r2: WHEN Breakfast PREFER TvProgram AND EXISTS hasSubject.NewsSubject WITH 0.9
"""


@dataclass
class TvTouchWorld:
    """The assembled TVTouch example: knowledge base, rules, database."""

    space: EventSpace
    abox: ABox
    tbox: TBox
    user: Individual
    repository: RuleRepository
    database: Database
    target: Concept
    #: The table user queries target and its document-id column — read
    #: by ``RankingEngine.from_world`` to wire the storage backend.
    data_table: str = "Programs"
    id_column: str = "id"

    @property
    def program_ids(self) -> list[str]:
        return [program_id for program_id, _name in PROGRAMS]


def build_tvtouch() -> TvTouchWorld:
    """Construct the full TVTouch example world (no context installed yet).

    Examples
    --------
    >>> world = build_tvtouch()
    >>> sorted(world.program_ids)
    ['bbc_news', 'channel5_news', 'mpfs', 'oprah']
    """
    space = EventSpace("tvtouch")
    abox = ABox()
    tbox = TBox()
    user = Individual("peter")
    abox.register_individual(user)

    # Subject taxonomy: weather bulletins count as news (Table 1 / §4.2).
    tbox.add_subsumption("NewsSubject", "Subject")
    tbox.add_subsumption("WeatherBulletinSubject", "NewsSubject")

    # Static program facts, Table 1.
    for program_id, _display_name in PROGRAMS:
        abox.assert_concept("TvProgram", program_id)
    abox.assert_concept("WeatherBulletinSubject", "WEATHER-BULLETIN")
    abox.assert_role("hasGenre", "oprah", "HUMAN-INTEREST", space.atom("genre:oprah:hi", 0.85))
    abox.assert_role("hasGenre", "channel5_news", "HUMAN-INTEREST", space.atom("genre:ch5:hi", 0.95))
    abox.assert_role("hasSubject", "bbc_news", "WEATHER-BULLETIN", ALWAYS)
    abox.assert_role("hasSubject", "channel5_news", "WEATHER-BULLETIN", space.atom("subject:ch5:weather", 0.85))

    repository = parse_rules(RULES_TEXT)

    database = Database("tvtouch")
    database.load_abox(abox)
    programs = database.create_table(
        "Programs",
        Schema([Column("id", ColumnType.TEXT), Column("name", ColumnType.TEXT)]),
    )
    for program_id, display_name in PROGRAMS:
        programs.insert((program_id, display_name))

    return TvTouchWorld(space, abox, tbox, user, repository, database, atomic("TvProgram"))


def set_breakfast_weekend_context(
    world: TvTouchWorld,
    weekend_probability: float = 1.0,
    breakfast_probability: float = 1.0,
    tick: str = "t1",
) -> None:
    """Install the Section 4.2 context (optionally uncertain).

    With both probabilities 1.0 this is the paper's certain
    "breakfast during the weekend"; lower values exercise the
    Section 3.3 sum over context feature vectors (experiment E8).
    """
    world.abox.clear_dynamic()
    weekend_event = (
        ALWAYS
        if weekend_probability >= 1.0
        else world.space.atom(f"ctx:{tick}:weekend", weekend_probability)
    )
    breakfast_event = (
        ALWAYS
        if breakfast_probability >= 1.0
        else world.space.atom(f"ctx:{tick}:breakfast", breakfast_probability)
    )
    world.abox.assert_concept("Weekend", world.user, weekend_event, dynamic=True)
    world.abox.assert_concept("Breakfast", world.user, breakfast_event, dynamic=True)
    world.database.load_abox(world.abox, refresh=True)
