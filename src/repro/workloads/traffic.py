"""Closed-loop traffic generation for the serving runtime (E13).

Models the paper's always-on tvtouch service the way production
suggestion services are load-tested (cf. merino-py's contract/load
harness): a fixed fleet of tenants with **Zipf-distributed
popularity** (a few hot users, a long cold tail — exactly what makes
LRU session pools and shared compiled bases earn their keep), a
**context-churn mix** (some requests carry a fresh context delta, the
rest rank under the standing context and should hit the view cache),
and **closed-loop workers**: each of ``concurrency`` workers issues
its next request only when the previous one answered, so measured
latency is real service latency, not queue-buildup artefacts.

The generator is target-agnostic — it drives anything shaped
``issue(TrafficRequest) -> object`` — so one schedule measures the
in-process pipeline and the HTTP gateway byte-for-byte identically
(``benchmarks/bench_e13_service.py`` does both).

Determinism: the whole request schedule is precomputed from ``seed``
and split across workers by stride, so two runs (or two targets) see
the same requests in the same per-worker order.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import EngineConfigError
from repro.service.metrics import percentile

__all__ = [
    "TrafficConfig",
    "TrafficRequest",
    "TrafficReport",
    "build_schedule",
    "run_traffic",
    "zipf_weights",
    "CONTEXT_MENUS",
]

#: Per-request context menus for the tvtouch fleet: certain, partial
#: and probabilistic variants (the Section 3.3 uncertain-context sum).
CONTEXT_MENUS: tuple[tuple[str, ...], ...] = (
    ("Weekend", "Breakfast"),
    ("Weekend",),
    ("Breakfast",),
    ("Weekend:0.7", "Breakfast:0.6"),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic traffic run.

    ``context_churn`` is the probability a request carries a fresh
    context delta (the rest rank under the tenant's standing context);
    ``zipf_exponent`` skews tenant popularity (1.0–1.3 are typical
    web-traffic shapes).
    """

    tenants: int = 100
    requests: int = 1000
    concurrency: int = 8
    zipf_exponent: float = 1.1
    context_churn: float = 0.5
    top_k: int | None = 3
    seed: int = 42

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.requests < 1 or self.concurrency < 1:
            raise EngineConfigError(
                "traffic needs positive tenants, requests and concurrency, got "
                f"tenants={self.tenants!r} requests={self.requests!r} "
                f"concurrency={self.concurrency!r}"
            )
        if not 0.0 <= self.context_churn <= 1.0:
            raise EngineConfigError(
                f"context_churn must be in [0, 1], got {self.context_churn!r}"
            )


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled request: who asks, under what context delta."""

    tenant: str
    context: tuple[str, ...] | None  # None = standing context (cache-friendly)
    top_k: int | None


@dataclass
class TrafficReport:
    """What a closed-loop run measured."""

    requests: int
    errors: int
    seconds: float
    concurrency: int
    latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else float("inf")

    def latency_ms(self, fraction: float) -> float:
        return percentile(sorted(self.latencies), fraction) * 1000.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "concurrency": self.concurrency,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_ms(0.50),
            "latency_p95_ms": self.latency_ms(0.95),
            "latency_p99_ms": self.latency_ms(0.99),
        }


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Unnormalised Zipf popularity weights for ranks 1..count."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def build_schedule(
    config: TrafficConfig,
    menus: Sequence[tuple[str, ...]] = CONTEXT_MENUS,
) -> list[TrafficRequest]:
    """The deterministic request schedule for ``config``.

    Tenant ids are drawn Zipf-weighted; each request flips a
    ``context_churn`` coin for whether it carries one of ``menus`` as
    its per-request context delta.
    """
    rng = random.Random(config.seed)
    tenant_ids = [f"tenant_{index:05d}" for index in range(config.tenants)]
    weights = zipf_weights(config.tenants, config.zipf_exponent)
    chosen = rng.choices(tenant_ids, weights=weights, k=config.requests)
    schedule = []
    for tenant in chosen:
        context: tuple[str, ...] | None = None
        if rng.random() < config.context_churn:
            context = menus[rng.randrange(len(menus))]
        schedule.append(TrafficRequest(tenant=tenant, context=context, top_k=config.top_k))
    return schedule


def run_traffic(
    issue: Callable[[TrafficRequest], object],
    config: TrafficConfig,
    schedule: Sequence[TrafficRequest] | None = None,
) -> TrafficReport:
    """Drive ``issue`` closed-loop from ``config.concurrency`` workers.

    Worker ``w`` owns every ``schedule[w::concurrency]`` request and
    issues them back-to-back; per-request wall latency is recorded, the
    run's wall time spans the first start to the last answer.  An
    ``issue`` call that raises counts as one error and the worker moves
    on — a load test should report a flaky target, not die on it.
    """
    if schedule is None:
        schedule = build_schedule(config)
    latencies_per_worker: list[list[float]] = [[] for _ in range(config.concurrency)]
    errors_per_worker = [0] * config.concurrency
    barrier = threading.Barrier(config.concurrency + 1)

    def worker(worker_id: int) -> None:
        slice_ = schedule[worker_id :: config.concurrency]
        latencies = latencies_per_worker[worker_id]
        barrier.wait()
        for request in slice_:
            start = time.perf_counter()
            try:
                issue(request)
            except Exception:  # noqa: BLE001 - count and continue
                errors_per_worker[worker_id] += 1
            latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=worker, args=(worker_id,), daemon=True)
        for worker_id in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started

    latencies = [sample for worker in latencies_per_worker for sample in worker]
    return TrafficReport(
        requests=len(latencies),
        errors=sum(errors_per_worker),
        seconds=seconds,
        concurrency=config.concurrency,
        latencies=latencies,
    )
