"""Closed-loop traffic generation for the serving runtime (E13).

Models the paper's always-on tvtouch service the way production
suggestion services are load-tested (cf. merino-py's contract/load
harness): a fixed fleet of tenants with **Zipf-distributed
popularity** (a few hot users, a long cold tail — exactly what makes
LRU session pools and shared compiled bases earn their keep), a
**context-churn mix** (some requests carry a fresh context delta, the
rest rank under the standing context and should hit the view cache),
and **closed-loop workers**: each of ``concurrency`` workers issues
its next request only when the previous one answered, so measured
latency is real service latency, not queue-buildup artefacts.

The generator is target-agnostic — it drives anything shaped
``issue(TrafficRequest) -> object`` — so one schedule measures the
in-process pipeline and the HTTP gateway byte-for-byte identically
(``benchmarks/bench_e13_service.py`` does both).

Determinism: the whole request schedule is precomputed from ``seed``
and split across workers by stride, so two runs (or two targets) see
the same requests in the same per-worker order.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException
from typing import Callable, Sequence
from urllib.parse import urlencode, urlsplit

from repro.errors import EngineConfigError
from repro.service.metrics import percentile

__all__ = [
    "TrafficConfig",
    "TrafficRequest",
    "TrafficReport",
    "TrafficOutcome",
    "RetryPolicy",
    "build_schedule",
    "http_client",
    "run_traffic",
    "zipf_weights",
    "CONTEXT_MENUS",
]

#: Per-request context menus for the tvtouch fleet: certain, partial
#: and probabilistic variants (the Section 3.3 uncertain-context sum).
CONTEXT_MENUS: tuple[tuple[str, ...], ...] = (
    ("Weekend", "Breakfast"),
    ("Weekend",),
    ("Breakfast",),
    ("Weekend:0.7", "Breakfast:0.6"),
)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one synthetic traffic run.

    ``context_churn`` is the probability a request carries a fresh
    context delta (the rest rank under the tenant's standing context);
    ``zipf_exponent`` skews tenant popularity (1.0–1.3 are typical
    web-traffic shapes).
    """

    tenants: int = 100
    requests: int = 1000
    concurrency: int = 8
    zipf_exponent: float = 1.1
    context_churn: float = 0.5
    top_k: int | None = 3
    seed: int = 42

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.requests < 1 or self.concurrency < 1:
            raise EngineConfigError(
                "traffic needs positive tenants, requests and concurrency, got "
                f"tenants={self.tenants!r} requests={self.requests!r} "
                f"concurrency={self.concurrency!r}"
            )
        if not 0.0 <= self.context_churn <= 1.0:
            raise EngineConfigError(
                f"context_churn must be in [0, 1], got {self.context_churn!r}"
            )


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled request: who asks, under what context delta."""

    tenant: str
    context: tuple[str, ...] | None  # None = standing context (cache-friendly)
    top_k: int | None


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side fault handling for :func:`http_client`.

    ``timeout`` bounds each HTTP attempt (socket-level, so a dead
    worker never hangs a load-test thread); transport errors and 5xx
    answers are retried up to ``retries`` times with exponential
    backoff (``backoff`` doubling, capped at ``backoff_max``) plus a
    proportional random jitter so retry storms decorrelate.  4xx
    answers are never retried — the request itself is wrong.
    """

    timeout: float = 5.0
    retries: int = 2
    backoff: float = 0.05
    backoff_max: float = 0.5
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.retries < 0:
            raise EngineConfigError(
                f"retry policy needs a positive timeout and retries >= 0, got "
                f"timeout={self.timeout!r} retries={self.retries!r}"
            )
        if self.backoff <= 0 or self.backoff_max < self.backoff or self.jitter < 0:
            raise EngineConfigError(
                "retry backoff must be positive, capped above itself, with "
                f"non-negative jitter, got {self.backoff!r}/"
                f"{self.backoff_max!r}/{self.jitter!r}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry ``attempt`` (1-based), jittered."""
        base = min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class TrafficOutcome:
    """What one :func:`http_client` request experienced, after retries."""

    ok: bool
    status: int = 200
    stale: bool = False
    cached: bool = False
    retries: int = 0
    timed_out: bool = False
    error: str | None = None
    body: dict | None = field(default=None, repr=False, compare=False)


@dataclass
class TrafficReport:
    """What a closed-loop run measured."""

    requests: int
    errors: int
    seconds: float
    concurrency: int
    latencies: list[float] = field(repr=False, default_factory=list)
    retries: int = 0
    stale: int = 0
    timeouts: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else float("inf")

    @property
    def availability(self) -> float:
        """Fraction of requests answered successfully (stale included —
        a degraded answer is still an answer; ``stale`` counts them
        separately)."""
        return (self.requests - self.errors) / self.requests if self.requests else 1.0

    def latency_ms(self, fraction: float) -> float:
        return percentile(sorted(self.latencies), fraction) * 1000.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "retries": self.retries,
            "stale": self.stale,
            "timeouts": self.timeouts,
            "availability": self.availability,
            "seconds": self.seconds,
            "concurrency": self.concurrency,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_ms(0.50),
            "latency_p95_ms": self.latency_ms(0.95),
            "latency_p99_ms": self.latency_ms(0.99),
        }


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Unnormalised Zipf popularity weights for ranks 1..count."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def build_schedule(
    config: TrafficConfig,
    menus: Sequence[tuple[str, ...]] = CONTEXT_MENUS,
) -> list[TrafficRequest]:
    """The deterministic request schedule for ``config``.

    Tenant ids are drawn Zipf-weighted; each request flips a
    ``context_churn`` coin for whether it carries one of ``menus`` as
    its per-request context delta.
    """
    rng = random.Random(config.seed)
    tenant_ids = [f"tenant_{index:05d}" for index in range(config.tenants)]
    weights = zipf_weights(config.tenants, config.zipf_exponent)
    chosen = rng.choices(tenant_ids, weights=weights, k=config.requests)
    schedule = []
    for tenant in chosen:
        context: tuple[str, ...] | None = None
        if rng.random() < config.context_churn:
            context = menus[rng.randrange(len(menus))]
        schedule.append(TrafficRequest(tenant=tenant, context=context, top_k=config.top_k))
    return schedule


def http_client(
    base_url: str,
    *,
    policy: RetryPolicy | None = None,
    seed: int = 0,
    extra_params: Sequence[tuple[str, str]] = (),
) -> Callable[[TrafficRequest], TrafficOutcome]:
    """A fault-tolerant ``issue`` callable driving a gateway over HTTP.

    Per *worker thread*: one keep-alive :class:`HTTPConnection` with a
    socket timeout (a SIGKILLed worker costs one timed-out attempt,
    never a hung load test) and one jittered-backoff RNG.  Transport
    errors and 5xx answers (overload 503, deadline 504, breaker sheds)
    are retried per ``policy``; the returned :class:`TrafficOutcome`
    records status, retries, timeout and the body's ``stale``/
    ``cached`` flags so :func:`run_traffic` can report client-side
    failure modes instead of hiding them in a single error count.
    """
    policy = policy if policy is not None else RetryPolicy()
    split = urlsplit(base_url)
    host, port = split.hostname, split.port
    local = threading.local()

    def _connection() -> HTTPConnection:
        conn = getattr(local, "conn", None)
        if conn is None:
            conn = HTTPConnection(host, port, timeout=policy.timeout)
            local.conn = conn
        return conn

    def _reset_connection() -> None:
        conn = getattr(local, "conn", None)
        if conn is not None:
            conn.close()
        local.conn = None

    def _rng() -> random.Random:
        rng = getattr(local, "rng", None)
        if rng is None:
            rng = random.Random(hash((seed, threading.get_ident())))
            local.rng = rng
        return rng

    def issue(request: TrafficRequest) -> TrafficOutcome:
        params: list[tuple[str, str]] = [("tenant", request.tenant)]
        if request.top_k is not None:
            params.append(("top_k", str(request.top_k)))
        if request.context is not None:
            params.extend(("context", spec) for spec in request.context)
        params.extend(extra_params)
        path = "/rank?" + urlencode(params)
        retries = 0
        timed_out = False
        last_error: str | None = None
        last_status = 0
        for attempt in range(policy.retries + 1):
            if attempt:
                retries += 1
                time.sleep(policy.delay(attempt, _rng()))
            try:
                conn = _connection()
                conn.request("GET", path)
                response = conn.getresponse()
                payload = response.read()
                last_status = response.status
            except (OSError, HTTPException) as exc:
                # Transport failure: the keep-alive connection may be
                # wedged mid-stream — drop it, reconnect on retry.
                _reset_connection()
                timed_out = timed_out or isinstance(exc, (socket.timeout, TimeoutError))
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if last_status >= 500:
                last_error = f"HTTP {last_status}"
                timed_out = timed_out or last_status == 504
                continue
            try:
                body = json.loads(payload) if payload else {}
            except ValueError:
                body = {}
            return TrafficOutcome(
                ok=last_status < 400,
                status=last_status,
                stale=bool(body.get("stale")),
                cached=bool(body.get("cached")),
                retries=retries,
                timed_out=timed_out,
                error=None if last_status < 400 else f"HTTP {last_status}",
                body=body,
            )
        return TrafficOutcome(
            ok=False,
            status=last_status,
            retries=retries,
            timed_out=timed_out,
            error=last_error,
        )

    return issue


def run_traffic(
    issue: Callable[[TrafficRequest], object],
    config: TrafficConfig,
    schedule: Sequence[TrafficRequest] | None = None,
) -> TrafficReport:
    """Drive ``issue`` closed-loop from ``config.concurrency`` workers.

    Worker ``w`` owns every ``schedule[w::concurrency]`` request and
    issues them back-to-back; per-request wall latency is recorded, the
    run's wall time spans the first start to the last answer.  An
    ``issue`` call that raises counts as one error and the worker moves
    on — a load test should report a flaky target, not die on it.
    """
    if schedule is None:
        schedule = build_schedule(config)
    latencies_per_worker: list[list[float]] = [[] for _ in range(config.concurrency)]
    # errors / retries / stale / timeouts per worker, no cross-thread
    # contention; a TrafficOutcome return feeds all four, any other
    # return value only the error count (exception = one error).
    tallies = [[0, 0, 0, 0] for _ in range(config.concurrency)]
    barrier = threading.Barrier(config.concurrency + 1)

    def worker(worker_id: int) -> None:
        slice_ = schedule[worker_id :: config.concurrency]
        latencies = latencies_per_worker[worker_id]
        tally = tallies[worker_id]
        barrier.wait()
        for request in slice_:
            start = time.perf_counter()
            try:
                result = issue(request)
            except Exception:  # noqa: BLE001 - count and continue
                tally[0] += 1
            else:
                if isinstance(result, TrafficOutcome):
                    if not result.ok:
                        tally[0] += 1
                    tally[1] += result.retries
                    tally[2] += 1 if result.stale else 0
                    tally[3] += 1 if result.timed_out else 0
            latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=worker, args=(worker_id,), daemon=True)
        for worker_id in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started

    latencies = [sample for worker in latencies_per_worker for sample in worker]
    return TrafficReport(
        requests=len(latencies),
        errors=sum(tally[0] for tally in tallies),
        seconds=seconds,
        concurrency=config.concurrency,
        latencies=latencies,
        retries=sum(tally[1] for tally in tallies),
        stale=sum(tally[2] for tally in tallies),
        timeouts=sum(tally[3] for tally in tallies),
    )
