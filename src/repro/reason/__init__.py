"""The compiled reasoning layer (S11).

Hash-consed events (:mod:`repro.events.expr`), epoch-guarded membership
and probability memos, and set-at-a-time evaluation behind one facade:
:class:`CompiledKB`.  The engine, the problem binder, instance
retrieval and multi-user group ranking all route through the shared
registry (:func:`compiled_kb`), so reasoning work over one world is
done once per knowledge epoch — not once per document, rule, member or
request.
"""

from repro.reason.kb import (
    CompiledKB,
    ReasonerInfo,
    ReasonerSession,
    base_tier,
    clear_registry,
    compiled_kb,
    query_session,
)

__all__ = [
    "CompiledKB",
    "ReasonerInfo",
    "ReasonerSession",
    "base_tier",
    "clear_registry",
    "compiled_kb",
    "query_session",
]
