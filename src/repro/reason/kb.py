"""The compiled knowledge-base reasoner: memoised membership & probability.

PR 2 made *scoring* a compiled one-pass kernel; this module does the
same for *reasoning*, the cold-path cost that remained: every
``membership_event`` call used to rebuild the event tree from scratch
and every ``probability`` call re-ran Shannon expansion, with zero
sharing across documents, rules, or requests.

A :class:`CompiledKB` wraps one knowledge base ``(ABox, TBox[,
EventSpace])`` and hands out :class:`ReasonerSession` objects pinned to
the KB's current *epoch*::

    epoch = (abox.mutation_count, tbox.revision, space.revision)

Within an epoch a session memoises

* **concept expansion** (TBox unfolding, once per concept),
* **sorted name/role closures** (once per name),
* the **role-successor index** (one pass over the role tables, then
  every ``∃R.C`` / ``∀R.C`` walk is a dict lookup instead of a
  full-table scan),
* **membership events** per ``(individual, concept)`` — including every
  recursive sub-concept, so filler events of shared targets (all
  programs pointing at the same genre individuals) are computed once
  for the whole candidate set,
* **probabilities** per ``(engine, event)``, with one shared
  :class:`~repro.events.shannon.ShannonEngine` whose memo spans all
  events of the epoch.

Any ABox assertion/retraction, TBox axiom, or new mutex group moves the
epoch, and the next :meth:`CompiledKB.session` call starts a fresh
session — invalidation by construction, the same discipline as the
engine's view cache.  Sessions subclass
:class:`repro.dl.instances.MembershipEvaluator`, so the *semantics* is
shared with the uncached reference path and cannot drift.

:func:`compiled_kb` is the shared registry: engines, the binder,
instance retrieval and multi-user group ranking over the same world all
receive the *same* ``CompiledKB``, so a context event reasoned for one
group member (or one request) is a memo hit for the next.

**Multi-tenant split.**  When the knowledge base is a
:class:`~repro.dl.abox.LayeredABox` — one shared static base plus a
per-user copy-on-write overlay — the caches split into two tiers.  The
**base tier** (:func:`base_tier`) is one ReasonerSession over the base
world, shared read-only across *every* overlay of that base and keyed
by the base epoch alone: concept expansions, closures, the
role-successor index, static membership events and probabilities (one
Shannon memo for the whole tenant fleet) are computed once, not once
per user.  The **overlay tier** is the per-``CompiledKB`` session,
keyed by the combined epoch as before, which answers locally only for
individuals the overlay can actually affect — everything an overlay
assertion touches, expanded to whatever can *reach* a touched
individual through role edges — and delegates the rest to the base
tier.  A new user session therefore costs O(overlay), not O(world).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterable

from repro.dl.abox import ABox, LayeredABox, RoleAssertion
from repro.dl.concepts import Concept
from repro.dl.instances import MembershipEvaluator
from repro.dl.tbox import TBox
from repro.dl.vocabulary import ConceptName, Individual, RoleName
from repro.events.expr import EventExpr
from repro.events.probability import DEFAULT_ENGINE, probability as engine_probability
from repro.events.shannon import ShannonEngine
from repro.events.space import EventSpace

__all__ = [
    "CompiledKB",
    "ReasonerSession",
    "ReasonerInfo",
    "base_tier",
    "compiled_kb",
    "query_session",
    "clear_registry",
]

#: Worlds kept alive by the shared registry (LRU beyond this bound).
MAX_REGISTRY_WORLDS = 8

#: Shared base-tier sessions kept alive (LRU beyond this bound).
MAX_BASE_TIERS = 8


class _ChainedMap:
    """Two adjacency maps read as one, without copying the big one.

    Base-tier reachability maps are O(world); an overlay adds a handful
    of edges.  Chaining serves ``get`` from both in O(1) so building an
    overlay session never copies the base maps.  Only the mapping
    surface the reachability walkers use (``get``) is provided.
    """

    __slots__ = ("below", "extra")

    def __init__(self, below, extra):
        self.below = below
        self.extra = extra

    def get(self, key, default=()):
        below = self.below.get(key)
        extra = self.extra.get(key)
        if extra is None:
            return below if below is not None else default
        if below is None:
            return extra
        return list(below) + list(extra)


@dataclass(frozen=True)
class ReasonerInfo:
    """Cache counters of a :class:`CompiledKB`, in the ``functools`` style.

    ``invalidations`` counts epoch moves that discarded a session;
    ``memo_events`` / ``memo_probabilities`` are current occupancy.
    """

    epoch: tuple
    membership_hits: int
    membership_misses: int
    probability_hits: int
    probability_misses: int
    memo_events: int
    memo_probabilities: int
    invalidations: int
    #: Membership events answered by the shared base tier (overlay KBs).
    base_events: int = 0
    #: Does this KB delegate to a shared base tier?
    shared_base: bool = False

    @property
    def membership_hit_rate(self) -> float:
        total = self.membership_hits + self.membership_misses
        return self.membership_hits / total if total else 0.0


class ReasonerSession(MembershipEvaluator):
    """A :class:`MembershipEvaluator` with per-epoch memo tables.

    Sessions are created by :meth:`CompiledKB.session` and are only
    valid for the epoch they were created at — the KB replaces them on
    any knowledge change.  All lookup hooks of the reference evaluator
    are overridden with caches; the semantics in ``_compute`` is
    inherited untouched.
    """

    def __init__(
        self,
        abox: ABox,
        tbox: TBox,
        space: EventSpace | None,
        epoch: tuple,
        base: "ReasonerSession | None" = None,
    ):
        super().__init__(abox, tbox)
        self.space = space
        self.epoch = epoch
        self.base = base
        self._expansions: dict[Concept, Concept] = {}
        self._descendants: dict[ConceptName, tuple[ConceptName, ...]] = {}
        self._role_descendants: dict[RoleName, tuple[RoleName, ...]] = {}
        self._adjacency: dict[RoleName, dict[Individual, tuple[RoleAssertion, ...]]] | None = None
        self._reachability: tuple[dict[str, list[str]], dict[str, list[str]]] | None = None
        self._affected: frozenset[str] | None = None
        self._events: dict[tuple[Individual, Concept], EventExpr] = {}
        self._probabilities: dict[tuple[str, EventExpr], float] = {}
        self._shannon = base._shannon if base is not None else ShannonEngine(space)
        self.membership_hits = 0
        self.membership_misses = 0
        self.probability_hits = 0
        self.probability_misses = 0
        self.base_events = 0

    # -- cached lookup hooks --------------------------------------------
    def expand_concept(self, concept: Concept) -> Concept:
        if self.base is not None:
            return self.base.expand_concept(concept)
        expanded = self._expansions.get(concept)
        if expanded is None:
            expanded = self.tbox.expand(concept)
            self._expansions[concept] = expanded
        return expanded

    def sorted_descendants(self, name: ConceptName) -> tuple[ConceptName, ...]:
        if self.base is not None:
            return self.base.sorted_descendants(name)
        names = self._descendants.get(name)
        if names is None:
            names = super().sorted_descendants(name)
            self._descendants[name] = names
        return names

    def sorted_role_descendants(self, role: RoleName) -> tuple[RoleName, ...]:
        if self.base is not None:
            return self.base.sorted_role_descendants(role)
        roles = self._role_descendants.get(role)
        if roles is None:
            roles = super().sorted_role_descendants(role)
            self._role_descendants[role] = roles
        return roles

    def role_successors(self, role: RoleName, individual: Individual) -> Iterable[RoleAssertion]:
        if self._adjacency is None:
            # For a LayeredABox this merges the base's cached index with
            # the overlay in O(roles + overlay) — see ABox.role_adjacency.
            self._adjacency = self.abox.role_adjacency()
        return self._adjacency.get(role, {}).get(individual, ())

    def reachability_maps(self) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
        """Role-blind ``(forward, reverse)`` name adjacency, cached per epoch.

        The incremental-rescoring guard (:mod:`repro.engine.basis`)
        walks reachability closures on every context-change check;
        serving both directions from the session keeps that check
        O(touched region) instead of re-scanning every role assertion
        per request.  Overlay sessions chain the base tier's maps with
        the overlay's few edges instead of re-scanning the world.
        """
        if self._reachability is None:
            if self.base is not None:
                base_forward, base_reverse = self.base.reachability_maps()
                forward_extra: dict[str, list[str]] = {}
                reverse_extra: dict[str, list[str]] = {}
                for assertion in self.abox.overlay_assertions():
                    if isinstance(assertion, RoleAssertion):
                        source, target = assertion.source.name, assertion.target.name
                        forward_extra.setdefault(source, []).append(target)
                        reverse_extra.setdefault(target, []).append(source)
                self._reachability = (
                    _ChainedMap(base_forward, forward_extra),
                    _ChainedMap(base_reverse, reverse_extra),
                )
            else:
                forward: dict[str, list[str]] = {}
                reverse: dict[str, list[str]] = {}
                for assertion in self.abox.role_assertions():
                    source, target = assertion.source.name, assertion.target.name
                    forward.setdefault(source, []).append(target)
                    reverse.setdefault(target, []).append(source)
                self._reachability = (forward, reverse)
        return self._reachability

    def affected_names(self) -> frozenset[str]:
        """Individuals whose membership events the overlay may change.

        The overlay's touched individuals plus everything that can
        *reach* one through role edges (their events can embed the
        changed facts).  Everything outside this set is answered by the
        shared base tier.  Empty for sessions without a base.
        """
        if self._affected is None:
            if self.base is None:
                self._affected = frozenset()
            else:
                touched = set(self.abox.overlay_names())
                _forward, reverse = self.reachability_maps()
                queue = deque(touched)
                while queue:
                    for neighbour in reverse.get(queue.popleft(), ()):
                        if neighbour not in touched:
                            touched.add(neighbour)
                            queue.append(neighbour)
                self._affected = frozenset(touched)
        return self._affected

    def event(self, individual: Individual, concept: Concept) -> EventExpr:
        if self.base is not None and individual.name not in self.affected_names():
            # The overlay provably cannot change this individual's
            # events: serve (and memoise) on the shared base tier.
            self.base_events += 1
            return self.base.event(individual, concept)
        key = (individual, concept)
        cached = self._events.get(key)
        if cached is not None:
            self.membership_hits += 1
            return cached
        self.membership_misses += 1
        result = self._compute(individual, concept)
        self._events[key] = result
        return result

    # -- probabilities ---------------------------------------------------
    def probability(self, event: EventExpr, engine: str = DEFAULT_ENGINE) -> float:
        """Probability of ``event``, memoised per ``(engine, event)``.

        The default Shannon path additionally shares one expansion memo
        across every event of the epoch, so repeated *sub*-expressions
        are solved once even on first sight of a new event.
        """
        if event.is_certain:
            return 1.0
        if event.is_impossible:
            return 0.0
        if self.base is not None:
            # One probability memo (and one Shannon sub-expression memo)
            # for the whole tenant fleet: probabilities depend only on
            # the event structure and the shared space, both of which
            # are pinned by the base tier's epoch.
            return self.base.probability(event, engine)
        key = (engine, event)
        cached = self._probabilities.get(key)
        if cached is not None:
            self.probability_hits += 1
            return cached
        self.probability_misses += 1
        if engine == "shannon":
            value = self._shannon.probability(event)
        else:
            value = engine_probability(event, self.space, engine)
        self._probabilities[key] = value
        return value

    def membership_probability(
        self,
        individual: str | Individual,
        concept: Concept,
        engine: str = DEFAULT_ENGINE,
    ) -> float:
        """Memoised ``P(individual ∈ concept)``."""
        return self.probability(self.membership_event(individual, concept), engine)

    # -- set-at-a-time retrieval ----------------------------------------
    def retrieve(self, concept: Concept) -> dict[Individual, EventExpr]:
        """Every individual with a non-impossible membership event.

        One traversal: the concept is expanded once and all individuals
        are evaluated against the shared memo, so role walks and filler
        events are computed once for the whole domain.
        """
        expanded = self.expand_concept(concept)
        result: dict[Individual, EventExpr] = {}
        for individual in sorted(self.abox.individuals, key=lambda ind: ind.name):
            event = self.event(individual, expanded)
            if not event.is_impossible:
                result[individual] = event
        return result

    def retrieve_probabilities(
        self, concept: Concept, engine: str = DEFAULT_ENGINE
    ) -> dict[Individual, float]:
        """Instance retrieval with probabilities instead of raw events."""
        return {
            individual: self.probability(event, engine)
            for individual, event in self.retrieve(concept).items()
        }


class CompiledKB:
    """One knowledge base, compiled: epoch-guarded reasoning caches.

    Construct directly for a private cache (benchmarks measuring cold
    binds do), or through :func:`compiled_kb` to share one instance —
    and its memo tables — across every engine, scorer and group member
    over the same world.

    Examples
    --------
    >>> from repro.workloads import build_tvtouch
    >>> world = build_tvtouch()
    >>> kb = CompiledKB(world.abox, world.tbox, world.space)
    >>> kb.membership_probability(world.user, world.target)
    0.0
    >>> kb.info().membership_misses > 0
    True
    """

    def __init__(self, abox: ABox, tbox: TBox, space: EventSpace | None = None):
        self.abox = abox
        self.tbox = tbox
        self.space = space
        self._session: ReasonerSession | None = None
        # session() is a check-then-swap on the live session; KBs for a
        # flat world are shared across engines (compiled_kb), so two
        # threads must not race the retire-and-replace sequence.
        self._session_lock = threading.Lock()
        self._invalidations = 0
        self._hits = 0
        self._misses = 0
        self._probability_hits = 0
        self._probability_misses = 0
        self._base_events = 0

    # -- epochs ----------------------------------------------------------
    def epoch(self) -> tuple:
        """The current knowledge epoch; any change invalidates sessions."""
        space_revision = self.space.revision if self.space is not None else -1
        return (self.abox.mutation_count, self.tbox.revision, space_revision)

    def session(self) -> ReasonerSession:
        """The memoised session for the *current* epoch.

        Reuses the live session while the knowledge is unchanged;
        builds a fresh one (dropping every memo) the moment the ABox,
        TBox or mutex structure moved.
        """
        epoch = self.epoch()
        session = self._session
        if session is not None and session.epoch == epoch:
            return session
        with self._session_lock:
            session = self._session
            if session is None or session.epoch != epoch:
                if session is not None:
                    self._retire(session)
                    self._invalidations += 1
                session = _make_session(self.abox, self.tbox, self.space, epoch)
                self._session = session
            return session

    def invalidate(self) -> None:
        """Drop the current session unconditionally (memos are rebuilt)."""
        with self._session_lock:
            if self._session is not None:
                self._retire(self._session)
                self._invalidations += 1
                self._session = None

    def _retire(self, session: ReasonerSession) -> None:
        self._hits += session.membership_hits
        self._misses += session.membership_misses
        self._probability_hits += session.probability_hits
        self._probability_misses += session.probability_misses
        self._base_events += session.base_events

    # -- delegating conveniences -----------------------------------------
    def membership_event(self, individual: str | Individual, concept: Concept) -> EventExpr:
        """Memoised membership event under the current epoch."""
        return self.session().membership_event(individual, concept)

    def membership_probability(
        self,
        individual: str | Individual,
        concept: Concept,
        engine: str = DEFAULT_ENGINE,
    ) -> float:
        """Memoised membership probability under the current epoch."""
        return self.session().membership_probability(individual, concept, engine)

    def probability(self, event: EventExpr, engine: str = DEFAULT_ENGINE) -> float:
        """Memoised event probability under the current epoch."""
        return self.session().probability(event, engine)

    def retrieve(self, concept: Concept) -> dict[Individual, EventExpr]:
        """Set-at-a-time instance retrieval under the current epoch."""
        return self.session().retrieve(concept)

    def retrieve_probabilities(
        self, concept: Concept, engine: str = DEFAULT_ENGINE
    ) -> dict[Individual, float]:
        """Set-at-a-time retrieval with probabilities."""
        return self.session().retrieve_probabilities(concept, engine)

    # -- diagnostics ------------------------------------------------------
    def info(self) -> ReasonerInfo:
        """Lifetime cache counters (current session included)."""
        session = self._session
        return ReasonerInfo(
            epoch=self.epoch(),
            membership_hits=self._hits + (session.membership_hits if session else 0),
            membership_misses=self._misses + (session.membership_misses if session else 0),
            probability_hits=self._probability_hits
            + (session.probability_hits if session else 0),
            probability_misses=self._probability_misses
            + (session.probability_misses if session else 0),
            memo_events=len(session._events) if session else 0,
            memo_probabilities=len(session._probabilities) if session else 0,
            invalidations=self._invalidations,
            base_events=self._base_events + (session.base_events if session else 0),
            shared_base=isinstance(self.abox, LayeredABox),
        )

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"CompiledKB(epoch={info.epoch}, events={info.memo_events}, "
            f"hits={info.membership_hits}, misses={info.membership_misses})"
        )


#: Shared base-tier sessions: one per (base world, TBox, space), keyed
#: by identity — valid while the entry lives, because the session holds
#: all three strongly.  Every overlay KB over the same base delegates
#: here, so the static world is reasoned once per base epoch for the
#: whole tenant fleet.
_BASE_TIERS: "OrderedDict[tuple, ReasonerSession]" = OrderedDict()
_BASE_TIERS_LOCK = threading.Lock()


def base_tier(
    abox: ABox, tbox: TBox, space: EventSpace | None = None
) -> ReasonerSession:
    """The shared read-only reasoner session over one static base world.

    Rebuilt only when the *base* epoch moves (which a frozen base never
    does); overlay epochs never invalidate it — that is the whole
    point.  Nested overlays chain: the base of a team overlay is itself
    served through its own base tier.  Lookup is thread-safe (tenant
    fleets check sessions out concurrently).
    """
    key = (id(abox), id(tbox), id(space))
    space_revision = space.revision if space is not None else -1
    epoch = (abox.mutation_count, tbox.revision, space_revision)
    with _BASE_TIERS_LOCK:
        session = _BASE_TIERS.get(key)
        if session is not None and session.epoch == epoch:
            _BASE_TIERS.move_to_end(key)
            return session
    session = _make_session(abox, tbox, space, epoch)
    with _BASE_TIERS_LOCK:
        # A losing racer adopts the winner's session: the whole fleet
        # must share one base-tier memo, not one per racing thread.
        existing = _BASE_TIERS.get(key)
        if existing is not None and existing.epoch == epoch:
            _BASE_TIERS.move_to_end(key)
            return existing
        _BASE_TIERS[key] = session
        _BASE_TIERS.move_to_end(key)
        while len(_BASE_TIERS) > MAX_BASE_TIERS:
            _BASE_TIERS.popitem(last=False)
    return session


def _make_session(
    abox: ABox, tbox: TBox, space: EventSpace | None, epoch: tuple
) -> ReasonerSession:
    """A session for ``abox``, wired to the shared base tier if layered."""
    base = base_tier(abox.base, tbox, space) if isinstance(abox, LayeredABox) else None
    return ReasonerSession(abox, tbox, space, epoch, base=base)


#: The shared registry: world identity -> the KBs compiled over it.
#: Keyed by ``id(abox)`` — valid while the entry lives, because the KB
#: holds the ABox strongly; a bounded LRU so long test runs with many
#: transient worlds do not accumulate them.  Guarded by a lock:
#: concurrent tenant mints register distinct overlay worlds, and the
#: multi-step get/insert/evict sequence must not interleave.
_REGISTRY: "OrderedDict[int, list[CompiledKB]]" = OrderedDict()
_REGISTRY_LOCK = threading.Lock()


def compiled_kb(abox: ABox, tbox: TBox, space: EventSpace | None = None) -> CompiledKB:
    """The shared :class:`CompiledKB` for a knowledge base.

    Engines, the binder and group ranking all call this, so reasoning
    over one world lands in one memo.  A KB's space is fixed at
    creation and matched by identity — ``space=None`` means
    independent-atom probability semantics and never aliases a KB that
    honours mutex groups (nor vice versa); each distinct space gets its
    own KB over the shared world entry.  Thread-safe: concurrent
    lookups of one world return the same ``CompiledKB`` object.
    """
    with _REGISTRY_LOCK:
        entries = _registry_entries(abox)
        for kb in entries:
            if kb.tbox is tbox and kb.space is space:
                return kb
        kb = CompiledKB(abox, tbox, space)
        entries.append(kb)
        return kb


def _registry_entries(abox: ABox) -> list[CompiledKB]:
    key = id(abox)
    entries = _REGISTRY.get(key)
    if entries is None:
        entries = []
        _REGISTRY[key] = entries
        while len(_REGISTRY) > MAX_REGISTRY_WORLDS:
            _REGISTRY.popitem(last=False)
    else:
        _REGISTRY.move_to_end(key)
    return entries


def query_session(
    abox: ABox,
    tbox: TBox,
    space: EventSpace | None = None,
    *,
    events_only: bool = False,
) -> ReasonerSession:
    """A memoised session for one-shot queries, with no side effects.

    Unlike :func:`compiled_kb` this never *registers* anything: a pure
    query (:func:`repro.dl.instances.retrieve`) over a world no engine
    holds gets a transient session that dies with the caller instead of
    pinning the ABox in the process-wide registry.  When a matching KB
    is already registered, its warm session is reused; ``events_only``
    relaxes the match to ignore the space (membership *events* are
    space-independent), so retrieval may piggyback on a spaced KB.
    """
    with _REGISTRY_LOCK:
        registered = list(_REGISTRY.get(id(abox), ()))
    for kb in registered:
        if kb.tbox is tbox and (events_only or kb.space is space):
            return kb.session()
    return CompiledKB(abox, tbox, space).session()


def clear_registry() -> None:
    """Forget every shared KB, base tier and pooled scoring basis
    (used by tests and long-lived processes).

    One documented cleanup entry point: the engine's cross-tenant
    basis pool pins base worlds through its keys, so it must drain
    together with the reasoning registries or a long-lived process
    that rebuilds worlds would leak them.
    """
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
    with _BASE_TIERS_LOCK:
        _BASE_TIERS.clear()
    # Imported lazily: repro.engine sits above this layer.
    from repro.engine.basis import shared_basis_pool

    shared_basis_pool().clear()
