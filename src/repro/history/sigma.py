"""The sigma score: the paper's probabilistic semantics for preferences.

Section 3.2: "the score function σ(g, f) is defined as the probability
that if we take a random context in history with feature g, the user
chose a document with feature f" — refined, for disjoint features, to
condition on the user having been *able* to choose an f-document:
"if we take a random context in history with feature g **and the user
was able to choose a document with feature f** given the other features
of the document, the user actually chose a document with feature f".

:func:`estimate_sigma` implements the refined (availability-
conditioned) estimator:

* denominator — episodes whose context has ``g`` and where at least one
  candidate carries ``f`` (the choice was possible);
* numerator — those episodes in which a *chosen* document carries ``f``.

This is exactly the semantics the generative history sampler
(:mod:`repro.workloads.history_gen`) uses, so mining recovers planted
sigmas in the limit — the paper's "legitimate question" in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HistoryError
from repro.history.log import HistoryLog

__all__ = ["SigmaEstimate", "estimate_sigma", "sigma_table"]


@dataclass(frozen=True)
class SigmaEstimate:
    """An empirical sigma with its supporting counts.

    ``numerator`` / ``denominator`` are episode counts; ``value`` is
    their ratio.  A zero denominator means the pair was never choosable
    in the log — ``value`` raises, use :attr:`defined` or
    :meth:`smoothed` instead.
    """

    context_feature: str
    document_feature: str
    numerator: int
    denominator: int

    @property
    def defined(self) -> bool:
        return self.denominator > 0

    @property
    def value(self) -> float:
        if not self.defined:
            raise HistoryError(
                f"sigma({self.context_feature!r}, {self.document_feature!r}) is undefined: "
                "the pair never co-occurred choosably in the history"
            )
        return self.numerator / self.denominator

    def smoothed(self, alpha: float = 1.0) -> float:
        """Laplace-smoothed value ``(n + α) / (d + 2α)`` (defined always)."""
        return (self.numerator + alpha) / (self.denominator + 2.0 * alpha)

    def __str__(self) -> str:
        shown = f"{self.value:.3f}" if self.defined else "undefined"
        return (
            f"sigma({self.context_feature}, {self.document_feature}) = {shown} "
            f"[{self.numerator}/{self.denominator}]"
        )


def estimate_sigma(log: HistoryLog, context_feature: str, document_feature: str) -> SigmaEstimate:
    """Estimate σ(g, f) from a history log (availability-conditioned).

    Examples
    --------
    >>> from repro.history import Candidate, Episode, HistoryLog
    >>> log = HistoryLog()
    >>> for i in range(4):
    ...     log.record(Episode.build(
    ...         context=["Morning"],
    ...         candidates=[Candidate.of("t", "traffic"), Candidate.of("w", "weather")],
    ...         chosen=["t"] if i < 3 else ["w"]))
    >>> estimate_sigma(log, "Morning", "traffic").value
    0.75
    """
    numerator = 0
    denominator = 0
    for episode in log.with_context(context_feature):
        if not episode.offered(document_feature):
            continue
        denominator += 1
        if episode.chose(document_feature):
            numerator += 1
    return SigmaEstimate(context_feature, document_feature, numerator, denominator)


def sigma_table(
    log: HistoryLog,
    min_support: int = 1,
) -> dict[tuple[str, str], SigmaEstimate]:
    """Estimate σ for every observed (g, f) pair — the mined relation H.

    Parameters
    ----------
    log:
        The history to mine.
    min_support:
        Keep only estimates whose denominator reaches this count.
    """
    if min_support < 1:
        raise HistoryError(f"min_support must be at least 1, got {min_support}")
    table: dict[tuple[str, str], SigmaEstimate] = {}
    for g, f in sorted(log.observed_pairs()):
        estimate = estimate_sigma(log, g, f)
        if estimate.denominator >= min_support:
            table[(g, f)] = estimate
    return table
