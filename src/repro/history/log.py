"""The history log: an append-only store of episodes.

Supports the queries the sigma estimator and the preference miner need
(filter by context feature, enumerate observed feature pairs) and a
JSON-lines serialisation so example scenarios can persist histories.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import HistoryError
from repro.history.episodes import Episode

__all__ = ["HistoryLog"]


class HistoryLog:
    """An ordered collection of :class:`~repro.history.episodes.Episode`.

    Examples
    --------
    >>> from repro.history import Candidate, Episode
    >>> log = HistoryLog()
    >>> log.record(Episode.build(
    ...     context=["Workday", "Morning"],
    ...     candidates=[Candidate.of("t1", "traffic"), Candidate.of("w1", "weather")],
    ...     chosen=["t1"]))
    >>> len(log)
    1
    """

    def __init__(self, episodes: Iterable[Episode] = ()):
        self._episodes: list[Episode] = []
        for episode in episodes:
            self.record(episode)

    def record(self, episode: Episode) -> None:
        if not isinstance(episode, Episode):
            raise HistoryError(f"can only record Episode objects, got {episode!r}")
        self._episodes.append(episode)

    def extend(self, episodes: Iterable[Episode]) -> None:
        for episode in episodes:
            self.record(episode)

    def __len__(self) -> int:
        return len(self._episodes)

    def __iter__(self) -> Iterator[Episode]:
        return iter(self._episodes)

    def __getitem__(self, index: int) -> Episode:
        return self._episodes[index]

    # -- queries ----------------------------------------------------------
    def with_context(self, feature: str) -> list[Episode]:
        """Episodes whose context carried the feature."""
        return [episode for episode in self._episodes if episode.has_context(feature)]

    def context_features(self) -> frozenset[str]:
        """Every context feature observed anywhere in the log."""
        features: set[str] = set()
        for episode in self._episodes:
            features.update(episode.context_features)
        return frozenset(features)

    def document_features(self) -> frozenset[str]:
        """Every document feature observed anywhere in the log."""
        features: set[str] = set()
        for episode in self._episodes:
            features.update(episode.document_features)
        return frozenset(features)

    def observed_pairs(self) -> frozenset[tuple[str, str]]:
        """All (context feature, document feature) pairs co-occurring.

        This is the support of the relation H that can be estimated
        from this log.
        """
        pairs: set[tuple[str, str]] = set()
        for episode in self._episodes:
            for g in episode.context_features:
                for f in episode.document_features:
                    pairs.add((g, f))
        return frozenset(pairs)

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Write the log as JSON lines; returns the episode count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for episode in self._episodes:
                handle.write(episode.to_json_line())
                handle.write("\n")
        return len(self._episodes)

    @staticmethod
    def load(path: str | Path) -> "HistoryLog":
        """Read a JSON-lines log written by :meth:`save`."""
        log = HistoryLog()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log.record(Episode.from_json_line(line))
        return log

    def __repr__(self) -> str:
        return f"HistoryLog(episodes={len(self._episodes)})"
