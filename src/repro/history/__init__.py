"""User history and the sigma semantics (S5).

Episodes record which document features were choosable and chosen in
which contexts (group choices included); the sigma estimator implements
the paper's availability-conditioned score semantics over the log.
"""

from repro.history.episodes import Candidate, Episode
from repro.history.log import HistoryLog
from repro.history.sigma import SigmaEstimate, estimate_sigma, sigma_table

__all__ = [
    "Candidate",
    "Episode",
    "HistoryLog",
    "SigmaEstimate",
    "estimate_sigma",
    "sigma_table",
]
