"""History episodes: what was choosable and what the user chose, when.

Section 3 defines the ideal document through the user's history: "a
relation H ('History'), which indicates which document features in the
past have been chosen in which context".  An :class:`Episode` is one
choice situation:

* the *context features* that held (e.g. ``{"Workday", "Morning"}``);
* the *candidates* the user could choose among, each with its document
  features;
* the *chosen* documents — possibly several, since "one should take the
  whole workday morning as one context where the user chose two
  documents" (Section 3.2).

Features are opaque string keys at this layer; the rule layer maps DL
concepts to keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import HistoryError

__all__ = ["Candidate", "Episode"]


@dataclass(frozen=True)
class Candidate:
    """A choosable document and its features."""

    doc_id: str
    features: frozenset[str] = frozenset()

    @staticmethod
    def of(doc_id: str, *features: str) -> "Candidate":
        return Candidate(doc_id, frozenset(features))

    def has(self, feature: str) -> bool:
        return feature in self.features

    def to_json(self) -> dict:
        return {"doc": self.doc_id, "features": sorted(self.features)}

    @staticmethod
    def from_json(data: dict) -> "Candidate":
        return Candidate(data["doc"], frozenset(data["features"]))


@dataclass(frozen=True)
class Episode:
    """One recorded choice situation.

    Raises
    ------
    HistoryError
        If a chosen id is not among the candidates, or ids repeat.
    """

    context_features: frozenset[str]
    candidates: tuple[Candidate, ...]
    chosen: frozenset[str] = frozenset()
    label: str = ""

    def __post_init__(self) -> None:
        ids = [candidate.doc_id for candidate in self.candidates]
        if len(set(ids)) != len(ids):
            raise HistoryError(f"duplicate candidate ids in episode {self.label!r}")
        missing = self.chosen - set(ids)
        if missing:
            raise HistoryError(
                f"chosen documents {sorted(missing)} are not candidates in episode {self.label!r}"
            )

    # -- feature queries ----------------------------------------------
    def has_context(self, feature: str) -> bool:
        return feature in self.context_features

    def offered(self, doc_feature: str) -> bool:
        """Was some candidate with this document feature available?"""
        return any(candidate.has(doc_feature) for candidate in self.candidates)

    def chose(self, doc_feature: str) -> bool:
        """Did a chosen document carry this feature?"""
        chosen_ids = self.chosen
        return any(
            candidate.has(doc_feature)
            for candidate in self.candidates
            if candidate.doc_id in chosen_ids
        )

    def chosen_candidates(self) -> tuple[Candidate, ...]:
        return tuple(c for c in self.candidates if c.doc_id in self.chosen)

    @property
    def document_features(self) -> frozenset[str]:
        """Every document feature appearing among the candidates."""
        if not self.candidates:
            return frozenset()
        return frozenset().union(*(candidate.features for candidate in self.candidates))

    # -- serialisation ----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "context": sorted(self.context_features),
            "candidates": [candidate.to_json() for candidate in self.candidates],
            "chosen": sorted(self.chosen),
            "label": self.label,
        }

    @staticmethod
    def from_json(data: dict) -> "Episode":
        return Episode(
            context_features=frozenset(data["context"]),
            candidates=tuple(Candidate.from_json(c) for c in data["candidates"]),
            chosen=frozenset(data["chosen"]),
            label=data.get("label", ""),
        )

    @staticmethod
    def build(
        context: Iterable[str],
        candidates: Iterable[Candidate],
        chosen: Iterable[str],
        label: str = "",
    ) -> "Episode":
        return Episode(frozenset(context), tuple(candidates), frozenset(chosen), label)

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @staticmethod
    def from_json_line(line: str) -> "Episode":
        return Episode.from_json(json.loads(line))
