"""Combining query-dependent and query-independent relevance.

Equation (3) of the paper factors document relevance into
``P(Q=q | D=d, U=u_sit) * P(D=d | U=u_sit)``.  The naive implementation
gates with a binary query-dependent part; Section 6 suggests exploring
"the weighting of the query-independent and query-dependent part [...]
using smoothing methods".  This module provides that weighting as a
log-linear mixture:

``score(d) = lambda * log P(q|d,u) + (1 - lambda) * log P(d|u)``

with ``lambda = 1`` pure IR and ``lambda = 0`` pure context.  Benchmark
E5 sweeps lambda against simulated users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["LOG_FLOOR", "CombinedScore", "combine_log_linear", "combined_ranking"]

#: Floor applied inside logs so impossible parts don't produce -inf
#: unless truly both-zero.  Public because the engine's batched
#: log-linear paths (repro.engine.relevance / repro.perf.flatops) must
#: share the exact same clamping semantics.
LOG_FLOOR = 1e-12

_EPSILON = LOG_FLOOR  # backwards-compatible alias


@dataclass(frozen=True)
class CombinedScore:
    """A document's mixed relevance with its two components."""

    doc_id: str
    combined: float
    query_dependent: float
    query_independent: float


def combine_log_linear(
    query_dependent: float,
    query_independent: float,
    mixing_weight: float,
) -> float:
    """Log-linear mixture of the two probabilities (returns log-space score)."""
    if not 0.0 <= mixing_weight <= 1.0:
        raise ReproError(f"mixing weight must be in [0, 1], got {mixing_weight!r}")
    qd = max(LOG_FLOOR, query_dependent)
    qi = max(LOG_FLOOR, query_independent)
    return mixing_weight * math.log(qd) + (1.0 - mixing_weight) * math.log(qi)


def combined_ranking(
    query_scores: dict[str, float],
    preference_scores: dict[str, float],
    mixing_weight: float = 0.5,
) -> list[CombinedScore]:
    """Rank the union of both score maps by the log-linear mixture.

    Documents missing from one map get that component's floor (they are
    penalised but not dropped — unlike the naive binary gate).
    """
    doc_ids = sorted(set(query_scores) | set(preference_scores))
    results = []
    for doc_id in doc_ids:
        qd = query_scores.get(doc_id, 0.0)
        qi = preference_scores.get(doc_id, 0.0)
        results.append(
            CombinedScore(doc_id, combine_log_linear(qd, qi, mixing_weight), qd, qi)
        )
    results.sort(key=lambda score: (-score.combined, score.doc_id))
    return results
