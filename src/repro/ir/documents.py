"""Term-based document collections for the traditional IR baseline.

Section 2 grounds the paper in the language-modelling approach of Ponte
& Croft (via Berger & Lafferty): documents are bags of terms, a query
is generated from the "ideal document", and documents are ranked by
query likelihood.  This module provides the minimal corpus machinery:
tokenisation, term counts, and collection statistics.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import ReproError

__all__ = ["tokenize", "Document", "Corpus"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case alphanumeric tokenisation.

    >>> tokenize("Channel 5 News: weather & traffic!")
    ['channel', '5', 'news', 'weather', 'traffic']
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class Document:
    """A document: an id plus its term counts."""

    doc_id: str
    terms: Mapping[str, int]

    @staticmethod
    def from_text(doc_id: str, text: str) -> "Document":
        return Document(doc_id, dict(Counter(tokenize(text))))

    @property
    def length(self) -> int:
        """Total token count."""
        return sum(self.terms.values())

    def count(self, term: str) -> int:
        return self.terms.get(term, 0)

    def __contains__(self, term: str) -> bool:
        return term in self.terms


class Corpus:
    """A collection of documents with aggregate statistics.

    Examples
    --------
    >>> corpus = Corpus()
    >>> corpus.add(Document.from_text("d1", "traffic bulletin morning"))
    >>> corpus.add(Document.from_text("d2", "weather bulletin"))
    >>> corpus.collection_probability("bulletin")
    0.4
    """

    def __init__(self, documents: Iterable[Document] = ()):
        self._documents: dict[str, Document] = {}
        self._collection_counts: Counter[str] = Counter()
        self._total_terms = 0
        for document in documents:
            self.add(document)

    def add(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise ReproError(f"document {document.doc_id!r} already in corpus")
        self._documents[document.doc_id] = document
        self._collection_counts.update(document.terms)
        self._total_terms += document.length

    def add_text(self, doc_id: str, text: str) -> Document:
        document = Document.from_text(doc_id, text)
        self.add(document)
        return document

    # -- access ---------------------------------------------------------
    def get(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError as exc:
            raise ReproError(f"no document {doc_id!r} in corpus") from exc

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    @property
    def doc_ids(self) -> tuple[str, ...]:
        return tuple(self._documents)

    # -- statistics -------------------------------------------------------
    @property
    def total_terms(self) -> int:
        return self._total_terms

    def collection_count(self, term: str) -> int:
        return self._collection_counts.get(term, 0)

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood term probability over the whole collection."""
        if self._total_terms == 0:
            return 0.0
        return self._collection_counts.get(term, 0) / self._total_terms

    @property
    def vocabulary(self) -> frozenset[str]:
        return frozenset(self._collection_counts)
