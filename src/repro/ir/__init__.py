"""Traditional IR baseline and evaluation machinery (S8).

Ponte–Croft query-likelihood retrieval with Jelinek–Mercer / Dirichlet /
Laplace smoothing, the equation-(3) score combination, and the ranking
metrics used by the simulated user studies.
"""

from repro.ir.combine import CombinedScore, combine_log_linear, combined_ranking
from repro.ir.documents import Corpus, Document, tokenize
from repro.ir.language_model import (
    Dirichlet,
    JelinekMercer,
    LanguageModelRanker,
    Laplace,
    QueryScore,
    Smoothing,
)
from repro.ir.metrics import (
    average_precision,
    dcg_at_k,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
    spearman_rho,
)

__all__ = [
    "CombinedScore",
    "Corpus",
    "Dirichlet",
    "Document",
    "JelinekMercer",
    "LanguageModelRanker",
    "Laplace",
    "QueryScore",
    "Smoothing",
    "average_precision",
    "combine_log_linear",
    "combined_ranking",
    "dcg_at_k",
    "kendall_tau",
    "ndcg_at_k",
    "precision_at_k",
    "reciprocal_rank",
    "spearman_rho",
    "tokenize",
]
