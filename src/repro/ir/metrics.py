"""Ranking-quality metrics for the simulated user studies (E5).

Section 6 calls for "conducting user studies" to evaluate the ranking;
the reproduction replaces humans with simulated users, and these
metrics quantify how well a ranking matches the simulated user's actual
choices: precision@k, MRR, average precision, NDCG@k, Kendall's tau and
Spearman's rho.

All implementations are self-contained (no scipy dependency), and the
correlation coefficients are cross-checked against scipy in the test
suite when scipy is available.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError

__all__ = [
    "precision_at_k",
    "reciprocal_rank",
    "average_precision",
    "dcg_at_k",
    "ndcg_at_k",
    "kendall_tau",
    "spearman_rho",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise ReproError(f"k must be at least 1, got {k}")


def precision_at_k(ranking: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of the top-k that is relevant."""
    _check_k(k)
    top = ranking[:k]
    if not top:
        return 0.0
    return sum(1 for doc in top if doc in relevant) / len(top)


def reciprocal_rank(ranking: Sequence[str], relevant: set[str]) -> float:
    """1 / rank of the first relevant document (0 if none)."""
    for position, doc in enumerate(ranking, start=1):
        if doc in relevant:
            return 1.0 / position
    return 0.0


def average_precision(ranking: Sequence[str], relevant: set[str]) -> float:
    """Mean of precision@hit over the relevant documents."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for position, doc in enumerate(ranking, start=1):
        if doc in relevant:
            hits += 1
            total += hits / position
    return total / len(relevant)


def dcg_at_k(ranking: Sequence[str], gains: Mapping[str, float], k: int) -> float:
    """Discounted cumulative gain with log2 position discounting."""
    _check_k(k)
    total = 0.0
    for position, doc in enumerate(ranking[:k], start=1):
        gain = gains.get(doc, 0.0)
        if gain:
            total += gain / math.log2(position + 1)
    return total


def ndcg_at_k(ranking: Sequence[str], gains: Mapping[str, float], k: int) -> float:
    """DCG normalised by the ideal ordering's DCG (0 when no gains)."""
    _check_k(k)
    ideal = sorted(gains, key=lambda doc: -gains[doc])
    ideal_dcg = dcg_at_k(ideal, gains, k)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg_at_k(ranking, gains, k) / ideal_dcg


def _ranks(values: Sequence[float]) -> list[float]:
    """Average ranks (1-based) with tie handling."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    index = 0
    while index < len(order):
        tied_end = index
        while (
            tied_end + 1 < len(order)
            and values[order[tied_end + 1]] == values[order[index]]
        ):
            tied_end += 1
        average_rank = (index + tied_end) / 2.0 + 1.0
        for position in range(index, tied_end + 1):
            ranks[order[position]] = average_rank
        index = tied_end + 1
    return ranks


def kendall_tau(first: Sequence[float], second: Sequence[float]) -> float:
    """Kendall's tau-b between two paired score vectors.

    Returns values in ``[-1, 1]``; 1 means identical orderings.
    """
    if len(first) != len(second):
        raise ReproError("kendall_tau requires vectors of equal length")
    n = len(first)
    if n < 2:
        raise ReproError("kendall_tau requires at least two items")
    concordant = discordant = 0
    ties_first = ties_second = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = first[i] - first[j]
            b = second[i] - second[j]
            if a == 0 and b == 0:
                ties_first += 1
                ties_second += 1
            elif a == 0:
                ties_first += 1
            elif b == 0:
                ties_second += 1
            elif (a > 0) == (b > 0):
                concordant += 1
            else:
                discordant += 1
    pairs = n * (n - 1) / 2.0
    denominator = math.sqrt((pairs - ties_first) * (pairs - ties_second))
    if denominator == 0.0:
        return 0.0
    return (concordant - discordant) / denominator


def spearman_rho(first: Sequence[float], second: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over average ranks)."""
    if len(first) != len(second):
        raise ReproError("spearman_rho requires vectors of equal length")
    n = len(first)
    if n < 2:
        raise ReproError("spearman_rho requires at least two items")
    ranks_first = _ranks(first)
    ranks_second = _ranks(second)
    mean_first = sum(ranks_first) / n
    mean_second = sum(ranks_second) / n
    covariance = sum(
        (a - mean_first) * (b - mean_second) for a, b in zip(ranks_first, ranks_second)
    )
    variance_first = sum((a - mean_first) ** 2 for a in ranks_first)
    variance_second = sum((b - mean_second) ** 2 for b in ranks_second)
    denominator = math.sqrt(variance_first * variance_second)
    if denominator == 0.0:
        return 0.0
    return covariance / denominator
