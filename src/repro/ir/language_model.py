"""Query-likelihood retrieval: Ponte & Croft with standard smoothing.

Section 2.2 reduces ranking to ``P(Q=q | D=d, U=u) = prod over query
features f of P(f in F(d))`` under feature independence; for text, the
features are terms and ``P(.|d)`` is the document language model.  The
query-likelihood ranker here supports the classical smoothing methods
(the paper's Section 6 points at "smoothing methods" for weighting):

* **Jelinek–Mercer**: ``(1-λ)·P_ml(t|d) + λ·P(t|C)``;
* **Dirichlet**: ``(count + μ·P(t|C)) / (|d| + μ)``;
* **Laplace**: ``(count + α) / (|d| + α·|V|)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.ir.documents import Corpus, Document, tokenize

__all__ = [
    "Smoothing",
    "JelinekMercer",
    "Dirichlet",
    "Laplace",
    "LanguageModelRanker",
    "QueryScore",
]


class Smoothing:
    """Strategy interface: smoothed ``P(term | document)``."""

    def probability(self, corpus: Corpus, document: Document, term: str) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class JelinekMercer(Smoothing):
    """Linear interpolation with the collection model."""

    interpolation: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.interpolation <= 1.0:
            raise ReproError(f"interpolation must be in [0, 1], got {self.interpolation!r}")

    def probability(self, corpus: Corpus, document: Document, term: str) -> float:
        maximum_likelihood = document.count(term) / document.length if document.length else 0.0
        collection = corpus.collection_probability(term)
        return (1.0 - self.interpolation) * maximum_likelihood + self.interpolation * collection


@dataclass(frozen=True)
class Dirichlet(Smoothing):
    """Bayesian smoothing with a Dirichlet prior of mass ``mu``."""

    mu: float = 2000.0

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ReproError(f"mu must be positive, got {self.mu!r}")

    def probability(self, corpus: Corpus, document: Document, term: str) -> float:
        collection = corpus.collection_probability(term)
        return (document.count(term) + self.mu * collection) / (document.length + self.mu)


@dataclass(frozen=True)
class Laplace(Smoothing):
    """Add-``alpha`` smoothing over the corpus vocabulary."""

    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ReproError(f"alpha must be positive, got {self.alpha!r}")

    def probability(self, corpus: Corpus, document: Document, term: str) -> float:
        vocabulary_size = max(1, len(corpus.vocabulary))
        return (document.count(term) + self.alpha) / (
            document.length + self.alpha * vocabulary_size
        )


@dataclass(frozen=True)
class QueryScore:
    """A document's query likelihood (log and linear)."""

    doc_id: str
    log_likelihood: float

    @property
    def likelihood(self) -> float:
        return math.exp(self.log_likelihood)


class LanguageModelRanker:
    """Ranks corpus documents by smoothed query likelihood.

    Examples
    --------
    >>> corpus = Corpus()
    >>> _ = corpus.add_text("traffic", "traffic bulletin roads accidents")
    >>> _ = corpus.add_text("cooking", "recipes kitchen baking")
    >>> ranker = LanguageModelRanker(corpus)
    >>> ranker.rank("traffic roads")[0].doc_id
    'traffic'
    """

    def __init__(self, corpus: Corpus, smoothing: Smoothing | None = None):
        self.corpus = corpus
        self.smoothing = smoothing if smoothing is not None else JelinekMercer(0.1)

    def log_likelihood(self, query: str, doc_id: str) -> float:
        """``log P(q | d)`` under the smoothed document model."""
        document = self.corpus.get(doc_id)
        total = 0.0
        for term in tokenize(query):
            p = self.smoothing.probability(self.corpus, document, term)
            if p <= 0.0:
                return -math.inf
            total += math.log(p)
        return total

    def score_all(self, query: str) -> dict[str, float]:
        """Linear-space query likelihood for every document."""
        return {
            doc_id: math.exp(self.log_likelihood(query, doc_id))
            for doc_id in self.corpus.doc_ids
        }

    def rank(self, query: str, limit: int | None = None) -> list[QueryScore]:
        """Documents by decreasing query likelihood."""
        scores = [
            QueryScore(doc_id, self.log_likelihood(query, doc_id))
            for doc_id in self.corpus.doc_ids
        ]
        scores.sort(key=lambda s: (-s.log_likelihood, s.doc_id))
        return scores[:limit] if limit is not None else scores
