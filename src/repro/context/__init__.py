"""Context management substrate (S4).

Simulated sensors produce uncertain measurements (value, probability,
basic event); snapshots replace the dynamic part of the ABox; the
context manager mirrors everything into relational tables so that
virtual preference views always reflect the newest context.
"""

from repro.context.clock import PART_OF_DAY_HOURS, SimClock
from repro.context.derived import define_activity_conjunction, define_context, define_location_concept
from repro.context.manager import ContextManager
from repro.context.model import (
    ConceptMeasurement,
    ContextSnapshot,
    Measurement,
    RoleMeasurement,
    SituatedUser,
)
from repro.context.sensors import (
    ActivitySensor,
    CalendarSensor,
    CompanionSensor,
    GroundTruth,
    LocationSensor,
    Sensor,
)

__all__ = [
    "ActivitySensor",
    "CalendarSensor",
    "CompanionSensor",
    "ConceptMeasurement",
    "ContextManager",
    "ContextSnapshot",
    "GroundTruth",
    "LocationSensor",
    "Measurement",
    "PART_OF_DAY_HOURS",
    "RoleMeasurement",
    "Sensor",
    "SimClock",
    "SituatedUser",
    "define_activity_conjunction",
    "define_context",
    "define_location_concept",
]
