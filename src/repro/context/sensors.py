"""Simulated sensors producing uncertain measurements.

The paper's context information "results from sensors and is therefore
uncertain".  With no hardware in a reproduction, each sensor here reads
a *ground truth* (what is actually the case in the simulated world) and
emits noisy measurements: a distribution over values in which the true
value receives the sensor's accuracy and the remaining mass spreads
over confusable alternatives.  Mutually exclusive value families
(location, activity) register their per-tick measurements as a mutex
group in the event space — "a person can only be at a single place at
one moment".

Determinism: sensors draw nothing at read time; noise is a fixed
confusion model, so a scenario's event space is identical across runs.
Stochastic *scenarios* (which ground truths occur) belong to the
workload generators, which take explicit seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ContextError
from repro.events.space import EventSpace
from repro.dl.vocabulary import ConceptName, Individual, RoleName
from repro.context.clock import SimClock
from repro.context.model import ConceptMeasurement, Measurement, RoleMeasurement

__all__ = [
    "GroundTruth",
    "Sensor",
    "CalendarSensor",
    "LocationSensor",
    "ActivitySensor",
    "CompanionSensor",
]


@dataclass
class GroundTruth:
    """What is actually the case in the simulated world at one instant."""

    location: str | None = None
    activity: str | None = None
    companions: tuple[str, ...] = ()


@dataclass
class Sensor:
    """Base class: reads the world, emits measurements for one user."""

    user: Individual
    name: str = "sensor"

    def read(
        self,
        clock: SimClock,
        truth: GroundTruth,
        space: EventSpace,
        tick: str,
    ) -> list[Measurement]:
        raise NotImplementedError


@dataclass
class CalendarSensor(Sensor):
    """Emits the certain calendar concepts (Weekend/Workday, part of day)."""

    name: str = "calendar"

    def read(self, clock: SimClock, truth: GroundTruth, space: EventSpace, tick: str) -> list[Measurement]:
        measurements: list[Measurement] = []
        for concept in clock.calendar_concepts:
            event = space.atom(f"{self.name}:{tick}:{concept}", 1.0)
            measurements.append(
                ConceptMeasurement(ConceptName(concept), self.user, 1.0, event, self.name)
            )
        return measurements


def _confusion(values: Sequence[str], true_value: str, accuracy: float) -> dict[str, float]:
    """True value gets ``accuracy``; the rest share the remainder."""
    if true_value not in values:
        raise ContextError(f"ground truth {true_value!r} not among sensor values {list(values)}")
    if not 0.0 < accuracy <= 1.0:
        raise ContextError(f"sensor accuracy must be in (0, 1], got {accuracy!r}")
    others = [value for value in values if value != true_value]
    if not others:
        return {true_value: accuracy}
    residual = (1.0 - accuracy) / len(others)
    distribution = {value: residual for value in others}
    distribution[true_value] = accuracy
    return {value: p for value, p in distribution.items() if p > 0.0}


@dataclass
class LocationSensor(Sensor):
    """Senses ``locatedIn(user, room)`` over a fixed set of rooms."""

    rooms: tuple[str, ...] = ()
    accuracy: float = 0.9
    role: str = "locatedIn"
    name: str = "location"

    def read(self, clock: SimClock, truth: GroundTruth, space: EventSpace, tick: str) -> list[Measurement]:
        if truth.location is None:
            return []
        distribution = _confusion(self.rooms, truth.location, self.accuracy)
        atoms = space.mutex_choice(
            f"{self.name}:{tick}",
            distribution,
            prefix=f"{self.name}:{tick}:",
        ) if len(distribution) > 1 else {
            value: space.atom(f"{self.name}:{tick}:{value}", p) for value, p in distribution.items()
        }
        measurements: list[Measurement] = []
        for room, probability in sorted(distribution.items()):
            measurements.append(
                RoleMeasurement(
                    RoleName(self.role),
                    self.user,
                    Individual(room),
                    probability,
                    atoms[room],
                    self.name,
                )
            )
        return measurements


@dataclass
class ActivitySensor(Sensor):
    """Senses the user's activity as mutually exclusive concepts."""

    activities: tuple[str, ...] = ()
    accuracy: float = 0.85
    name: str = "activity"

    def read(self, clock: SimClock, truth: GroundTruth, space: EventSpace, tick: str) -> list[Measurement]:
        if truth.activity is None:
            return []
        distribution = _confusion(self.activities, truth.activity, self.accuracy)
        atoms = space.mutex_choice(
            f"{self.name}:{tick}",
            distribution,
            prefix=f"{self.name}:{tick}:",
        ) if len(distribution) > 1 else {
            value: space.atom(f"{self.name}:{tick}:{value}", p) for value, p in distribution.items()
        }
        measurements: list[Measurement] = []
        for activity, probability in sorted(distribution.items()):
            measurements.append(
                ConceptMeasurement(
                    ConceptName(activity), self.user, probability, atoms[activity], self.name
                )
            )
        return measurements


@dataclass
class CompanionSensor(Sensor):
    """Senses which other persons are with the user (independent facts)."""

    detection_probability: float = 0.95
    role: str = "isWith"
    name: str = "companions"

    def read(self, clock: SimClock, truth: GroundTruth, space: EventSpace, tick: str) -> list[Measurement]:
        measurements: list[Measurement] = []
        for companion in truth.companions:
            event = space.atom(
                f"{self.name}:{tick}:{companion}", self.detection_probability
            )
            measurements.append(
                RoleMeasurement(
                    RoleName(self.role),
                    self.user,
                    Individual(companion),
                    self.detection_probability,
                    event,
                    self.name,
                )
            )
        return measurements
