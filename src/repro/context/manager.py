"""The context manager: sensors -> snapshot -> ABox -> database tables.

Ties the context pipeline together.  On every :meth:`refresh` the
manager reads all sensors against the current ground truth, replaces
the ABox's dynamic assertions with the new snapshot, and (when a
database is attached) re-materialises the concept/role tables — the
paper's "uniform tabular view towards both static and dynamic
contexts", where dynamic context "must be acquired real-time from
external sources/services like sensor networks".

Because views over the database are virtual, every preference view
automatically reflects the newest context after a refresh, which is the
behaviour Section 5 highlights: "as the current context develops, the
probabilities of containment of tuples in the view changes
accordingly".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import Concept
from repro.dl.instances import membership_event, membership_probability
from repro.dl.tbox import TBox
from repro.dl.vocabulary import Individual
from repro.storage.database import Database
from repro.context.clock import SimClock
from repro.context.model import ContextSnapshot, SituatedUser
from repro.context.sensors import GroundTruth, Sensor

__all__ = ["ContextManager"]


@dataclass
class ContextManager:
    """Coordinates clock, sensors, ABox and database refreshes.

    Parameters
    ----------
    user:
        The situated user.
    clock:
        The simulated wall clock.
    abox / tbox / space:
        The knowledge base the context is written into.
    sensors:
        The sensor suite to read on every refresh.
    database:
        Optional relational mirror, refreshed after the ABox.
    """

    user: SituatedUser
    clock: SimClock
    abox: ABox
    tbox: TBox
    space: EventSpace
    sensors: list[Sensor] = field(default_factory=list)
    database: Database | None = None
    _tick: int = 0
    _last_snapshot: ContextSnapshot | None = None

    def add_sensor(self, sensor: Sensor) -> None:
        self.sensors.append(sensor)

    def refresh(self, truth: GroundTruth) -> ContextSnapshot:
        """Read every sensor and install the resulting snapshot."""
        self._tick += 1
        tick = f"t{self._tick}"
        snapshot = ContextSnapshot(instant=f"{tick} {self.clock}")
        for sensor in self.sensors:
            snapshot.extend(sensor.read(self.clock, truth, self.space, tick))
        snapshot.apply(self.abox)
        if self.database is not None:
            self.database.load_abox(self.abox, refresh=True)
        self._last_snapshot = snapshot
        return snapshot

    @property
    def last_snapshot(self) -> ContextSnapshot | None:
        return self._last_snapshot

    # -- context feature queries ------------------------------------------
    def context_event(self, concept: Concept):
        """Event under which the situated user satisfies a context concept."""
        return membership_event(self.abox, self.tbox, self.user.individual, concept)

    def context_probability(self, concept: Concept, engine: str = "shannon") -> float:
        """Probability that the context concept holds for the user."""
        return membership_probability(
            self.abox, self.tbox, self.user.individual, concept, self.space, engine
        )

    @property
    def user_individual(self) -> Individual:
        return self.user.individual
