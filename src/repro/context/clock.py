"""A simulated wall clock for context scenarios.

Calendar context (weekend/weekday, part of day) is the one context
source the paper treats as certain; the clock provides it.  The clock
is plain simulated time — no dependence on the machine's real clock —
so scenarios and benchmarks are fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.errors import ContextError

__all__ = ["SimClock", "PART_OF_DAY_HOURS"]

#: Part-of-day boundaries: name -> (first hour, last hour inclusive).
PART_OF_DAY_HOURS: dict[str, tuple[int, int]] = {
    "Morning": (6, 11),
    "Afternoon": (12, 17),
    "Evening": (18, 22),
    "Night": (23, 5),
}


@dataclass
class SimClock:
    """A settable, advanceable simulated clock.

    Examples
    --------
    >>> clock = SimClock(datetime(2007, 4, 14, 8, 0))  # a Saturday
    >>> clock.is_weekend, clock.part_of_day
    (True, 'Morning')
    """

    now: datetime

    @staticmethod
    def at(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> "SimClock":
        return SimClock(datetime(year, month, day, hour, minute))

    def advance(self, minutes: int = 0, hours: int = 0, days: int = 0) -> "SimClock":
        """Move the clock forward (in place); returns self for chaining."""
        delta = timedelta(minutes=minutes, hours=hours, days=days)
        if delta < timedelta(0):
            raise ContextError("the simulated clock only moves forward")
        self.now = self.now + delta
        return self

    @property
    def weekday_name(self) -> str:
        return self.now.strftime("%A")

    @property
    def is_weekend(self) -> bool:
        return self.now.weekday() >= 5

    @property
    def is_workday(self) -> bool:
        return not self.is_weekend

    @property
    def part_of_day(self) -> str:
        hour = self.now.hour
        for name, (start, end) in PART_OF_DAY_HOURS.items():
            if start <= end:
                if start <= hour <= end:
                    return name
            elif hour >= start or hour <= end:
                return name
        raise ContextError(f"hour {hour} not covered by PART_OF_DAY_HOURS")  # pragma: no cover

    @property
    def calendar_concepts(self) -> tuple[str, ...]:
        """The certain calendar concepts holding right now."""
        day_kind = "Weekend" if self.is_weekend else "Workday"
        return (day_kind, self.part_of_day)

    def __str__(self) -> str:
        return self.now.strftime("%Y-%m-%d %H:%M (%A)")
