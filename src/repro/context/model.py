"""Context model: situated users, measurements and snapshots.

"We assign each context measurement a probability and a basic event
expression" (Section 4.1, citing the authors' context uncertainty
model).  A measurement is a single sensed fact — a concept membership
("Peter is having breakfast") or a role pair ("Peter is located in the
kitchen") — with the probability the sensor attaches to it and the
basic event that witnesses it.

A :class:`ContextSnapshot` is the set of measurements taken at one
instant; loading it into an ABox (tagged ``dynamic``) gives the
"uniform tabular view towards both static and dynamic contexts" of
Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import ContextError
from repro.events.atoms import validate_probability
from repro.events.expr import EventExpr
from repro.dl.abox import ABox
from repro.dl.vocabulary import ConceptName, Individual, RoleName

__all__ = ["ConceptMeasurement", "RoleMeasurement", "Measurement", "ContextSnapshot", "SituatedUser"]


@dataclass(frozen=True)
class ConceptMeasurement:
    """A sensed concept membership, e.g. ``Breakfast(peter)`` at p=0.9."""

    concept: ConceptName
    individual: Individual
    probability: float
    event: EventExpr
    sensor: str = "unknown"

    def __post_init__(self) -> None:
        validate_probability(self.probability, "measurement probability")

    def apply(self, abox: ABox) -> None:
        abox.assert_concept(self.concept, self.individual, self.event, dynamic=True)

    def __str__(self) -> str:
        return f"{self.concept}({self.individual}) p={self.probability:g} [{self.sensor}]"


@dataclass(frozen=True)
class RoleMeasurement:
    """A sensed role pair, e.g. ``locatedIn(peter, kitchen)`` at p=0.7."""

    role: RoleName
    source: Individual
    target: Individual
    probability: float
    event: EventExpr
    sensor: str = "unknown"

    def __post_init__(self) -> None:
        validate_probability(self.probability, "measurement probability")

    def apply(self, abox: ABox) -> None:
        abox.assert_role(self.role, self.source, self.target, self.event, dynamic=True)

    def __str__(self) -> str:
        return f"{self.role}({self.source}, {self.target}) p={self.probability:g} [{self.sensor}]"


Measurement = ConceptMeasurement | RoleMeasurement


@dataclass(frozen=True)
class SituatedUser:
    """The user whose context the system tracks (``u_sit`` in the paper)."""

    individual: Individual

    @staticmethod
    def named(name: str) -> "SituatedUser":
        return SituatedUser(Individual(name))

    def __str__(self) -> str:
        return self.individual.name


@dataclass
class ContextSnapshot:
    """All measurements taken at one instant.

    Parameters
    ----------
    instant:
        A monotone tick counter or timestamp label for tracing.
    measurements:
        The sensed facts.
    """

    instant: str
    measurements: list[Measurement] = field(default_factory=list)

    def add(self, measurement: Measurement) -> None:
        if not isinstance(measurement, (ConceptMeasurement, RoleMeasurement)):
            raise ContextError(f"not a measurement: {measurement!r}")
        self.measurements.append(measurement)

    def extend(self, measurements: Iterable[Measurement]) -> None:
        for measurement in measurements:
            self.add(measurement)

    def apply(self, abox: ABox) -> int:
        """Replace the ABox's dynamic assertions with this snapshot's.

        Returns the number of assertions written.
        """
        abox.clear_dynamic()
        for measurement in self.measurements:
            measurement.apply(abox)
        return len(self.measurements)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def __str__(self) -> str:
        lines = [f"context @ {self.instant}:"]
        lines.extend(f"  {measurement}" for measurement in self.measurements)
        return "\n".join(lines)
