"""Derived (high-level) context concepts.

"Calculation of the probability of high level context events (e.g., a
certain activity) can be done by combining event expressions from
measurements attributing to this event" (Section 4.1).  In this
implementation the combination happens declaratively: a high-level
context is a TBox *definition* over sensed concepts and roles, and the
instance checker combines the measurement events automatically when the
definition is unfolded.

Example: ``HavingBreakfast ≡ InKitchen ⊓ Morning`` with
``InKitchen ≡ ∃locatedIn.{kitchen}`` — the membership event for
``HavingBreakfast`` is then the conjunction of the location
measurement's event and the (certain) calendar event.
"""

from __future__ import annotations

from repro.dl.concepts import Concept, atomic, has_value, intersect
from repro.dl.parser import parse_concept
from repro.dl.tbox import TBox

__all__ = ["define_location_concept", "define_activity_conjunction", "define_context"]


def define_location_concept(tbox: TBox, name: str, room: str, role: str = "locatedIn") -> Concept:
    """Define ``name ≡ ∃role.{room}`` and return the defined concept.

    >>> tbox = TBox()
    >>> _ = define_location_concept(tbox, "InKitchen", "kitchen")
    >>> str(tbox.expand(atomic("InKitchen")))
    'locatedIn VALUE kitchen'
    """
    definition = has_value(role, room)
    tbox.define(name, definition)
    return atomic(name)


def define_activity_conjunction(tbox: TBox, name: str, parts: list[str]) -> Concept:
    """Define a high-level activity as a conjunction of sensed concepts.

    ``parts`` are concept names (e.g. ``["InKitchen", "Morning"]``).
    """
    definition = intersect(atomic(part) for part in parts)
    tbox.define(name, definition)
    return atomic(name)


def define_context(tbox: TBox, name: str, expression: str) -> Concept:
    """Define a high-level context from textual concept syntax.

    >>> tbox = TBox()
    >>> concept = define_context(tbox, "RelaxedEvening", "Evening AND NOT Working")
    >>> str(concept)
    'RelaxedEvening'
    """
    tbox.define(name, parse_concept(expression))
    return atomic(name)
