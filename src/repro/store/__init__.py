"""Persistent world store: versioned snapshots and overlay journals.

A snapshot serialises one frozen base world — ABox, TBox, event space,
rule set, the relational mirror — **plus** the expensive derived
artifacts (the compiled reasoner's expansion/closure tables and the
scoring kernel's documents×rules basis matrix) into a single versioned,
digest-verified container (:mod:`repro.store.format`).  The loader
(:mod:`repro.store.loader`) restores the world and re-seeds every
derived cache, publishing the numeric matrix through
``multiprocessing.shared_memory`` so N fleet workers share one physical
copy instead of paying N private rebuilds.  Per-tenant overlay deltas
persist separately in an append-only journal
(:mod:`repro.store.journal`) so sessions survive a fleet restart.
"""

from repro.store.format import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotInfo,
    inspect_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.store.codec import restore_world, snapshot_world, write_world_snapshot
from repro.store.journal import OverlayJournal
from repro.store.loader import LoadedWorld, load_or_build, load_world

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotInfo",
    "inspect_snapshot",
    "read_snapshot",
    "write_snapshot",
    "snapshot_world",
    "write_world_snapshot",
    "restore_world",
    "LoadedWorld",
    "load_world",
    "load_or_build",
    "OverlayJournal",
]
