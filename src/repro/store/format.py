"""The snapshot container: a versioned, digest-verified section file.

Layout (all integers little-endian)::

    offset  size  field
    0       10    magic ``b"REPROSNAP\\0"``
    10      4     format version (u32)
    14      32    SHA-256 digest of everything after the header
    46      8     index length in bytes (u64)
    54      n     index JSON: ``{"meta": {...}, "sections": [...]}``
    54+n    ...   section payloads, back to back

Each index entry is ``{"name", "kind", "offset", "length"}`` with
``offset`` relative to the start of the payload area.  Section kinds:

* ``json`` — UTF-8 JSON;
* ``text`` — UTF-8 text (rule DSL, s-expression event lines);
* ``f64``  — raw C-order float64 bytes, returned as a zero-copy
  ``memoryview`` so the loader can hand it to shared memory or numpy
  without an intermediate copy.

**Compatibility rule**: a snapshot is readable iff its format version
equals this library's :data:`SNAPSHOT_FORMAT_VERSION` exactly.  Any
change to the section contents bumps the version, and readers of a
different version raise :class:`~repro.errors.SnapshotError` — the
loader then rebuilds from source rather than guessing at the layout.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import SnapshotError

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotInfo",
    "write_snapshot",
    "read_snapshot",
    "inspect_snapshot",
]

MAGIC = b"REPROSNAP\x00"
#: Bump on any incompatible change to the section layout or contents.
SNAPSHOT_FORMAT_VERSION = 1

_HEADER = struct.Struct("<10sI32sQ")  # magic, version, digest, index length
_KINDS = ("json", "text", "f64")


@dataclass(frozen=True)
class SnapshotInfo:
    """Header and section table of a snapshot, without the payloads."""

    path: str
    version: int
    digest: str
    meta: dict
    sections: tuple[tuple[str, str, int], ...]  # (name, kind, length)

    @property
    def total_bytes(self) -> int:
        return sum(length for _name, _kind, length in self.sections)


def write_snapshot(
    path: str | Path,
    sections: Iterable[tuple[str, str, bytes]],
    meta: Mapping[str, object] | None = None,
) -> str:
    """Write ``(name, kind, payload)`` sections as one container file.

    Returns the hex content digest.  The write goes through a
    same-directory temp file + ``os.replace`` so a crashed writer never
    leaves a half-written snapshot under the final name.
    """
    import os

    entries = []
    payloads = []
    offset = 0
    for name, kind, payload in sections:
        if kind not in _KINDS:
            raise SnapshotError(f"unknown section kind {kind!r} for section {name!r}")
        payload = bytes(payload)
        entries.append(
            {"name": name, "kind": kind, "offset": offset, "length": len(payload)}
        )
        payloads.append(payload)
        offset += len(payload)
    index = json.dumps(
        {"meta": dict(meta or {}), "sections": entries},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")

    body = struct.pack("<Q", len(index)) + index + b"".join(payloads)
    digest = hashlib.sha256(body).digest()
    header = MAGIC + struct.pack("<I", SNAPSHOT_FORMAT_VERSION) + digest

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(header + body)
    os.replace(tmp, path)
    return digest.hex()


def _read_header(raw: bytes, path: str) -> tuple[int, bytes, int]:
    if len(raw) < _HEADER.size:
        raise SnapshotError(f"snapshot {path!r} is truncated (no header)")
    magic, version, digest, index_length = _HEADER.unpack_from(raw, 0)
    if magic != MAGIC:
        raise SnapshotError(f"{path!r} is not a repro snapshot (bad magic)")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version}, this library "
            f"reads exactly version {SNAPSHOT_FORMAT_VERSION}; rebuild the "
            "snapshot with `python -m repro snapshot build`"
        )
    return version, digest, index_length


def _verify(raw: bytes, digest: bytes, path: str) -> None:
    actual = hashlib.sha256(memoryview(raw)[_HEADER.size - 8 :]).digest()
    # The stored index length is covered by the digest (it sits in the
    # hashed body region), so corruption anywhere after the digest
    # field is caught here.
    if actual != digest:
        raise SnapshotError(
            f"snapshot {path!r} failed digest verification (corrupted or "
            "truncated); rebuild it from source"
        )


def _parse_index(raw: bytes, index_length: int, path: str) -> tuple[dict, list[dict]]:
    start = _HEADER.size
    end = start + index_length
    if end > len(raw):
        raise SnapshotError(f"snapshot {path!r} is truncated (index)")
    try:
        index = json.loads(raw[start:end].decode("utf-8"))
        meta = dict(index["meta"])
        entries = list(index["sections"])
    except (ValueError, KeyError, TypeError) as exc:
        raise SnapshotError(f"snapshot {path!r} has a malformed index: {exc}") from exc
    return meta, entries


def read_snapshot(
    path: str | Path,
) -> tuple[dict, dict[str, tuple[str, memoryview]]]:
    """Verify and load a snapshot: ``(meta, {name: (kind, payload)})``.

    Payloads are zero-copy ``memoryview`` slices of the file image
    (``f64`` sections stay raw bytes; decode ``json``/``text`` sections
    with the helpers in :mod:`repro.store.codec`).  Raises
    :class:`~repro.errors.SnapshotError` on any magic, version, digest
    or index problem.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {str(path)!r}: {exc}") from exc
    _version, digest, index_length = _read_header(raw, str(path))
    _verify(raw, digest, str(path))
    meta, entries = _parse_index(raw, index_length, str(path))
    meta["_digest"] = digest.hex()
    payload_start = _HEADER.size + index_length
    view = memoryview(raw)
    sections: dict[str, tuple[str, memoryview]] = {}
    for entry in entries:
        begin = payload_start + int(entry["offset"])
        finish = begin + int(entry["length"])
        if finish > len(raw):
            raise SnapshotError(
                f"snapshot {str(path)!r} section {entry.get('name')!r} "
                "extends past the end of the file"
            )
        sections[str(entry["name"])] = (str(entry["kind"]), view[begin:finish])
    return meta, sections


def inspect_snapshot(path: str | Path) -> SnapshotInfo:
    """Header, digest and section table (verifies the digest)."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {str(path)!r}: {exc}") from exc
    version, digest, index_length = _read_header(raw, str(path))
    _verify(raw, digest, str(path))
    meta, entries = _parse_index(raw, index_length, str(path))
    return SnapshotInfo(
        path=str(path),
        version=version,
        digest=digest.hex(),
        meta=meta,
        sections=tuple(
            (str(e["name"]), str(e["kind"]), int(e["length"])) for e in entries
        ),
    )
