"""Per-tenant overlay persistence: an append-only delta journal.

Snapshots freeze the *shared base* world; everything per-tenant lives
in :class:`~repro.dl.abox.LayeredABox` overlays that would otherwise
die with the process.  The journal persists them: every write is one
JSON line carrying a tenant's **entire** current overlay
(``overlay_snapshot()`` serialised through the s-expression event
codec), so replay is latest-record-wins — no ordering subtleties, no
partial merges, and a torn final line (a crash mid-append) invalidates
only itself.

Concurrency: fleet workers append to one shared file under an
``fcntl`` advisory lock where the platform provides one (each record
is a single ``write`` of a single line either way); readers rescan
only the tail beyond their last offset and ignore a trailing partial
line until the newline lands.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.dl.abox import ConceptAssertion, LayeredABox, RoleAssertion
from repro.errors import ReproError, SnapshotError
from repro.events.serialize import dumps as dump_event, loads as load_event

try:  # pragma: no cover - platform gate
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["OverlayJournal"]


def _encode_overlay(overlay: LayeredABox) -> dict:
    concepts = []
    roles = []
    for assertion in sorted(
        overlay.overlay_assertions(), key=lambda a: (a.__class__.__name__, str(a))
    ):
        if isinstance(assertion, ConceptAssertion):
            concepts.append(
                [
                    assertion.concept.name,
                    assertion.individual.name,
                    dump_event(assertion.event),
                    assertion.dynamic,
                ]
            )
        else:
            roles.append(
                [
                    assertion.role.name,
                    assertion.source.name,
                    assertion.target.name,
                    dump_event(assertion.event),
                    assertion.dynamic,
                ]
            )
    return {"concepts": concepts, "roles": roles}


class OverlayJournal:
    """Append-only journal of per-tenant overlay snapshots.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.dl.abox import ABox
    >>> path = os.path.join(tempfile.mkdtemp(), "overlays.jsonl")
    >>> journal = OverlayJournal(path)
    >>> base = ABox().freeze()
    >>> overlay = base.overlay()
    >>> _ = overlay.assert_concept("Weekend", "peter", dynamic=True)
    >>> journal.record("peter", overlay)
    >>> fresh = base.overlay()
    >>> journal2 = OverlayJournal(path)
    >>> journal2.replay_into("peter", fresh)
    True
    >>> len(fresh.overlay_snapshot())
    1
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._offset = 0
        self._latest: dict[str, dict] = {}
        self._sequence = 0
        self.refresh()

    # -- writing --------------------------------------------------------
    def record(self, tenant_id: str, overlay: LayeredABox) -> None:
        """Append the tenant's current overlay as one journal record."""
        self.refresh()
        self._sequence += 1
        payload = _encode_overlay(overlay)
        payload["tenant"] = str(tenant_id)
        payload["seq"] = self._sequence
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(data)
                handle.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        self._latest[str(tenant_id)] = payload

    # -- reading --------------------------------------------------------
    def refresh(self) -> None:
        """Fold any new complete records from the file tail into memory."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= self._offset:
            return
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        # Only complete lines count; a torn tail stays unconsumed until
        # its newline arrives (or forever, if the writer died mid-line).
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        consumed = chunk[: end + 1]
        self._offset += len(consumed)
        for raw in consumed.splitlines():
            if not raw.strip():
                continue
            try:
                payload = json.loads(raw.decode("utf-8"))
                tenant = str(payload["tenant"])
                sequence = int(payload.get("seq", 0))
            except (ValueError, KeyError, TypeError):
                continue  # a corrupt record loses itself, not the journal
            self._sequence = max(self._sequence, sequence)
            self._latest[tenant] = payload

    @property
    def tenants(self) -> tuple[str, ...]:
        """Tenants with at least one journalled overlay, sorted."""
        return tuple(sorted(self._latest))

    def replay_into(self, tenant_id: str, overlay: LayeredABox, space=None) -> bool:
        """Re-assert the tenant's journalled overlay into a fresh overlay.

        Returns ``True`` when a record existed and was applied.  Atom
        events referenced by the record are re-registered in ``space``
        (best effort — a name already registered at the same
        probability is idempotent, anything else keeps the structural
        event from the journal).
        """
        self.refresh()
        payload = self._latest.get(str(tenant_id))
        if payload is None:
            return False
        try:
            records = [
                ("concept", concept, individual, load_event(event_text), bool(dynamic))
                for concept, individual, event_text, dynamic in payload.get(
                    "concepts", ()
                )
            ] + [
                ("role", role, source, target, load_event(event_text), bool(dynamic))
                for role, source, target, event_text, dynamic in payload.get(
                    "roles", ()
                )
            ]
        except (ReproError, ValueError, TypeError) as exc:
            raise SnapshotError(
                f"journal record for tenant {tenant_id!r} is malformed: {exc}"
            ) from exc
        for entry in records:
            event = entry[-2]
            if space is not None:
                for atom in event.atoms():
                    try:
                        space.event(atom.name, atom.probability)
                    except Exception:
                        pass  # registered at another probability; keep structural
            if entry[0] == "concept":
                _kind, concept, individual, event, dynamic = entry
                overlay.assert_concept(concept, individual, event, dynamic=dynamic)
            else:
                _kind, role, source, target, event, dynamic = entry
                overlay.assert_role(role, source, target, event, dynamic=dynamic)
        return True

    # -- maintenance ----------------------------------------------------
    def compact(self) -> int:
        """Rewrite the file keeping only each tenant's latest record.

        Returns the number of surviving records.  Uses the same
        temp-file + rename discipline as the snapshot writer.
        """
        self.refresh()
        lines = [
            json.dumps(self._latest[tenant], sort_keys=True, separators=(",", ":"))
            for tenant in sorted(self._latest)
        ]
        data = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, self.path)
        self._offset = len(data)
        return len(lines)

    def __repr__(self) -> str:
        return f"OverlayJournal({str(self.path)!r}, tenants={len(self._latest)})"
