"""World ↔ snapshot-section codec.

:func:`snapshot_world` flattens a (frozen or freezable) base world into
the container sections of :mod:`repro.store.format`;
:func:`restore_world` rebuilds equivalent live objects.  Event
expressions ride on the s-expression codec
(:func:`repro.events.serialize.dump_lines` /
:func:`~repro.events.serialize.load_lines`), concepts and rules on
their existing text forms (``parse_concept`` round-trips ``str()``,
``parse_rules`` round-trips ``render_rules``), so no section invents a
second serialisation for anything the library already renders.

Sections (all optional except ``space``/``tbox``/``abox``):

* ``space`` (json) — registered events, mutex groups, fresh counter;
* ``tbox`` (json) — subsumption/role-subsumption edges, definitions,
  disjointness axioms;
* ``abox`` (json) + ``abox_events`` (text) — pre-merged assertion rows
  referencing a deduplicated event-expression line table;
* ``rules`` (text) — the rule repository in DSL form;
* ``database`` (json) + ``database_events`` (text) — every base table
  of the world's relational mirror (views are derived and rebuilt by
  their creators, not persisted);
* ``reasoner`` (json) — the compiled-KB base tier's concept expansions
  and name/role closure tables (the successor index is a linear pass
  over the restored role tables and is re-derived at load);
* ``basis`` (json) + ``matrix`` (f64) — the scoring kernel's
  documents×rules ``P(f)`` matrix over the sorted target members,
  with the candidate names, rule ids and possibility bitmask needed to
  re-seed the shared basis pool.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

from repro.core.kernel import compile_candidates
from repro.core.problem import RuleBinding, ScoringProblem, bind_documents
from repro.dl.abox import ABox, ConceptAssertion, RoleAssertion
from repro.dl.parser import parse_concept
from repro.dl.vocabulary import ConceptName, Individual, RoleName
from repro.errors import ReproError, SnapshotError
from repro.events.expr import NEVER
from repro.events.serialize import dump_lines, dumps as dump_event, load_lines
from repro.events.space import EventSpace
from repro.dl.tbox import TBox
from repro.reason import compiled_kb
from repro.rules.dsl import parse_rules, render_rules
from repro.storage.database import Database
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table
from repro.store.format import write_snapshot

__all__ = ["snapshot_world", "restore_world", "write_world_snapshot"]


class _EventTable:
    """Deduplicating event-expression line table (index per expression)."""

    def __init__(self) -> None:
        self._lines: list = []
        self._index: dict = {}

    def add(self, event) -> int:
        position = self._index.get(event)
        if position is None:
            position = len(self._lines)
            self._index[event] = position
            self._lines.append(event)
        return position

    def dump(self) -> bytes:
        return dump_lines(self._lines).encode("utf-8")


def _json_bytes(value) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _space_section(space: EventSpace | None) -> dict:
    if space is None:
        return {"present": False}
    return {
        "present": True,
        "name": space.name,
        "events": sorted(
            (event.name, event.probability) for event in space
        ),
        "groups": sorted(
            (group.name, list(group.member_names)) for group in space.groups
        ),
        "fresh_counter": space._fresh_counter,
    }


def _tbox_section(tbox: TBox) -> dict:
    return {
        "subsumptions": sorted(
            (sub.name, sup.name)
            for sub, supers in tbox._supers.items()
            for sup in supers
        ),
        "role_subsumptions": sorted(
            (sub.name, sup.name)
            for sub, supers in tbox._role_supers.items()
            for sup in supers
        ),
        "definitions": sorted(
            (name.name, str(concept)) for name, concept in tbox._definitions.items()
        ),
        "disjointness": sorted(
            sorted(name.name for name in axiom.names) for axiom in tbox._disjointness
        ),
    }


def _abox_section(abox: ABox, events: _EventTable) -> dict:
    concepts = []
    for assertion in abox.concept_assertions():
        concepts.append(
            [
                assertion.concept.name,
                assertion.individual.name,
                events.add(assertion.event),
                assertion.dynamic,
            ]
        )
    roles = []
    for assertion in abox.role_assertions():
        roles.append(
            [
                assertion.role.name,
                assertion.source.name,
                assertion.target.name,
                events.add(assertion.event),
                assertion.dynamic,
            ]
        )
    concepts.sort(key=lambda row: (row[0], row[1]))
    roles.sort(key=lambda row: (row[0], row[1], row[2]))
    return {
        "individuals": sorted(ind.name for ind in abox.individuals),
        "concepts": concepts,
        "roles": roles,
    }


def _database_section(database: Database, events: _EventTable) -> dict:
    from repro.events.expr import EventExpr

    tables = []
    for name in database.table_names:
        table = database.table(name)
        columns = [[column.name, column.type.value] for column in table.schema]
        rows = []
        for row in table:
            encoded = []
            for value in row:
                if isinstance(value, EventExpr):
                    encoded.append({"$e": events.add(value)})
                else:
                    encoded.append(value)
            rows.append(encoded)
        tables.append({"name": name, "columns": columns, "rows": rows})
    return {"name": database.name, "tables": tables}


def _reasoner_section(abox: ABox, tbox: TBox, space, target) -> dict:
    """Materialise the base tier's expansion/closure tables for the target.

    Runs the retrieval the serving cold path would run, then exports
    the memo tables the session filled — exactly the reasoning a loaded
    process no longer has to repeat.
    """
    kb = compiled_kb(abox, tbox, space)
    session = kb.session()
    session.retrieve(target)
    return {
        "expansions": sorted(
            (str(concept), str(expanded))
            for concept, expanded in session._expansions.items()
        ),
        "descendants": sorted(
            (name.name, [n.name for n in names])
            for name, names in session._descendants.items()
        ),
        "role_descendants": sorted(
            (role.name, [r.name for r in roles])
            for role, roles in session._role_descendants.items()
        ),
    }


def _basis_sections(
    abox: ABox,
    tbox: TBox,
    space,
    target,
    repository,
    *,
    method: str,
    rule_threshold: float,
    prune_documents: bool,
) -> tuple[dict, bytes]:
    """The compiled documents×rules matrix over the sorted target members."""
    kb = compiled_kb(abox, tbox, space)
    members = kb.retrieve(target)
    names = sorted(individual.name for individual in members)
    rules = list(repository)
    documents = bind_documents(abox, tbox, rules, names, space, kb=kb)
    neutral = tuple(RuleBinding(rule, NEVER, 0.0) for rule in rules)
    problem = ScoringProblem(bindings=neutral, documents=documents, space=space)
    candidates = compile_candidates(problem)
    if candidates.backend == "numpy":
        matrix_bytes = candidates.matrix.astype("<f8", copy=False).tobytes(order="C")
    else:
        import array

        flat = array.array("d", candidates.matrix)
        import sys

        if sys.byteorder != "little":  # pragma: no cover - big-endian host
            flat.byteswap()
        matrix_bytes = flat.tobytes()
    basis = {
        "names": list(candidates.names),
        "rule_ids": [rule.rule_id for rule in rules],
        "possible_bits": list(candidates.possible_bits),
        "rows": candidates.document_count,
        "cols": candidates.rule_count,
        "method": method,
        "rule_threshold": rule_threshold,
        "prune_documents": prune_documents,
    }
    return basis, matrix_bytes


def snapshot_world(
    world,
    *,
    method: str = "factorised",
    rule_threshold: float = 0.0,
    prune_documents: bool = True,
    include_database: bool = True,
    include_basis: bool = True,
) -> tuple[list[tuple[str, str, bytes]], dict]:
    """Flatten ``world`` into ``(sections, meta)`` for :func:`write_snapshot`.

    ``world`` is duck-typed like ``EngineBuilder.world``: ``abox``,
    ``tbox`` and ``target`` are required; ``space``, ``user``,
    ``repository``, ``database``/``data_table``/``id_column`` are
    serialised when present.  The basis matrix is only emitted when the
    world carries a repository (per-session rule sets have no shared
    matrix to precompile).
    """
    abox = world.abox
    tbox = world.tbox
    space = getattr(world, "space", None)
    target = getattr(world, "target", None)
    if target is None:
        raise SnapshotError("world has no target concept; nothing to precompile")
    target = parse_concept(target) if isinstance(target, str) else target
    repository = getattr(world, "repository", None)
    user = getattr(world, "user", None)
    database = getattr(world, "database", None)

    abox_events = _EventTable()
    abox_json = _abox_section(abox, abox_events)

    sections: list[tuple[str, str, bytes]] = [
        ("space", "json", _json_bytes(_space_section(space))),
        ("tbox", "json", _json_bytes(_tbox_section(tbox))),
        ("abox", "json", _json_bytes(abox_json)),
        ("abox_events", "text", abox_events.dump()),
    ]
    if repository is not None:
        sections.append(("rules", "text", render_rules(repository).encode("utf-8")))
    if database is not None and include_database:
        database_events = _EventTable()
        sections.append(
            ("database", "json", _json_bytes(_database_section(database, database_events)))
        )
        sections.append(("database_events", "text", database_events.dump()))
    sections.append(
        ("reasoner", "json", _json_bytes(_reasoner_section(abox, tbox, space, target)))
    )
    if repository is not None and include_basis:
        basis, matrix_bytes = _basis_sections(
            abox,
            tbox,
            space,
            target,
            repository,
            method=method,
            rule_threshold=rule_threshold,
            prune_documents=prune_documents,
        )
        sections.append(("basis", "json", _json_bytes(basis)))
        sections.append(("matrix", "f64", matrix_bytes))

    meta = {
        "target": str(target),
        "user": user.name if isinstance(user, Individual) else user,
        "data_table": getattr(world, "data_table", None),
        "id_column": getattr(world, "id_column", None),
        "individuals": len(abox.individuals),
        "assertions": len(abox),
    }
    return sections, meta


def write_world_snapshot(path: str | Path, world, **options) -> str:
    """Snapshot ``world`` straight to ``path``; returns the hex digest."""
    sections, meta = snapshot_world(world, **options)
    return write_snapshot(path, sections, meta)


# -- restore ------------------------------------------------------------


def _decode_json(sections, name: str) -> dict | None:
    entry = sections.get(name)
    if entry is None:
        return None
    kind, payload = entry
    if kind != "json":
        raise SnapshotError(f"section {name!r} has kind {kind!r}, expected json")
    try:
        return json.loads(bytes(payload).decode("utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"section {name!r} is malformed: {exc}") from exc


def _decode_events(sections, name: str) -> list:
    entry = sections.get(name)
    if entry is None:
        return []
    kind, payload = entry
    if kind != "text":
        raise SnapshotError(f"section {name!r} has kind {kind!r}, expected text")
    try:
        return load_lines(bytes(payload).decode("utf-8"))
    except ReproError as exc:
        raise SnapshotError(f"section {name!r} is malformed: {exc}") from exc


def _restore_space(data: dict) -> EventSpace | None:
    if not data.get("present"):
        return None
    space = EventSpace(data.get("name", "events"))
    for name, probability in data["events"]:
        space.event(name, probability)
    for group_name, members in data["groups"]:
        space.declare_mutex(group_name, members)
    space._fresh_counter = int(data.get("fresh_counter", 0))
    return space


def _restore_tbox(data: dict) -> TBox:
    tbox = TBox()
    for sub, sup in data["subsumptions"]:
        tbox.add_subsumption(sub, sup)
    for sub, sup in data["role_subsumptions"]:
        tbox.add_role_subsumption(sub, sup)
    for name, concept_text in data["definitions"]:
        tbox.define(name, parse_concept(concept_text))
    for names in data["disjointness"]:
        tbox.declare_disjoint(names)
    return tbox


def _restore_abox(data: dict, events: list) -> ABox:
    abox = ABox()
    try:
        concept_rows = data["concepts"]
        role_rows = data["roles"]
        # One validated name object per distinct string, built up front:
        # rows repeat the same few thousand vocabulary names across
        # ~10^5 assertions, so the listcomps below index plain dicts
        # instead of constructing (and regex-validating) per row, and
        # the restored tables share interned, hash-cached keys.
        individual_of = {
            name: Individual(name) for name in data.get("individuals", ())
        }
        for name in {row[1] for row in concept_rows}:
            if name not in individual_of:
                individual_of[name] = Individual(name)
        for row in role_rows:
            for name in (row[1], row[2]):
                if name not in individual_of:
                    individual_of[name] = Individual(name)
        concept_of = {
            name: ConceptName(name) for name in {row[0] for row in concept_rows}
        }
        role_of = {name: RoleName(name) for name in {row[0] for row in role_rows}}
        concepts = [
            ConceptAssertion(
                concept_of[concept], individual_of[individual], events[index], bool(dynamic)
            )
            for concept, individual, index, dynamic in concept_rows
        ]
        roles = [
            RoleAssertion(
                role_of[role],
                individual_of[source],
                individual_of[target],
                events[index],
                bool(dynamic),
            )
            for role, source, target, index, dynamic in role_rows
        ]
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"abox section is malformed: {exc}") from exc
    # ``individual_of`` was grown to cover every name in the rows, so
    # adopt can skip its per-row domain registration.
    abox.adopt(concepts, roles, individual_of.values(), individuals_complete=True)
    return abox.freeze()


def _restore_database(data: dict, events: list) -> Database:
    database = Database(data.get("name", "db"))
    for spec in data["tables"]:
        schema = Schema(
            [Column(name, ColumnType(type_value)) for name, type_value in spec["columns"]]
        )
        table = Table(spec["name"], schema)
        # Event references only ever live in EVENT columns, so decode
        # by position instead of isinstance-probing every cell.
        event_positions = [
            position
            for position, column in enumerate(schema)
            if column.type is ColumnType.EVENT
        ]
        if event_positions:
            rows = []
            for encoded in spec["rows"]:
                for position in event_positions:
                    value = encoded[position]
                    if isinstance(value, dict):
                        encoded[position] = events[value["$e"]]
                rows.append(tuple(encoded))
        else:
            rows = [tuple(encoded) for encoded in spec["rows"]]
        # Snapshot rows come from a live table, so they are already
        # validated and event-merged: restore them directly and rebuild
        # the merge index in one pass instead of re-running the
        # per-insert validation and disjunction probes.
        table._rows = rows
        if table._merge_index is not None:
            p = schema.index_of("event")
            table._merge_index = {
                row[:p] + row[p + 1 :]: row_index
                for row_index, row in enumerate(rows)
            }
        database.add_table(table)
    return database


def restore_world(meta: dict, sections: dict) -> SimpleNamespace:
    """Rebuild live world objects from decoded snapshot sections.

    Returns a world namespace (``abox`` frozen) compatible with
    ``EngineBuilder.world`` and ``TenantRegistry``; derived-cache
    seeding (reasoner memos, basis pool, shared memory) is the loader's
    job (:func:`repro.store.loader.load_world`), not the codec's.
    """
    space_data = _decode_json(sections, "space")
    tbox_data = _decode_json(sections, "tbox")
    abox_data = _decode_json(sections, "abox")
    if space_data is None or tbox_data is None or abox_data is None:
        raise SnapshotError("snapshot is missing a required section (space/tbox/abox)")
    try:
        space = _restore_space(space_data)
        tbox = _restore_tbox(tbox_data)
        abox = _restore_abox(abox_data, _decode_events(sections, "abox_events"))
    except SnapshotError:
        raise
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"cannot restore world from snapshot: {exc}") from exc

    repository = None
    rules_entry = sections.get("rules")
    if rules_entry is not None:
        try:
            repository = parse_rules(bytes(rules_entry[1]).decode("utf-8"))
        except ReproError as exc:
            raise SnapshotError(f"rules section is malformed: {exc}") from exc

    database = None
    database_data = _decode_json(sections, "database")
    if database_data is not None:
        try:
            database = _restore_database(
                database_data, _decode_events(sections, "database_events")
            )
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"database section is malformed: {exc}") from exc

    target_text = meta.get("target")
    if not target_text:
        raise SnapshotError("snapshot meta carries no target concept")
    user_name = meta.get("user")
    return SimpleNamespace(
        space=space,
        abox=abox,
        tbox=tbox,
        user=Individual(user_name) if user_name else None,
        repository=repository,
        database=database,
        target=parse_concept(target_text),
        data_table=meta.get("data_table"),
        id_column=meta.get("id_column"),
    )


def dump_event_text(event) -> str:
    """Convenience re-export used by the journal (one event, one line)."""
    return dump_event(event)
