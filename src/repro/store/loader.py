"""Snapshot loading: verify, restore, map, and re-seed derived caches.

:func:`load_world` is the cold-start fast path the fleet uses:

1. read and digest-verify the container (:mod:`repro.store.format`),
2. restore the live world objects (:mod:`repro.store.codec`),
3. publish the numeric basis matrix through
   ``multiprocessing.shared_memory`` — a numpy view over the segment
   when numpy imports, a ``memoryview('d')`` flat view otherwise — so
   sibling workers attach to **one** physical copy,
4. seed the compiled-KB base tier's memo tables and the process-wide
   shared basis pool, so the first rank of every tenant takes the
   incremental path instead of re-reasoning the world.

:func:`load_or_build` wraps it with the fallback discipline: any
snapshot problem (missing file, version mismatch, digest failure,
malformed section) degrades to the caller's rebuild-from-source
builder — a stale snapshot can cost time, never correctness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.dl.vocabulary import ConceptName, RoleName
from repro.dl.parser import parse_concept
from repro.errors import SnapshotError
from repro.store.codec import restore_world
from repro.store.format import read_snapshot

__all__ = ["LoadedWorld", "load_world", "load_or_build"]


@dataclass
class LoadedWorld:
    """A restored world plus the shared-memory handle keeping it mapped.

    Duck-compatible with ``EngineBuilder.world`` /
    ``TenantRegistry(world)``.  ``source`` says how the world came to
    be (``"snapshot"``, ``"snapshot+shm"``, ``"attach"`` or
    ``"rebuild"``); ``segment_name`` is what sibling (spawned) workers
    pass as ``attach=`` to map the same physical matrix.
    """

    space: object
    abox: object
    tbox: object
    user: object
    repository: object
    database: object
    target: object
    data_table: object
    id_column: object
    source: str = "snapshot"
    digest: str | None = None
    segment_name: str | None = None
    _segment: object = field(default=None, repr=False)
    _owns_segment: bool = False

    def release(self) -> None:
        """Unlink (for the creator) and defuse the shared segment handle.

        The zero-copy views handed to the kernel keep exported pointers
        into the mapping, so ``close()`` would raise ``BufferError``
        for as long as any engine lives; instead the handle is defused
        (its finalizer made a no-op) and the OS unmaps at process exit,
        while ``unlink`` removes the name immediately so no segment
        outlives the fleet.
        """
        segment = self._segment
        self._segment = None
        if segment is None:
            return
        if self._owns_segment:
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        try:
            segment.close()
        except BufferError:
            # Views are still exported: neuter the handle so its
            # __del__ stays silent and leave the unmap to process exit.
            segment._buf = None
            segment._mmap = None
        except OSError:  # pragma: no cover - platform specific
            pass


def _attach_segment(name: str):
    """Attach to an existing segment without adopting its lifetime.

    Python 3.11's resource tracker unlinks any attached segment when
    the attaching process exits; an attaching worker must not destroy
    the fleet's shared mapping, so the registration is undone.
    """
    from multiprocessing import resource_tracker, shared_memory

    segment = shared_memory.SharedMemory(name=name, create=False)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is private
        pass
    return segment


def _matrix_view(buffer, rows: int, cols: int, nbytes: int):
    """A read-only documents×rules view over ``buffer``: numpy or flat."""
    from repro.perf.backend import resolve_backend

    np = resolve_backend(None)
    if np is not None:
        matrix = np.frombuffer(buffer, dtype="<f8", count=rows * cols).reshape(
            rows, cols
        )
        matrix.setflags(write=False)
        return "numpy", matrix
    view = memoryview(buffer)[:nbytes]
    return "python", view.cast("d")


def _seed_reasoner(world, sections) -> None:
    """Fill the base tier's memo tables from the reasoner section."""
    import json

    from repro.reason import base_tier

    entry = sections.get("reasoner")
    if entry is None:
        return
    try:
        data = json.loads(bytes(entry[1]).decode("utf-8"))
        session = base_tier(world.abox, world.tbox, world.space)
        for concept_text, expanded_text in data.get("expansions", ()):
            session._expansions[parse_concept(concept_text)] = parse_concept(
                expanded_text
            )
        for name, names in data.get("descendants", ()):
            session._descendants[ConceptName(name)] = tuple(
                ConceptName(n) for n in names
            )
        for role, roles in data.get("role_descendants", ()):
            session._role_descendants[RoleName(role)] = tuple(
                RoleName(r) for r in roles
            )
        # The successor index, reachability maps and dynamic-context
        # signature are linear passes over the restored tables; derive
        # them now so the first rank pays none of it (and forked
        # workers inherit the results instead of re-walking the base).
        world.abox.role_adjacency()
        session.reachability_maps()
        world.abox.dynamic_signature()
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"reasoner section is malformed: {exc}") from exc


def _seed_basis_pool(world, candidates, basis: dict) -> None:
    """Publish a neutral-context kernel under the engine's basis key.

    The key mirrors ``RankingEngine._basis_key()`` for an overlay
    engine over this base world; the bindings are placeholders (the
    incremental path rebinds the context on first use and only checks
    rule identity), and the empty snapshot equals a fresh tenant's
    overlay, so the reuse guard sees exactly the state the matrix was
    compiled for.
    """
    from repro.core.kernel import ScoringKernel
    from repro.core.problem import RuleBinding
    from repro.engine.backends import RepositoryPreferences
    from repro.engine.basis import ViewBasis, shared_basis_pool
    from repro.events.expr import NEVER

    rules = list(world.repository)
    if [rule.rule_id for rule in rules] != list(basis["rule_ids"]):
        return  # rules and matrix disagree; let the cold path rebuild
    neutral = tuple(RuleBinding(rule, NEVER, 0.0) for rule in rules)
    kernel = ScoringKernel(candidates, neutral, float(basis["rule_threshold"]))
    key = (
        (world.abox, world.abox.mutation_count, world.tbox, world.space),
        world.tbox.revision,
        world.space.revision if world.space is not None else -1,
        RepositoryPreferences(world.repository).fingerprint(),
        str(basis["method"]),
        float(basis["rule_threshold"]),
        bool(basis["prune_documents"]),
        str(world.target),
    )
    shared_basis_pool().put(key, ViewBasis(kernel=kernel, snapshot=frozenset()))


def load_world(
    path: str | Path,
    *,
    share_memory: bool = True,
    attach: str | None = None,
    seed_caches: bool = True,
) -> LoadedWorld:
    """Load a verified snapshot into a ready-to-serve world.

    ``attach`` names an existing shared segment (a sibling worker's
    ``segment_name``) to map instead of creating one; ``share_memory=
    False`` keeps the matrix as a private in-process copy.  Raises
    :class:`~repro.errors.SnapshotError` on any verification or
    restore failure — use :func:`load_or_build` to degrade to a
    rebuild instead.
    """
    import gc
    import json

    # Restore allocates ~10^6 long-lived objects in one burst; the
    # cyclic collector would re-scan that growing heap dozens of times
    # for nothing (the world graph is acyclic), so pause it.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        meta, sections = read_snapshot(path)
        world = restore_world(meta, sections)
        if seed_caches:
            _seed_reasoner(world, sections)
    finally:
        if gc_was_enabled:
            gc.enable()

    source = "snapshot"
    digest = meta.get("_digest")
    segment = None
    segment_name = None
    owns = False

    basis_entry = sections.get("basis")
    matrix_entry = sections.get("matrix")
    if basis_entry is not None and matrix_entry is not None:
        try:
            basis = json.loads(bytes(basis_entry[1]).decode("utf-8"))
            rows, cols = int(basis["rows"]), int(basis["cols"])
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotError(f"basis section is malformed: {exc}") from exc
        nbytes = rows * cols * 8
        matrix_bytes = matrix_entry[1]
        if len(matrix_bytes) != nbytes:
            raise SnapshotError(
                f"matrix section holds {len(matrix_bytes)} bytes for a "
                f"{rows}x{cols} float64 matrix ({nbytes} expected)"
            )
        if attach is not None:
            segment = _attach_segment(attach)
            if segment.size < nbytes:
                raise SnapshotError(
                    f"shared segment {attach!r} is smaller than the matrix"
                )
            buffer = segment.buf
            segment_name = attach
            source = "attach"
        elif share_memory and nbytes:
            from multiprocessing import shared_memory

            name = f"repro-{(digest or 'snap')[:8]}-{os.getpid()}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            except FileExistsError:
                segment = shared_memory.SharedMemory(name=name, create=False)
            else:
                owns = True
            segment.buf[:nbytes] = bytes(matrix_bytes)
            buffer = segment.buf
            segment_name = name
            source = "snapshot+shm"
        else:
            buffer = bytes(matrix_bytes)
        backend, matrix = _matrix_view(buffer, rows, cols, nbytes)
        from repro.core.kernel import CompiledCandidates

        candidates = CompiledCandidates(
            names=tuple(basis["names"]),
            rule_count=cols,
            backend=backend,
            matrix=matrix,
            possible_bits=tuple(int(bits) for bits in basis["possible_bits"]),
        )
        loaded = LoadedWorld(
            space=world.space,
            abox=world.abox,
            tbox=world.tbox,
            user=world.user,
            repository=world.repository,
            database=world.database,
            target=world.target,
            data_table=world.data_table,
            id_column=world.id_column,
            source=source,
            digest=digest,
            segment_name=segment_name,
            _segment=segment,
            _owns_segment=owns,
        )
        if segment is not None:
            # Idempotent: an explicit release() leaves this a no-op.
            import atexit

            atexit.register(loaded.release)
        if seed_caches and world.repository is not None:
            _seed_basis_pool(loaded, candidates, basis)
        return loaded

    return LoadedWorld(
        space=world.space,
        abox=world.abox,
        tbox=world.tbox,
        user=world.user,
        repository=world.repository,
        database=world.database,
        target=world.target,
        data_table=world.data_table,
        id_column=world.id_column,
        source=source,
        digest=digest,
    )


def load_or_build(
    path: str | Path | None,
    builder: Callable[[], object],
    *,
    on_fallback: Callable[[str], None] | None = None,
    **load_options,
) -> LoadedWorld:
    """Load ``path`` if possible, else rebuild from source via ``builder``.

    Every snapshot failure mode — missing file, wrong magic or format
    version, digest mismatch, malformed section — lands in the same
    place: ``builder()`` runs and its world is wrapped with
    ``source="rebuild"``.  ``on_fallback`` (if given) receives the
    reason string, so servers can log why they paid a rebuild.
    """
    if path is not None:
        try:
            return load_world(path, **load_options)
        except (SnapshotError, OSError) as exc:
            if on_fallback is not None:
                on_fallback(str(exc))
    world = builder()
    target = getattr(world, "target", None)
    return LoadedWorld(
        space=getattr(world, "space", None),
        abox=world.abox,
        tbox=world.tbox,
        user=getattr(world, "user", None),
        repository=getattr(world, "repository", None),
        database=getattr(world, "database", None),
        target=parse_concept(target) if isinstance(target, str) else target,
        data_table=getattr(world, "data_table", None),
        id_column=getattr(world, "id_column", None),
        source="rebuild",
    )
