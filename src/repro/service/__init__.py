"""The serving runtime: concurrent request pipeline + HTTP/JSON gateway.

Turns the tenant fleet (:mod:`repro.tenants`) into a traffic-handling
system: a staged, admission-controlled :class:`RankingService`
pipeline (parse → cache → breaker → admit → resolve → context → rank →
render) with per-stage latency metrics, a pluggable response cache
(:mod:`repro.cache`), and a resilience layer
(:mod:`repro.service.resilience`: per-request deadlines, serve-stale
degradation, circuit breaking, fault injection), fronted by a
dependency-free
:class:`ThreadingHTTPServer` gateway (``python -m repro serve``) that
scales past the GIL as a pre-fork worker fleet
(``python -m repro serve --workers N``, :mod:`repro.service.fleet`).

Quickstart::

    from repro.service import RankingService, ServiceConfig, make_server
    from repro.tenants import TenantRegistry
    from repro.workloads import build_tvtouch

    registry = TenantRegistry(build_tvtouch(), shards=8, max_sessions=4096)
    service = RankingService(registry, ServiceConfig(max_concurrency=8))

    # in-process
    reply = service.rank({"tenant": ["alice"], "context": ["Weekend"], "top_k": ["3"]})
    print(reply.body["items"][0])

    # over HTTP
    server = make_server(service, port=0)   # 0 = pick a free port
    # threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from repro.cache import CacheAdapter, InMemoryCacheAdapter, NoCacheAdapter
from repro.service.batching import BatchScheduler
from repro.service.fleet import (
    FleetSupervisor,
    serve_fleet,
    supports_fleet,
    supports_reuseport,
)
from repro.service.metrics import (
    GatewayMetrics,
    LatencyRecorder,
    ServiceMetrics,
    percentile,
)
from repro.service.pipeline import (
    STAGES,
    RankAttempt,
    RankingService,
    ServiceConfig,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.http import RankingHTTPServer, make_server, serve
from repro.service.aio import AioRankingServer, make_aio_server
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    SharedFleetState,
    clamp_timeout,
    current_deadline,
    deadline_scope,
)

__all__ = [
    "AioRankingServer",
    "BatchScheduler",
    "CacheAdapter",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FleetSupervisor",
    "GatewayMetrics",
    "InMemoryCacheAdapter",
    "InjectedFault",
    "LatencyRecorder",
    "NoCacheAdapter",
    "RankAttempt",
    "RankingHTTPServer",
    "RankingService",
    "STAGES",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceResponse",
    "SharedFleetState",
    "clamp_timeout",
    "current_deadline",
    "deadline_scope",
    "make_aio_server",
    "make_server",
    "percentile",
    "serve",
    "serve_fleet",
    "supports_fleet",
    "supports_reuseport",
]
