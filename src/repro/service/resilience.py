"""The serving fleet's robustness layer: deadlines, breakers, fault injection.

PRs 5–6 built the happy path — admission control bounds *concurrency*,
the response cache absorbs repeats — but nothing bounded *latency* and
every failure surfaced raw.  This module is the failure path, four
small mechanisms the pipeline, gateway and fleet supervisor compose:

* :class:`Deadline` — a monotonic per-request budget.  The pipeline
  derives one from ``ServiceConfig.request_timeout`` (client override
  clamped by ``max_request_timeout``), runs rank work on a bounded
  executor against it, and publishes it through a :mod:`contextvars`
  variable so the scoring kernel can check it *cooperatively* between
  candidate blocks (:func:`current_deadline` /
  :func:`check_deadline`).  A wedged rank answers 504 without leaking
  the admission slot or the gateway thread.
* :class:`CircuitBreaker` — per-tenant + global rolling-window breaker
  (closed → open → half-open with a jittered probe).  When rank
  failures or timeouts spike, the pipeline sheds load fast — answering
  from stale cache while open — instead of queueing doomed work.
* :class:`FaultInjector` — deterministic chaos: injected rank delays,
  seeded rank error rates, kill-every-N-requests worker suicide and a
  worker time-to-live, configurable from the environment
  (``REPRO_FAULT_*``) or CLI flags, so every failure path above is
  testable without real outages.
* :class:`SharedFleetState` — the one cross-process signal the fleet
  needs: a fork-shared counter of crash-looping workers the supervisor
  has given up on, so any worker's ``/readyz`` can report the fleet
  degraded.

Nothing here imports the pipeline; the dependency points one way
(pipeline → resilience), and the kernel reaches :func:`current_deadline`
only through ``sys.modules`` so :mod:`repro.core` never imports the
service layer.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import random
import signal
import threading
import time
from collections import OrderedDict, deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, NamedTuple

from repro.errors import EngineConfigError

__all__ = [
    "BreakerDecision",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "InjectedFault",
    "SharedFleetState",
    "check_deadline",
    "clamp_timeout",
    "current_deadline",
    "deadline_scope",
]


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class DeadlineExceeded(Exception):
    """A request ran past its deadline.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the
    pipeline maps ReproError to 400 (client errors) and this to 504.
    """


class Deadline:
    """An absolute monotonic deadline for one request."""

    __slots__ = ("expires_at", "timeout", "_clock")

    def __init__(
        self,
        expires_at: float,
        timeout: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.expires_at = expires_at
        self.timeout = timeout
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        if seconds <= 0:
            raise EngineConfigError(f"deadline needs a positive budget, got {seconds!r}")
        return cls(clock() + seconds, seconds, clock)

    def remaining(self) -> float:
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self._clock() >= self.expires_at:
            raise DeadlineExceeded(
                f"request deadline exceeded ({self.timeout:.3f}s budget)"
            )

    def __repr__(self) -> str:
        return f"Deadline(timeout={self.timeout:.3f}s, remaining={self.remaining():.3f}s)"


#: The active request's deadline, visible to anything on the rank call
#: stack (the scoring kernel polls it between candidate blocks).
_ACTIVE_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_active_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline of the request running on this thread, if any."""
    return _ACTIVE_DEADLINE.get()


def check_deadline() -> None:
    """Cooperative check: raise if the active deadline has expired."""
    deadline = _ACTIVE_DEADLINE.get()
    if deadline is not None:
        deadline.check()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Publish ``deadline`` as the active one for the enclosed work."""
    token = _ACTIVE_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE_DEADLINE.reset(token)


def clamp_timeout(
    requested: float | None,
    default: float | None,
    maximum: float,
    minimum: float = 0.0,
) -> float | None:
    """The effective request timeout: client override clamped into
    ``[minimum, maximum]``.

    ``None`` requested means "use the service default"; a ``None``
    default disables deadlines entirely (overrides included — a client
    cannot re-enable a feature the deployment turned off).  The floor
    exists because near-zero client timeouts guarantee 504s whatever
    the engine's health — unclamped they are free ammunition against
    any failure accounting downstream.
    """
    if default is None:
        return None
    if requested is None:
        return default
    return min(max(requested, minimum), maximum)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class BreakerDecision(NamedTuple):
    """One admission verdict from :meth:`CircuitBreaker.allow`.

    ``probes`` names the scopes where this request *is* the half-open
    probe.  Holding a probe is a debt: exactly one of
    :meth:`CircuitBreaker.record_success`,
    :meth:`CircuitBreaker.record_failure` or
    :meth:`CircuitBreaker.cancel_probe` must follow, or the core wedges
    in half-open with its single probe slot taken forever.
    """

    allowed: bool
    state: str
    retry_after: float
    scope: str  # "global", "tenant", or "" when allowed
    probes: tuple[str, ...] = ()


class _BreakerCore:
    """One rolling-window breaker state machine (no locking here)."""

    __slots__ = ("state", "events", "probe_at", "probe_inflight", "probe_started_at")

    def __init__(self):
        self.state = "closed"
        self.events: deque[tuple[float, bool]] = deque()
        self.probe_at = 0.0
        self.probe_inflight = False
        self.probe_started_at = 0.0


class CircuitBreaker:
    """Per-tenant + global rolling-window circuit breaker.

    One failure stream feeds two scopes: every rank outcome lands in
    the tenant's core *and* the global core, so one pathological
    tenant opens only its own circuit while a systemic failure (engine
    wedged, dependency down) opens the global one.  State machine per
    core: *closed* (counting a rolling ``window`` of outcomes; opens
    when at least ``min_requests`` landed and the failure ratio
    reaches ``failure_threshold``) → *open* (everything shed for a
    jittered ``cooldown``) → *half-open* (exactly one probe request
    admitted; success closes, failure re-opens with a fresh jittered
    cooldown).  ``clock`` and ``rng`` are injectable so tests drive
    every transition without sleeping.
    """

    def __init__(
        self,
        window: float = 10.0,
        min_requests: int = 10,
        failure_threshold: float = 0.5,
        cooldown: float = 5.0,
        jitter: float = 0.2,
        max_tenants: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
        on_transition: Callable[[str, str, str], None] | None = None,
    ):
        if window <= 0 or cooldown <= 0:
            raise EngineConfigError(
                f"breaker window and cooldown must be positive, got "
                f"window={window!r} cooldown={cooldown!r}"
            )
        if min_requests < 1:
            raise EngineConfigError(
                f"breaker min_requests must be >= 1, got {min_requests!r}"
            )
        if not 0.0 < failure_threshold <= 1.0:
            raise EngineConfigError(
                f"breaker failure_threshold must be in (0, 1], got {failure_threshold!r}"
            )
        if jitter < 0:
            raise EngineConfigError(f"breaker jitter must be >= 0, got {jitter!r}")
        self.window = window
        self.min_requests = min_requests
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.jitter = jitter
        self.max_tenants = max_tenants
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._global = _BreakerCore()
        self._tenants: "OrderedDict[str, _BreakerCore]" = OrderedDict()
        self._transitions: dict[str, int] = {}

    # -- state machine (call with the lock held) ---------------------------
    def _transition(self, core: _BreakerCore, scope: str, new: str) -> None:
        old, core.state = core.state, new
        self._transitions[new] = self._transitions.get(new, 0) + 1
        if self._on_transition is not None:
            self._on_transition(scope, old, new)

    def _open(self, core: _BreakerCore, scope: str, now: float) -> None:
        self._transition(core, scope, "open")
        core.probe_at = now + self.cooldown * (1.0 + self.jitter * self._rng.random())
        core.probe_inflight = False
        core.events.clear()

    def _close(self, core: _BreakerCore, scope: str) -> None:
        self._transition(core, scope, "closed")
        core.probe_inflight = False
        core.events.clear()

    def _prune(self, core: _BreakerCore, now: float) -> None:
        horizon = now - self.window
        while core.events and core.events[0][0] < horizon:
            core.events.popleft()

    def _allow_core(self, core: _BreakerCore, scope: str, now: float) -> BreakerDecision:
        if core.state == "closed":
            return BreakerDecision(True, "closed", 0.0, "")
        if core.state == "open":
            if now < core.probe_at:
                return BreakerDecision(False, "open", core.probe_at - now, scope)
            self._transition(core, scope, "half_open")
        # half-open: exactly one probe in flight at a time.
        if core.probe_inflight:
            if now - core.probe_started_at < self.cooldown:
                return BreakerDecision(False, "half_open", self.cooldown * 0.1, scope)
            # The probe's outcome never arrived (its owner died, or a
            # termination path failed to settle it): reclaim the slot
            # rather than wedging in half-open forever.
            core.probe_inflight = False
        core.probe_inflight = True
        core.probe_started_at = now
        return BreakerDecision(True, "half_open", 0.0, "", probes=(scope,))

    def _record_core(self, core: _BreakerCore, scope: str, ok: bool, now: float) -> None:
        if core.state == "half_open":
            if ok:
                self._close(core, scope)
            else:
                self._open(core, scope, now)
            return
        if core.state == "open":
            return  # late result from before the open; the probe decides
        core.events.append((now, ok))
        self._prune(core, now)
        total = len(core.events)
        if total < self.min_requests:
            return
        failures = sum(1 for _, event_ok in core.events if not event_ok)
        if failures / total >= self.failure_threshold:
            self._open(core, scope, now)

    def _tenant_core(self, tenant: str, create: bool) -> _BreakerCore | None:
        core = self._tenants.get(tenant)
        if core is not None:
            self._tenants.move_to_end(tenant)
            return core
        if not create:
            return None
        core = _BreakerCore()
        self._tenants[tenant] = core
        while len(self._tenants) > self.max_tenants:
            self._tenants.popitem(last=False)
        return core

    def _cancel_probes(self, probes: tuple[str, ...]) -> None:
        for scope in probes:
            if scope == "global":
                core: _BreakerCore | None = self._global
            else:
                core = self._tenants.get(scope.partition(":")[2])
            if core is not None and core.state == "half_open" and core.probe_inflight:
                core.probe_inflight = False

    # -- the pipeline surface ----------------------------------------------
    def allow(self, tenant: str) -> BreakerDecision:
        """May a request for ``tenant`` reach the engine right now?"""
        with self._lock:
            now = self._clock()
            decision = self._allow_core(self._global, "global", now)
            if not decision.allowed:
                return decision
            core = self._tenant_core(tenant, create=False)
            if core is None:
                return decision
            tenant_decision = self._allow_core(core, f"tenant:{tenant}", now)
            if not tenant_decision.allowed:
                # The global core may just have made this request its
                # half-open probe; the tenant denial means no outcome
                # will ever be recorded for it, so hand the slot back
                # now or the global breaker can never recover.
                self._cancel_probes(decision.probes)
                return tenant_decision
            if tenant_decision.probes:
                decision = decision._replace(
                    probes=decision.probes + tenant_decision.probes
                )
            return decision

    def cancel_probe(self, decision: BreakerDecision) -> None:
        """Return half-open probe slots a request could not settle.

        The pipeline calls this on every termination path that records
        no engine outcome — admission shed, client-error 400,
        client-shortened timeout.  Without it a probe admitted by
        :meth:`allow` leaks, every later request is denied, and the
        breaker never leaves half-open.
        """
        if not decision.probes:
            return
        with self._lock:
            self._cancel_probes(decision.probes)

    def record_success(self, tenant: str) -> None:
        with self._lock:
            now = self._clock()
            self._record_core(self._global, "global", True, now)
            core = self._tenant_core(tenant, create=False)
            if core is not None:
                self._record_core(core, f"tenant:{tenant}", True, now)

    def record_failure(self, tenant: str) -> None:
        with self._lock:
            now = self._clock()
            self._record_core(self._global, "global", False, now)
            core = self._tenant_core(tenant, create=True)
            self._record_core(core, f"tenant:{tenant}", False, now)

    # -- observability ------------------------------------------------------
    def state(self, tenant: str | None = None) -> str:
        with self._lock:
            if tenant is None:
                return self._global.state
            core = self._tenants.get(tenant)
            return core.state if core is not None else "closed"

    def snapshot(self) -> dict:
        with self._lock:
            open_tenants = sorted(
                tenant
                for tenant, core in self._tenants.items()
                if core.state != "closed"
            )
            return {
                "enabled": True,
                "state": self._global.state,
                "open_tenants": open_tenants,
                "tracked_tenants": len(self._tenants),
                "transitions": dict(self._transitions),
                "window_seconds": self.window,
                "cooldown_seconds": self.cooldown,
            }


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class InjectedFault(Exception):
    """A deliberately injected engine failure (chaos testing only)."""


#: Environment knobs (the CI chaos job and ``repro serve --fault-*``
#: flags both land here).
_ENV_PREFIX = "REPRO_FAULT_"


@dataclass
class FaultInjector:
    """Deterministic fault injection for the serving stack.

    All faults default off; an all-zero injector is free on the hot
    path (one attribute read).  ``rank_delay`` sleeps before every
    rank, ``rank_error_rate`` raises :class:`InjectedFault` with the
    given probability (seeded RNG, so runs replay), ``worker_kill_every``
    SIGKILLs the serving process after every N-th ``/rank`` response
    (the fleet supervisor's respawn path), and ``worker_ttl`` kills the
    worker that many seconds after boot (the crash-loop path).
    ``tenants`` restricts rank faults to the named tenants.
    """

    rank_delay: float = 0.0
    rank_error_rate: float = 0.0
    worker_kill_every: int = 0
    worker_ttl: float = 0.0
    tenants: frozenset[str] | None = None
    seed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False, repr=False)
    _rng: random.Random = field(init=False, repr=False)
    _responses: int = field(default=0, init=False, repr=False)
    _rank_faults: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rank_delay < 0 or self.worker_ttl < 0:
            raise EngineConfigError(
                f"fault delays must be >= 0, got rank_delay={self.rank_delay!r} "
                f"worker_ttl={self.worker_ttl!r}"
            )
        if not 0.0 <= self.rank_error_rate <= 1.0:
            raise EngineConfigError(
                f"rank_error_rate must be in [0, 1], got {self.rank_error_rate!r}"
            )
        if self.worker_kill_every < 0:
            raise EngineConfigError(
                f"worker_kill_every must be >= 0, got {self.worker_kill_every!r}"
            )
        self._rng = random.Random(self.seed)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultInjector":
        """Build from ``REPRO_FAULT_*`` variables (unset means off)."""
        env = os.environ if environ is None else environ
        tenants_raw = env.get(_ENV_PREFIX + "TENANTS", "").strip()
        return cls(
            rank_delay=float(env.get(_ENV_PREFIX + "RANK_DELAY", 0) or 0),
            rank_error_rate=float(env.get(_ENV_PREFIX + "RANK_ERROR_RATE", 0) or 0),
            worker_kill_every=int(env.get(_ENV_PREFIX + "KILL_EVERY", 0) or 0),
            worker_ttl=float(env.get(_ENV_PREFIX + "WORKER_TTL", 0) or 0),
            tenants=(
                frozenset(part.strip() for part in tenants_raw.split(",") if part.strip())
                or None
                if tenants_raw
                else None
            ),
            seed=int(env.get(_ENV_PREFIX + "SEED", 0) or 0),
        )

    @property
    def active(self) -> bool:
        return bool(
            self.rank_delay
            or self.rank_error_rate
            or self.worker_kill_every
            or self.worker_ttl
        )

    def _targets(self, tenant: str) -> bool:
        return self.tenants is None or tenant in self.tenants

    def before_rank(self, tenant: str) -> None:
        """Inject the configured rank faults for one request."""
        if not (self.rank_delay or self.rank_error_rate) or not self._targets(tenant):
            return
        if self.rank_delay:
            # Sleep in slices, honouring any active deadline — real slow
            # work (the kernel) is deadline-cooperative, so the injected
            # kind is too; a wedged drill must not pin a pool thread for
            # the whole delay after its caller already answered 504.
            deadline = current_deadline()
            until = time.monotonic() + self.rank_delay
            while True:
                remaining = until - time.monotonic()
                if remaining <= 0:
                    break
                if deadline is not None:
                    deadline.check()
                time.sleep(min(0.05, remaining))
        if self.rank_error_rate:
            with self._lock:
                fault = self._rng.random() < self.rank_error_rate
                if fault:
                    self._rank_faults += 1
            if fault:
                raise InjectedFault(
                    f"injected rank fault for {tenant!r} "
                    f"(rate={self.rank_error_rate})"
                )

    def should_kill_worker(self) -> bool:
        """Count one served response; True on every N-th."""
        if self.worker_kill_every < 1:
            return False
        with self._lock:
            self._responses += 1
            return self._responses % self.worker_kill_every == 0

    def maybe_kill_worker(self) -> None:  # pragma: no cover - kills the process
        if self.should_kill_worker():
            os.kill(os.getpid(), signal.SIGKILL)

    def info(self) -> dict:
        with self._lock:
            return {
                "active": self.active,
                "rank_delay": self.rank_delay,
                "rank_error_rate": self.rank_error_rate,
                "worker_kill_every": self.worker_kill_every,
                "worker_ttl": self.worker_ttl,
                "tenants": sorted(self.tenants) if self.tenants is not None else None,
                "seed": self.seed,
                "rank_faults_injected": self._rank_faults,
                "responses_counted": self._responses,
            }


# ---------------------------------------------------------------------------
# Cross-process fleet state
# ---------------------------------------------------------------------------

class SharedFleetState:
    """Fork-shared fleet degradation signal (supervisor → workers).

    The supervisor increments ``failed`` when its crash-loop detector
    gives up on a worker index; every worker's ``/readyz`` reads it to
    report the *fleet* degraded even though the answering process is
    healthy.  A plain ``multiprocessing.Value`` — one int, one lock —
    is all the cross-process state the design needs.
    """

    def __init__(self, context=None):
        ctx = context if context is not None else multiprocessing
        self._failed = ctx.Value("i", 0)

    def mark_failed(self) -> None:
        with self._failed.get_lock():
            self._failed.value += 1

    @property
    def failed_workers(self) -> int:
        return int(self._failed.value)

    def __repr__(self) -> str:
        return f"SharedFleetState(failed_workers={self.failed_workers})"
