"""The event-loop HTTP gateway: one loop per worker owns the wire.

The threading gateway (:mod:`repro.service.http`) parks one daemon
thread per connection in a blocking ``recv`` — under the GIL that
costs a scheduler pass per wakeup and ~60–75% of a worker's capacity
before the ranking kernel runs (measured in E13/E18).  This module is
the same HTTP surface rebuilt as a stdlib-only ``asyncio.Protocol``
server:

* **one event loop** per worker process owns accept, parse and write;
  an idle keep-alive connection costs a registered fd, not a thread;
* **incremental HTTP/1.1 parsing** with bounded header/body buffers,
  keep-alive and pipelining (the next buffered request is parsed only
  after the current response is written, so responses stay ordered)
  and a slow-client **read deadline**: a connection holding a partial
  request longer than ``read_deadline`` seconds is answered 408 and
  closed — idle connections with an *empty* buffer are never timed
  out, matching the threading gateway;
* **inline serving on the loop** for everything that cannot block:
  parse 400s, pure cache hits (stored pre-encoded bytes —
  :meth:`ServiceResponse.encoded`), ``/healthz``, ``/readyz``,
  ``/metrics`` and overload sheds;
* **off-loop dispatch** for cache-missing ranks and context installs:
  the blocking half of the pipeline
  (:meth:`RankingService.finish_rank`) runs on a bounded gateway
  executor sized to the admission semaphore, and its completion
  callback re-arms the connection for write.  Time spent queued
  behind the executor is charged against the admission
  ``queue_timeout`` (``finish_rank(queue_budget=...)``), so overload
  sheds fire on the same clock as the threading gateway's semaphore
  wait.  Because the loop submits every concurrently-buffered miss in
  one pass, requests inside the batch window reach the
  :class:`~repro.service.batching.BatchScheduler` together without a
  follower thread blocking in a socket read.

Lifecycle mirrors :class:`~repro.service.http.RankingHTTPServer`
exactly (``serve_forever`` / ``shutdown`` / ``drain`` /
``server_close``, plus the socket attributes the fleet's
``_adopt_socket`` swaps), so :mod:`repro.service.fleet` runs either
gateway unchanged.  Shutdown is graceful in-loop: stop accepting →
close idle connections → let in-flight responses finish (bounded by
``drain_grace``) → abort stragglers → stop the loop.

Wire-side observability (open connections, read/parse/write stage
times, loop-lag percentiles) lands in
:class:`~repro.service.metrics.GatewayMetrics` and is surfaced as the
``gateway`` section of ``GET /metrics`` via
:meth:`RankingService.attach_gateway`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from urllib.parse import parse_qs, urlsplit

from repro.service.http import MAX_BODY_BYTES, SERVER_VERSION
from repro.service.metrics import GatewayMetrics
from repro.service.pipeline import RankingService, ServiceResponse

__all__ = ["AioRankingServer", "make_aio_server", "serve"]

#: Cap on buffered request-head bytes (request line + headers).
MAX_HEAD_BYTES = 16384

#: Seconds a connection may hold a *partial* request before a 408.
DEFAULT_READ_DEADLINE = 5.0

_REASONS: dict[int, str] = {}


def _reason(status: int) -> str:
    phrase = _REASONS.get(status)
    if phrase is None:
        try:
            phrase = HTTPStatus(status).phrase
        except ValueError:
            phrase = "Unknown"
        _REASONS[status] = phrase
    return phrase


class _Request:
    """One fully buffered HTTP request, ready to route."""

    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(self, method: str, target: str, version: str, headers: dict, body: bytes):
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers  # lower-cased names
        self.body = body


class _HttpConnection(asyncio.Protocol):
    """One keep-alive client connection on the gateway loop.

    All methods run on the loop thread except nothing — executor
    completions re-enter through ``call_soon_threadsafe``.  The
    connection is *busy* while exactly one request is being answered;
    pipelined bytes wait in ``buffer`` until the response is written.
    """

    __slots__ = (
        "server",
        "service",
        "metrics",
        "transport",
        "buffer",
        "busy",
        "closing",
        "closed",
        "read_timer",
        "read_started",
    )

    def __init__(self, server: "AioRankingServer"):
        self.server = server
        self.service = server.service
        self.metrics = server.gateway_metrics
        self.transport: asyncio.Transport | None = None
        self.buffer = bytearray()
        self.busy = False
        self.closing = False
        self.closed = False
        self.read_timer: asyncio.TimerHandle | None = None
        self.read_started: float | None = None

    # -- transport events --------------------------------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport
        self.metrics.connection_opened()
        self.server._connections.add(self)
        if self.server._draining:
            # Accepted in the race window after shutdown began.
            self.closing = True
            transport.close()

    def connection_lost(self, exc) -> None:  # noqa: ARG002 - protocol API
        self.closed = True
        self._cancel_read_timer()
        self.server._connections.discard(self)
        self.metrics.connection_closed()

    def data_received(self, data: bytes) -> None:
        if self.closed or self.closing:
            return
        if self.read_started is None:
            self.read_started = time.perf_counter()
        self.buffer += data
        if not self.busy:
            self._process_buffer()

    # -- incremental parsing -----------------------------------------------
    def _process_buffer(self) -> None:
        if self.busy or self.closing or self.closed:
            return
        if not self.buffer:
            self.read_started = None
            self._cancel_read_timer()
            return
        started = time.perf_counter()
        request = self._try_parse()
        if request is None:
            # Partial request (or the parser failed the connection).
            if self.buffer and not self.closing and not self.closed:
                self._arm_read_timer()
            return
        self.metrics.parse.observe(time.perf_counter() - started)
        if self.read_started is not None:
            self.metrics.read.observe(time.perf_counter() - self.read_started)
            self.read_started = None
        self._cancel_read_timer()
        self.busy = True
        self.server.request_begun()
        try:
            self._handle(request)
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            self._finish(
                _plain_response(500, {"error": f"{type(exc).__name__}: {exc}"})
            )

    def _try_parse(self) -> _Request | None:
        """One request off the buffer, or None (partial / failed)."""
        buf = self.buffer
        head_end = buf.find(b"\r\n\r\n")
        if head_end < 0:
            if len(buf) > MAX_HEAD_BYTES:
                self._fail(431, "request head too large")
            return None
        lines = bytes(buf[:head_end]).split(b"\r\n")
        try:
            parts = lines[0].decode("latin-1").split()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            parts = []
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            self._fail(400, f"malformed request line: {lines[0][:80]!r}")
            return None
        method, target, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(b":")
            if not sep:
                self._fail(400, f"malformed header line: {line[:80]!r}")
                return None
            headers[name.decode("latin-1").strip().lower()] = value.decode(
                "latin-1"
            ).strip()
        if "transfer-encoding" in headers:
            self._fail(501, "chunked request bodies are not supported")
            return None
        length = 0
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                self._fail(400, f"malformed Content-Length header: {raw_length!r}")
                return None
            if length < 0:
                self._fail(400, f"malformed Content-Length header: {raw_length!r}")
                return None
        if length > MAX_BODY_BYTES:
            self._fail(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        total = head_end + 4 + length
        if len(buf) < total:
            return None
        body = bytes(buf[head_end + 4 : total])
        del buf[:total]
        return _Request(method, target, version, headers, body)

    def _arm_read_timer(self) -> None:
        deadline = self.server.read_deadline
        if self.read_timer is None and deadline is not None:
            self.read_timer = self.server._loop.call_later(
                deadline, self._read_timed_out
            )

    def _cancel_read_timer(self) -> None:
        if self.read_timer is not None:
            self.read_timer.cancel()
            self.read_timer = None

    def _read_timed_out(self) -> None:
        self.read_timer = None
        if self.busy or self.closed or self.closing or not self.buffer:
            return
        self.metrics.count_read_timeout()
        self._fail(408, "request read timed out", count_bad=False)

    def _fail(self, status: int, message: str, *, count_bad: bool = True) -> None:
        """Answer a wire-level error and close; the connection state is
        unknown (unread body bytes, garbage framing), so reuse is unsafe."""
        if count_bad:
            self.metrics.count_bad_request()
        self.closing = True
        self.buffer.clear()
        self._cancel_read_timer()
        if not self.closed and self.transport is not None:
            payload = json.dumps({"error": message}).encode("utf-8")
            self.transport.write(
                self.server._head(status, len(payload), None, close=True) + payload
            )
            self.transport.close()

    # -- routing -----------------------------------------------------------
    def _handle(self, request: _Request) -> None:
        if request.version == "HTTP/1.0" and request.headers.get(
            "connection", ""
        ).lower() != "keep-alive":
            self.closing = True
        elif request.headers.get("connection", "").lower() == "close":
            self.closing = True
        url = urlsplit(request.target)
        if request.method == "GET":
            if url.path == "/rank":
                self._handle_rank(request, url.query)
            elif url.path == "/healthz":
                self._finish(_plain_response(200, self.service.health()))
            elif url.path == "/readyz":
                status, body = self.service.readiness()
                self._finish(_plain_response(status, body))
            elif url.path == "/metrics":
                self._finish(_plain_response(200, self.service.metrics_snapshot()))
            else:
                self._finish(
                    _plain_response(404, {"error": f"unknown path {url.path!r}"})
                )
        elif request.method == "POST":
            if url.path != "/context":
                self._finish(
                    _plain_response(404, {"error": f"unknown path {url.path!r}"})
                )
                return
            self._handle_context(request)
        else:
            self._finish(
                _plain_response(
                    501, {"error": f"unsupported method {request.method!r}"}
                )
            )

    def _handle_rank(self, request: _Request, query: str) -> None:
        params = parse_qs(query, keep_blank_values=True)
        header_timeout = request.headers.get("x-request-timeout")
        if header_timeout is not None and "timeout" not in params:
            params["timeout"] = [header_timeout]
        attempt = self.service.begin_rank(params)
        if attempt.response is not None:
            # Parse 400 or pure cache hit: answered on the loop.
            self._finish(attempt.response, chaos=True)
            return
        server = self.server
        if server._pending_dispatch >= server.dispatch_limit:
            # The executor queue is saturated: more queueing is pure
            # latency debt, so shed on the loop (stale when allowed).
            self._finish(self.service.shed_inline(attempt), chaos=True)
            return
        self._dispatch(
            lambda budget: self.service.finish_rank(attempt, queue_budget=budget),
            chaos=True,
        )

    def _handle_context(self, request: _Request) -> None:
        if not request.body:
            self._finish(_plain_response(400, {"error": "request body required"}))
            return
        try:
            payload = json.loads(request.body)
        except json.JSONDecodeError as exc:
            self._finish(_plain_response(400, {"error": f"invalid JSON body: {exc}"}))
            return
        if not isinstance(payload, dict) or "tenant" not in payload:
            self._finish(
                _plain_response(
                    400, {"error": "body must be {'tenant': ..., 'context': [...]}"}
                )
            )
            return
        context = payload.get("context", [])
        if isinstance(context, str):
            context = [context]
        if not isinstance(context, list):
            self._finish(
                _plain_response(
                    400,
                    {"error": "'context' must be a list of CONCEPT[:PROB] strings"},
                )
            )
            return
        tenant = str(payload["tenant"])
        self._dispatch(lambda budget: self.service.install_context(tenant, context))  # noqa: ARG005

    # -- off-loop dispatch ---------------------------------------------------
    def _dispatch(self, call, *, chaos: bool = False) -> None:
        """Run one blocking pipeline call on the gateway executor.

        The completion callback re-enters the loop and re-arms the
        connection for write; wait time in the executor queue is
        subtracted from the admission budget passed to ``call``.
        """
        server = self.server
        server._pending_dispatch += 1
        dispatched_at = time.perf_counter()
        loop = server._loop
        queue_timeout = self.service.config.queue_timeout

        def run() -> None:
            waited = time.perf_counter() - dispatched_at
            budget = max(0.0, queue_timeout - waited)
            try:
                response = call(budget)
            except Exception as exc:  # noqa: BLE001 - the gateway must answer
                response = _plain_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            try:
                loop.call_soon_threadsafe(done, response)
            except RuntimeError:  # pragma: no cover - loop force-stopped
                server._note_dispatch_done()

        def done(response: ServiceResponse) -> None:
            server._pending_dispatch -= 1
            self._finish(response, chaos=chaos)

        server._executor.submit(run)

    # -- responding ----------------------------------------------------------
    def _finish(self, response: ServiceResponse, *, chaos: bool = False) -> None:
        """Write one response and re-arm the connection (loop thread)."""
        if not self.closed and self.transport is not None:
            close = self.closing or self.server._draining
            started = time.perf_counter()
            payload = response.encoded()
            head = self.server._head(
                response.status, len(payload), response.headers, close=close
            )
            self.transport.write(head + payload)
            self.metrics.write.observe(time.perf_counter() - started)
            self.metrics.count_request()
        self.busy = False
        self.server.request_done()
        if chaos:
            # After the response is on the wire: the chaos hook that
            # periodically SIGKILLs this worker mid-traffic (noop when
            # fault injection is inactive).
            self.service.fault_injector.maybe_kill_worker()
        if self.closed:
            return
        if self.closing or self.server._draining:
            self.transport.close()
            return
        if self.buffer:
            # Pipelined request already buffered: re-enter via the loop
            # (not recursion) so other connections get a turn first.
            self.read_started = time.perf_counter()
            self.server._loop.call_soon(self._process_buffer)
        else:
            self.read_started = None


def _plain_response(status: int, body: dict) -> ServiceResponse:
    return ServiceResponse(status=status, body=body)


class AioRankingServer:
    """An event-loop HTTP front bound to one :class:`RankingService`.

    API-compatible with :class:`~repro.service.http.RankingHTTPServer`
    where the fleet and the tests touch it: ``socket`` /
    ``server_address`` / ``server_name`` / ``server_port`` (so
    ``_adopt_socket`` + ``server_activate`` work), ``serve_forever``,
    thread-safe ``shutdown`` (blocks until the loop exits, after an
    in-loop graceful drain bounded by ``drain_grace``), ``drain``,
    ``server_close``, ``inflight`` and ``url``.

    ``read_deadline`` bounds how long a connection may sit on a
    partial request (408 + close); ``dispatch_limit`` bounds requests
    queued for the gateway executor before the loop sheds inline.
    """

    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: RankingService,
        *,
        verbose: bool = False,
        bind_and_activate: bool = True,
        read_deadline: float | None = DEFAULT_READ_DEADLINE,
        dispatch_limit: int | None = None,
    ):
        self.service = service
        self.verbose = verbose
        self.read_deadline = read_deadline
        self.drain_grace = 5.0
        self.gateway_metrics = GatewayMetrics()
        service.attach_gateway(self._gateway_section)
        self.socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.server_address = tuple(address[:2])
        self.server_name = socket.getfqdn(address[0])
        self.server_port = address[1]
        if bind_and_activate:
            try:
                self.socket.bind(address)
                self.server_address = self.socket.getsockname()[:2]
                self.server_name = socket.getfqdn(self.server_address[0])
                self.server_port = self.server_address[1]
                self.server_activate()
            except BaseException:
                self.socket.close()
                raise
        width = max(1, service.config.max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="repro-gw"
        )
        self.dispatch_limit = (
            dispatch_limit if dispatch_limit is not None else max(256, width * 16)
        )
        self._pending_dispatch = 0  # loop-thread only
        self._connections: set[_HttpConnection] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._draining = False
        self._shutdown_requested = threading.Event()
        self._stopped = threading.Event()
        self._stopped.set()  # not running yet
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._date_cache: tuple[int, bytes] = (0, b"")

    # -- socket surface (matches socketserver for _adopt_socket) -----------
    def server_activate(self) -> None:
        self.socket.listen(128)

    # -- inflight accounting (same contract as RankingHTTPServer) ----------
    def request_begun(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def request_done(self) -> None:
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _note_dispatch_done(self) -> None:
        # Fallback for a dispatch completing after the loop died.
        self.request_done()

    # -- response head -------------------------------------------------------
    def _head(
        self,
        status: int,
        length: int,
        headers: dict[str, str] | None,
        *,
        close: bool = False,
    ) -> bytes:
        now = int(time.time())
        if self._date_cache[0] != now:
            from email.utils import formatdate

            self._date_cache = (now, formatdate(now, usegmt=True).encode("latin-1"))
        lines = [
            f"HTTP/1.1 {status} {_reason(status)}\r\n"
            f"Server: {SERVER_VERSION}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {length}\r\n".encode("latin-1"),
            b"Date: " + self._date_cache[1] + b"\r\n",
        ]
        if headers:
            for name, value in headers.items():
                lines.append(f"{name}: {value}\r\n".encode("latin-1"))
        if close:
            lines.append(b"Connection: close\r\n")
        lines.append(b"\r\n")
        return b"".join(lines)

    # -- lifecycle -----------------------------------------------------------
    def serve_forever(self, poll_interval: float | None = None) -> None:  # noqa: ARG002
        """Run the loop until :meth:`shutdown` (blocking, on this thread)."""
        self._stopped.clear()
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._wake = asyncio.Event()
        task = None
        try:
            task = loop.create_task(self._run())
            loop.run_until_complete(task)
        except BaseException:
            # Interrupted mid-run (KeyboardInterrupt through the signal
            # handler): the graceful path inside _run has not executed,
            # and once this loop dies nothing in flight can finish — so
            # trigger shutdown and run the task to completion first.
            if task is not None and not task.done():
                self._shutdown_requested.set()
                self._wake.set()
                try:
                    loop.run_until_complete(
                        asyncio.wait_for(task, self.drain_grace + 1.0)
                    )
                except BaseException:  # second interrupt / drain overrun
                    task.cancel()
                    try:
                        loop.run_until_complete(
                            asyncio.gather(task, return_exceptions=True)
                        )
                    except BaseException:  # pragma: no cover - teardown
                        pass
            raise
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            loop.close()
            self._loop = None
            self._stopped.set()

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        if self._shutdown_requested.is_set():
            return
        server = await loop.create_server(
            lambda: _HttpConnection(self),
            sock=self.socket,
            backlog=128,
            start_serving=True,
        )
        lag_task = loop.create_task(self._watch_lag())
        try:
            await self._wake.wait()
        finally:
            lag_task.cancel()
            self._draining = True
            server.close()
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            # Idle keep-alive connections close now; busy ones after
            # their in-flight response is written (see _finish).
            for conn in list(self._connections):
                if not conn.busy and conn.transport is not None:
                    conn.transport.close()
            deadline = loop.time() + max(0.0, self.drain_grace)
            while (
                (self.inflight > 0 or self._pending_dispatch > 0)
                and loop.time() < deadline
            ):
                await asyncio.sleep(0.01)
            for conn in list(self._connections):
                if conn.transport is not None:
                    conn.transport.abort()
            # One last turn of the loop so aborted transports settle.
            await asyncio.sleep(0)

    async def _watch_lag(self, interval: float = 0.25) -> None:
        """Measure how late the loop's timers fire (loop lag)."""
        loop = asyncio.get_running_loop()
        while True:
            started = loop.time()
            await asyncio.sleep(interval)
            self.gateway_metrics.loop_lag.observe(
                max(0.0, loop.time() - started - interval)
            )

    def shutdown(self) -> None:
        """Stop accepting, drain in-loop, stop the loop (thread-safe).

        Blocks until ``serve_forever`` has returned — like
        ``socketserver.shutdown`` — so callers can ``drain`` and
        ``server_close`` immediately after.
        """
        self._shutdown_requested.set()
        loop, wake = self._loop, self._wake
        if loop is not None and wake is not None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:  # loop already closed
                pass
        self._stopped.wait()

    def drain(self, grace: float, settle: float = 0.05) -> bool:
        """Wait up to ``grace`` seconds for in-flight requests to finish.

        The loop's own shutdown already drains (bounded by
        ``drain_grace``); this is the cross-thread confirmation with
        the same settle discipline as the threading gateway.
        """
        deadline = time.monotonic() + max(0.0, grace)
        while True:
            if not self._idle.wait(timeout=max(0.0, deadline - time.monotonic())):
                return False
            time.sleep(min(settle, max(0.0, deadline - time.monotonic())))
            if self.inflight == 0:
                return True

    def server_close(self) -> None:
        self._shutdown_requested.set()
        try:
            self.socket.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._executor.shutdown(wait=False)
        self.service.attach_gateway(None)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def _gateway_section(self) -> dict:
        section = self.gateway_metrics.snapshot()
        section["kind"] = "aio"
        section["dispatch_limit"] = self.dispatch_limit
        section["read_deadline"] = self.read_deadline
        return section


def make_aio_server(
    service: RankingService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> AioRankingServer:
    """Bind (but do not run) an event-loop gateway; ``port=0`` works.

    Same contract as :func:`repro.service.http.make_server`: callers
    own the lifecycle — ``serve_forever()`` on a thread of their
    choosing, ``shutdown()`` + ``server_close()`` to stop.
    """
    return AioRankingServer((host, port), service, verbose=verbose)


def serve(
    service: RankingService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    grace: float = 5.0,
    ready=None,
) -> int:
    """Run the event-loop gateway until interrupted (mirror of
    :func:`repro.service.http.serve`, same signals, same exit code)."""
    import signal as _signal

    server = make_aio_server(service, host, port, verbose=verbose)
    server.drain_grace = grace
    if ready is not None:
        ready(server)

    def _interrupt(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    try:
        previous_term = _signal.signal(_signal.SIGTERM, _interrupt)
    except ValueError:  # not on the main thread (embedded use)
        previous_term = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_term is not None:
            _signal.signal(_signal.SIGTERM, previous_term)
        server.shutdown()
        server.drain(grace)
        service.close()
        server.server_close()
    return 0
