"""Cross-request micro-batching: one kernel pass for many concurrent ranks.

The dynamic-batching pattern every inference stack uses, applied to the
factorised scorer: concurrent requests whose snapshots share a compiled
``P(f)`` matrix (:meth:`RankingEngine.prepare_rank` groups them by
basis key) wait up to ``max_wait_us`` for batch-mates, then one fused
:func:`~repro.engine.engine.score_prepared_batch` pass scores the whole
group — N matrix walks collapse into one, and mates with an equal
coefficient vector (:attr:`ScoringKernel.coalesce_key`, tenant-blind)
coalesce onto a single scored row.

**Leader/follower, no background thread.**  The first request to open a
group becomes its *leader*: it waits on the scheduler condition until
the group reaches ``max_batch_size``, the batching window closes, or
some member's :class:`~repro.service.resilience.Deadline` would
otherwise be overrun (a *deadline-forced* flush — the scheduler never
holds a request past its deadline).  The leader then takes the group,
runs the batched pass on its own thread, and hands each follower its
scored view through a per-entry event.  No daemon thread means nothing
to leak across ``fork()`` into fleet workers, and flush throughput
scales with the rank pool instead of serialising on one consumer.

**Failure containment.**  A request whose deadline expires while queued
is cancelled in place — it raises
:class:`~repro.service.resilience.DeadlineExceeded` (its 504/stale
answer) without ever entering a kernel pass.  If a batched pass blows
up on a non-deadline error, the leader re-scores each taken entry
individually so one poisoned mate cannot fail the whole batch; a
deadline abort mid-pass (only possible when *every* mate is out of
budget — the pass runs under the longest member deadline) propagates to
all of them.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Hashable, Mapping

from repro.engine.engine import PreparedRank, score_prepared_batch
from repro.errors import EngineConfigError
from repro.service.metrics import LatencyRecorder
from repro.service.resilience import Deadline, DeadlineExceeded, deadline_scope

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.scoring import DocumentScore

__all__ = ["BatchScheduler"]

_PENDING, _TAKEN, _CANCELLED = 0, 1, 2

#: A deadline-forced flush fires this many seconds *before* the
#: earliest member deadline, so the kernel pass itself still has
#: budget — flushing exactly at the deadline would manufacture a
#: guaranteed 504 out of a request that queued patiently.
_FLUSH_MARGIN = 0.010


class _Entry:
    """One queued request: its snapshot, deadline and completion event."""

    __slots__ = ("prepared", "deadline", "event", "state", "result", "error", "enqueued")

    def __init__(self, prepared: PreparedRank, deadline: Deadline | None):
        self.prepared = prepared
        self.deadline = deadline
        self.event = threading.Event()
        self.state = _PENDING
        self.result: Mapping[str, "DocumentScore"] | None = None
        self.error: BaseException | None = None
        self.enqueued = time.perf_counter()


class _Group:
    """One open batch: entries accumulating behind a waiting leader."""

    __slots__ = ("key", "entries")

    def __init__(self, key: Hashable):
        self.key = key
        self.entries: list[_Entry] = []


class BatchScheduler:
    """Coalesce concurrent prepared ranks into fused kernel passes.

    ``execute`` blocks the calling thread until its request is scored
    (alone, as a follower, or as the leader of its batch) and returns
    the scored view to feed :meth:`PreparedRank.complete`.  The bounded
    queue (``queue_limit`` waiting entries) and the ``close()`` state
    both degrade gracefully: overflow and post-close requests are
    scored sequentially on the caller's thread, never rejected.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_us: float = 1000.0,
        queue_limit: int = 256,
    ):
        if max_batch_size < 2:
            raise EngineConfigError(
                f"batching needs max_batch_size >= 2, got {max_batch_size!r}"
            )
        if max_wait_us < 0:
            raise EngineConfigError(
                f"batch max_wait_us must be non-negative, got {max_wait_us!r}"
            )
        if queue_limit < 1:
            raise EngineConfigError(
                f"batch queue_limit must be positive, got {queue_limit!r}"
            )
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_us / 1e6
        self.queue_limit = queue_limit
        self._cond = threading.Condition()
        self._groups: dict[Hashable, _Group] = {}
        self._waiting = 0
        self._closed = False
        # -- counters (all mutated under the condition lock) -------------
        self._requests = 0
        self._batches = 0
        self._rows = 0
        self._coalesced = 0
        self._deadline_flushes = 0
        self._expired_in_queue = 0
        self._bypass_singleton = 0
        self._bypass_overflow = 0
        self._bypass_closed = 0
        self._size_histogram: dict[int, int] = {}
        self._queue_wait = LatencyRecorder()
        self._flush_seconds = LatencyRecorder()

    # -- the request path --------------------------------------------------
    def execute(
        self, prepared: PreparedRank, deadline: Deadline | None = None
    ) -> Mapping[str, "DocumentScore"]:
        """Score one prepared request, batched with concurrent mates.

        Raises :class:`DeadlineExceeded` — before any kernel work — for
        a request that is already, or becomes, out of budget while
        queued.  Any error raised by the scoring pass itself propagates
        on the calling thread exactly as the sequential path would.
        """
        if deadline is not None and deadline.expired():
            with self._cond:
                self._requests += 1
                self._expired_in_queue += 1
            raise DeadlineExceeded(
                f"deadline exceeded before batching: {deadline.timeout:.3f}s budget spent"
            )
        with self._cond:
            self._requests += 1
            if self._closed:
                self._bypass_closed += 1
                bypass = True
            elif self._waiting >= self.queue_limit:
                self._bypass_overflow += 1
                bypass = True
            else:
                bypass = False
            if not bypass:
                group = self._groups.get(prepared.group_key)
                entry = _Entry(prepared, deadline)
                if group is None:
                    group = _Group(prepared.group_key)
                    group.entries.append(entry)
                    self._groups[prepared.group_key] = group
                    self._waiting += 1
                    leader = True
                else:
                    group.entries.append(entry)
                    self._waiting += 1
                    leader = False
                    self._cond.notify_all()
        if bypass:
            return self._score_single(prepared)
        if leader:
            return self._lead(group, entry)
        return self._follow(entry)

    def _lead(self, group: _Group, entry: _Entry) -> Mapping[str, "DocumentScore"]:
        """Wait out the batching window, flush the group, serve everyone."""
        window_end = entry.enqueued + self.max_wait
        deadline_forced = False
        with self._cond:
            while not self._closed and len(group.entries) < self.max_batch_size:
                now = time.perf_counter()
                budget = window_end - now
                horizon = (
                    min(
                        (
                            member.deadline.remaining()
                            for member in group.entries
                            if member.state == _PENDING and member.deadline is not None
                        ),
                        default=float("inf"),
                    )
                    - _FLUSH_MARGIN
                )
                timeout = min(budget, horizon)
                if timeout <= 0:
                    deadline_forced = horizon < budget
                    break
                self._cond.wait(timeout)
            if self._groups.get(group.key) is group:
                del self._groups[group.key]
            taken = [member for member in group.entries if member.state == _PENDING]
            for member in taken:
                member.state = _TAKEN
            self._waiting -= len(taken)
            self._batches += 1
            size = len(taken)
            self._size_histogram[size] = self._size_histogram.get(size, 0) + 1
            if size == 1:
                self._bypass_singleton += 1
            if deadline_forced:
                self._deadline_flushes += 1
            flushed_at = time.perf_counter()
            for member in taken:
                self._queue_wait.observe(flushed_at - member.enqueued)
        self._score_group(taken)
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _follow(self, entry: _Entry) -> Mapping[str, "DocumentScore"]:
        """Wait for the leader's flush; cancel in place on deadline."""
        timeout = entry.deadline.remaining() if entry.deadline is not None else None
        if not entry.event.wait(timeout):
            with self._cond:
                if entry.state == _PENDING:
                    entry.state = _CANCELLED
                    self._waiting -= 1
                    self._expired_in_queue += 1
                    raise DeadlineExceeded(
                        f"deadline exceeded while queued for batching: "
                        f"{entry.deadline.timeout:.3f}s budget spent"
                    )
            # Taken between the timeout and the cancel: the pass already
            # includes this request — its answer is moments away (the
            # leader's finally always fires the event).
            entry.event.wait()
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _score_group(self, taken: list[_Entry]) -> None:
        """One fused pass for the flushed entries; errors contained.

        The pass runs under the *longest* member deadline, so it aborts
        only when every mate is out of budget; the leader's own
        (possibly shorter) ambient deadline never kills its mates.
        """
        if not taken:
            return
        horizon: Deadline | None = None
        for member in taken:
            if member.deadline is None:
                horizon = None
                break
            if horizon is None or member.deadline.expires_at > horizon.expires_at:
                horizon = member.deadline
        started = time.perf_counter()
        rows = 0
        try:
            try:
                with deadline_scope(horizon):
                    results, rows = score_prepared_batch(
                        [member.prepared for member in taken]
                    )
            except DeadlineExceeded as exc:
                for member in taken:
                    member.error = exc
                return
            except Exception:  # noqa: BLE001 - contain one poisoned mate
                # Re-score each entry alone so a fault injected into (or
                # triggered by) one mate cannot fail the whole batch.
                for member in taken:
                    try:
                        member.result = self._score_single(member.prepared)
                        rows += 1
                    except BaseException as exc:  # noqa: BLE001
                        member.error = exc
                return
            for member, result in zip(taken, results):
                member.result = result
        finally:
            with self._cond:
                self._flush_seconds.observe(time.perf_counter() - started)
                self._rows += rows
                self._coalesced += max(0, len(taken) - rows)
            for member in taken:
                member.event.set()

    @staticmethod
    def _score_single(prepared: PreparedRank) -> Mapping[str, "DocumentScore"]:
        results, _rows = score_prepared_batch([prepared])
        return results[0]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop batching: wake every leader so open groups flush now.

        Leaders are live caller threads waiting inside :meth:`execute`,
        so marking the scheduler closed and notifying is a full drain —
        every queued entry is flushed by its own leader.  Requests
        arriving after close are scored sequentially on their thread.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- observability -----------------------------------------------------
    def snapshot(self) -> dict:
        """The ``/metrics`` ``batching`` section."""
        with self._cond:
            requests = self._requests
            batched = sum(size * count for size, count in self._size_histogram.items())
            rows = self._rows
            snapshot = {
                "enabled": True,
                "max_batch_size": self.max_batch_size,
                "max_wait_us": self.max_wait * 1e6,
                "queue_limit": self.queue_limit,
                "requests": requests,
                "batches": self._batches,
                "batched_requests": batched,
                "rows_scored": rows,
                "coalesced": self._coalesced,
                "coalesce_ratio": (batched - rows) / batched if batched else 0.0,
                "deadline_flushes": self._deadline_flushes,
                "expired_in_queue": self._expired_in_queue,
                "bypass": {
                    "singleton_flushes": self._bypass_singleton,
                    "overflow": self._bypass_overflow,
                    "closed": self._bypass_closed,
                },
                "batch_size_histogram": dict(sorted(self._size_histogram.items())),
                "waiting": self._waiting,
            }
        snapshot["queue_wait"] = self._queue_wait.summary()
        snapshot["flush"] = self._flush_seconds.summary()
        return snapshot
