"""The :class:`RankingService` request pipeline.

The paper's tvtouch scenario is an always-on service: one shared domain
ontology, many users, volatile context arriving *with each request*.
This module is that request path, staged and instrumented::

    parse → cache → breaker → admit → resolve → context → rank → render

* **parse** — normalise raw parameters (query string or JSON body)
  into a frozen :class:`ServiceRequest`; malformed input is a 400
  before any shared resource is touched.  The request's deadline is
  derived here too (``ServiceConfig.request_timeout``, client override
  clamped by ``max_request_timeout``).
* **cache** — the response-cache lookup (:mod:`repro.cache`): derive
  the key this request would rank under from the tenant's learned
  view digest and the canonicalised query, and probe the adapter.  A
  *pure* hit (no context delta to install) is served here, before
  admission — a hit is a dict copy, too cheap to shed.  A hit on a
  delta request still passes through admit/resolve so the delta can
  be installed as the tenant's standing context (the client-visible
  side effect of ``/rank?context=...``) before the body is served —
  and is served only if the ledger's prediction is confirmed against
  the just-installed engine fingerprint.  Misses fall through and
  fill the cache after **render**; invalidation is by reachability
  (any context change moves the tenant to a new view digest — see
  :mod:`repro.cache.keys`) plus eviction hooks and
  :meth:`RankingService.invalidate_tenant`.
* **breaker** — the circuit breaker (:mod:`repro.service.resilience`):
  when rank failures or timeouts have spiked for this tenant (or
  globally), the request is shed *before* admission — answered from
  stale cache when possible, a 503 with ``Retry-After`` otherwise.
* **admit** — admission control: a bounded semaphore caps in-flight
  rank work; a request that cannot be admitted within
  ``queue_timeout`` (or its remaining deadline, whichever is shorter)
  is rejected with a 503 instead of piling onto an overloaded process
  (load shedding, not unbounded queueing) — again serving stale when
  the cache has a recent enough body.
* **resolve** — a *pinned* checkout of the tenant's session from the
  sharded :class:`~repro.tenants.TenantRegistry`; the pin guarantees
  LRU eviction can never yank the overlay from an in-flight request.
* **context** — validate every spec of the per-request context delta
  (``None`` keeps the tenant's standing context); a bad spec is a 400
  *here*, with the tenant's standing context untouched (and the
  engine's own install validates-before-clearing too, so no error
  path can leave a half-installed context).
* **rank** — :meth:`UserSession.rank_in_context`: delta install and
  rank under one hold of the engine lock, atomic per tenant.  With a
  deadline, the whole unit runs on a bounded executor: the gateway
  thread waits at most the remaining budget and answers 504 (or
  stale) on expiry, while ownership of the admission slot and the
  session pin transfers to the work unit — a wedged rank can *never*
  leak either, and the scoring kernel checks the deadline
  cooperatively between candidate blocks so abandoned work unwinds
  quickly instead of running to completion.
* **render** — the ranked items as a JSON-able body.

Every stage's latency lands in :class:`~repro.service.metrics.ServiceMetrics`
(the ``GET /metrics`` surface), plus an end-to-end ``total`` recorder.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.cache.keys import KeyLookup, ResponseKeyer, response_key
from repro.cache.none import NoCacheAdapter
from repro.cache.protocol import CacheAdapter
from repro.engine.backends import parse_context_spec
from repro.engine.requests import RankRequest
from repro.errors import EngineError, ReproError
from repro.service.batching import BatchScheduler
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import (
    BreakerDecision,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    SharedFleetState,
    clamp_timeout,
    current_deadline,
    deadline_scope,
)
from repro.tenants.registry import TenantRegistry

__all__ = [
    "RankAttempt",
    "RankingService",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "STAGES",
]

#: Pipeline stages, in request order (``total`` is recorded on top).
STAGES = ("parse", "cache", "breaker", "admit", "resolve", "context", "rank", "render")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving pipeline.

    ``max_concurrency`` bounds in-flight rank work (admission
    semaphore); ``queue_timeout`` is how long a request may wait for
    admission before being shed with a 503.  ``include_timings``
    attaches per-stage latencies to every response body (handy for
    tracing, off by default to keep payloads lean).

    Resilience tunables: ``request_timeout`` is the default per-request
    deadline (``None`` disables deadlines and the rank executor
    entirely); a client's ``timeout`` parameter / ``X-Request-Timeout``
    header is clamped into ``[min_request_timeout, max_request_timeout]``
    (the floor keeps a near-zero client timeout from manufacturing
    guaranteed 504s).  ``serve_stale``
    allows degraded-mode answers from the response cache (recently
    expired or digest-stale bodies no older than ``stale_max_age``
    seconds) on overload, breaker-open, engine error or deadline
    expiry.  The ``breaker_*`` knobs shape the per-tenant + global
    circuit breaker (see :class:`~repro.service.resilience.CircuitBreaker`).

    Batching tunables: ``batch_max_size >= 2`` enables cross-request
    micro-batching (see :class:`~repro.service.batching.BatchScheduler`)
    — concurrent ranks sharing a compiled candidate matrix coalesce
    into one fused kernel pass, flushed at ``batch_max_size`` members
    or after ``batch_max_wait_us`` microseconds, whichever first (and
    never past a member's deadline).  ``batch_queue_limit`` bounds the
    total entries waiting in open batches; overflow scores sequentially.
    """

    max_concurrency: int = 8
    queue_timeout: float = 0.25
    default_top_k: int | None = None
    include_timings: bool = False
    request_timeout: float | None = 2.0
    min_request_timeout: float = 0.05
    max_request_timeout: float = 30.0
    serve_stale: bool = True
    stale_max_age: float = 300.0
    breaker_enabled: bool = True
    breaker_window: float = 10.0
    breaker_min_requests: int = 10
    breaker_failure_threshold: float = 0.5
    breaker_cooldown: float = 5.0
    breaker_jitter: float = 0.2
    batch_max_size: int = 0
    batch_max_wait_us: float = 1000.0
    batch_queue_limit: int = 256

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise EngineError(
                f"max_concurrency must be positive, got {self.max_concurrency!r}"
            )
        if self.queue_timeout < 0:
            raise EngineError(
                f"queue_timeout must be non-negative, got {self.queue_timeout!r}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise EngineError(
                f"request_timeout must be positive or None, got {self.request_timeout!r}"
            )
        if self.max_request_timeout <= 0:
            raise EngineError(
                f"max_request_timeout must be positive, got {self.max_request_timeout!r}"
            )
        if not 0 <= self.min_request_timeout <= self.max_request_timeout:
            raise EngineError(
                f"min_request_timeout must be in [0, max_request_timeout], got "
                f"{self.min_request_timeout!r} (max {self.max_request_timeout!r})"
            )
        if self.stale_max_age < 0:
            raise EngineError(
                f"stale_max_age must be non-negative, got {self.stale_max_age!r}"
            )
        if self.batch_max_size < 0:
            raise EngineError(
                f"batch_max_size must be non-negative, got {self.batch_max_size!r}"
            )
        if self.batch_max_wait_us < 0:
            raise EngineError(
                f"batch_max_wait_us must be non-negative, got {self.batch_max_wait_us!r}"
            )
        if self.batch_queue_limit < 1:
            raise EngineError(
                f"batch_queue_limit must be positive, got {self.batch_queue_limit!r}"
            )


@dataclass(frozen=True)
class ServiceRequest:
    """One parsed ranking request.

    ``context=None`` keeps the tenant's standing context;
    ``context=()`` explicitly clears it (rank context-free).
    ``timeout`` is the client's per-request deadline override in
    seconds (clamped to ``ServiceConfig.max_request_timeout``; ignored
    when the deployment disabled deadlines).
    """

    tenant: str
    context: tuple[str, ...] | None = None
    top_k: int | None = None
    documents: tuple[str, ...] | None = None
    explain: bool = False
    timeout: float | None = None

    @classmethod
    def from_params(cls, params: Mapping[str, Sequence[str]]) -> "ServiceRequest":
        """Build from query-string shaped parameters (``parse_qs`` output).

        Recognised keys: ``tenant`` (required), ``context``
        (repeatable, ``CONCEPT[:PROB]``), ``top_k``, ``documents``
        (repeatable and/or comma-separated), ``explain``, ``timeout``
        (seconds, positive).
        """
        known = {"tenant", "context", "top_k", "documents", "explain", "timeout"}
        unknown = set(params) - known
        if unknown:
            raise EngineError(
                f"unknown rank parameters {sorted(unknown)}; known: {sorted(known)}"
            )
        tenants = list(params.get("tenant", ()))
        if len(tenants) != 1 or not str(tenants[0]).strip():
            raise EngineError("exactly one non-empty 'tenant' parameter is required")
        context: tuple[str, ...] | None = None
        if "context" in params:
            context = tuple(str(spec) for spec in params["context"])
        top_k = None
        if "top_k" in params:
            values = list(params["top_k"])
            try:
                top_k = int(values[-1])
            except (TypeError, ValueError):
                raise EngineError(
                    f"top_k must be an integer, got {values[-1]!r}"
                ) from None
        documents = None
        if "documents" in params:
            flattened = [
                part.strip()
                for value in params["documents"]
                for part in str(value).split(",")
                if part.strip()
            ]
            documents = tuple(flattened)
        explain = False
        if "explain" in params:
            explain = str(list(params["explain"])[-1]).lower() in ("1", "true", "yes")
        timeout = None
        if "timeout" in params:
            raw = list(params["timeout"])[-1]
            try:
                timeout = float(raw)
            except (TypeError, ValueError):
                raise EngineError(
                    f"timeout must be a number of seconds, got {raw!r}"
                ) from None
            if not timeout > 0 or not math.isfinite(timeout):
                raise EngineError(
                    f"timeout must be a positive finite number, got {raw!r}"
                )
        return cls(
            tenant=str(tenants[0]),
            context=context,
            top_k=top_k,
            documents=documents,
            explain=explain,
            timeout=timeout,
        )

    @classmethod
    def from_payload(cls, payload: object) -> "ServiceRequest":
        """Build from a JSON body (``POST``-shaped: plain values)."""
        if not isinstance(payload, Mapping):
            raise EngineError(f"request body must be a JSON object, got {payload!r}")
        params: dict[str, list[str]] = {}
        for key in ("tenant", "top_k", "explain", "timeout"):
            if key in payload:
                params[key] = [str(payload[key])]
        for key in ("context", "documents"):
            if key in payload:
                value = payload[key]
                if isinstance(value, str):
                    value = [value]
                if not isinstance(value, Iterable):
                    raise EngineError(f"'{key}' must be a list of strings, got {value!r}")
                params[key] = [str(item) for item in value]
        unknown = set(payload) - {
            "tenant", "context", "top_k", "documents", "explain", "timeout"
        }
        if unknown:
            raise EngineError(f"unknown request keys {sorted(unknown)}")
        return cls.from_params(params)


@dataclass(frozen=True)
class ServiceResponse:
    """One pipeline answer: an HTTP-ish status, a JSON-able body, timings.

    ``headers`` carries response headers the gateway must forward
    (``Retry-After`` on sheds, ``Warning: 110`` on stale serves).

    Gateways send :meth:`encoded` rather than ``json.dumps(body)``:
    the UTF-8 JSON encoding is computed at most once per response, and
    responses born from a cache hit arrive with ``precoded`` bytes the
    cache entry already carried — a repeat hit costs a dict copy and a
    socket write, never an encode.
    """

    status: int
    body: dict
    timings: dict[str, float] = field(default_factory=dict, compare=False)
    headers: dict[str, str] = field(default_factory=dict, compare=False)
    #: Pre-computed UTF-8 JSON of ``body``, when a cheaper path already
    #: had it (cache-hit serves).  Must match ``body`` exactly; anything
    #: that rewrites the body (``include_timings``) must drop it.
    precoded: bytes | None = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def encoded(self) -> bytes:
        """The body as UTF-8 JSON, encoded at most once and then cached."""
        data = self.precoded
        if data is None:
            data = json.dumps(self.body).encode("utf-8")
            # Frozen dataclass: memoise through object.__setattr__ (a
            # benign race — concurrent encoders produce equal bytes).
            object.__setattr__(self, "precoded", data)
        return data


class _CanonicalBody(dict):
    """A cache-stored canonical body that memoises its hit-serve bytes.

    ``hit_bytes`` is the UTF-8 JSON of this body decorated exactly as a
    standing-context hit serves it (``cached: true``, no per-request
    context echo) — computed on the first such hit and shared by every
    later one.  A plain ``dict`` to every consumer (the cache adapters
    treat stored bodies as opaque mappings); the slot rides along.
    """

    __slots__ = ("hit_bytes",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.hit_bytes: bytes | None = None


@dataclass
class RankAttempt:
    """The inline-safe prefix of one ranking request.

    :meth:`RankingService.begin_rank` runs the non-blocking stages —
    parse and the cache probe — and parks their results here.  When
    ``response`` is already set the request was answered without
    touching any contended resource (a parse 400, a pure cache hit)
    and an event-loop gateway may send it directly from the loop;
    otherwise the attempt must go to :meth:`RankingService.finish_rank`
    on a thread that may block (breaker / admission / rank).
    """

    clock: _StageClock
    request: ServiceRequest | None = None
    rank_request: RankRequest | None = None
    deadline: Deadline | None = None
    effective_timeout: float | None = None
    lookup: KeyLookup | None = None
    cached_body: dict | None = None
    response: ServiceResponse | None = None


class _Span:
    """One timed stage of a :class:`_StageClock` (a context manager)."""

    __slots__ = ("_clock", "_name", "_start")

    def __init__(self, clock: "_StageClock", name: str):
        self._clock = clock
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._clock.record(self._name, time.perf_counter() - self._start)
        return False


class _StageClock:
    """Accumulates per-stage wall time for one request.

    Locked: with a deadline, the work unit keeps timing stages on the
    executor thread after the gateway thread has timed out and gone to
    build the 504 — both sides touch the dict.
    """

    __slots__ = ("_timings", "_lock", "_started")

    def __init__(self):
        self._timings: dict[str, float] = {}
        self._lock = threading.Lock()
        self._started = time.perf_counter()

    def stage(self, name: str) -> _Span:
        return _Span(self, name)

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timings[name] = seconds

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return dict(self._timings)

    def total(self) -> float:
        return time.perf_counter() - self._started


class _ReleaseOnce:
    """Owns one admission slot (and, once attached, one session pin).

    Whoever finishes last — the work unit on the executor, or the
    gateway thread on a pre-submission error path — calls it; the
    first call releases, every later call is a no-op.  This is what
    makes slot accounting leak-proof under timeouts: ownership
    *transfers* to the submitted work instead of being released by a
    gateway thread that may already have abandoned the request.
    """

    __slots__ = ("_semaphore", "_checkout", "_lock", "_done")

    def __init__(self, semaphore: threading.Semaphore):
        self._semaphore = semaphore
        self._checkout = None
        self._lock = threading.Lock()
        self._done = False

    def attach_checkout(self, checkout) -> None:
        self._checkout = checkout

    def __call__(self) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
            checkout, self._checkout = self._checkout, None
        try:
            if checkout is not None:
                checkout.__exit__(None, None, None)
        finally:
            self._semaphore.release()


def _retry_after(seconds: float) -> dict[str, str]:
    return {"Retry-After": str(max(1, math.ceil(seconds)))}


#: The RFC 7234 stale-response warning attached to degraded serves.
_STALE_WARNING = '110 repro "Response is stale"'


class RankingService:
    """The concurrent request pipeline over a tenant fleet.

    One service fronts one :class:`~repro.tenants.TenantRegistry`;
    requests for any number of tenants flow through the staged pipeline
    concurrently, bounded by the admission semaphore.  The service
    itself is stateless beyond metrics — all ranking state lives in the
    registry's sessions — so it is safe to share one instance across
    every gateway thread.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        config: ServiceConfig | None = None,
        metrics: ServiceMetrics | None = None,
        cache: CacheAdapter | None = None,
        worker_info: Mapping[str, object] | None = None,
        fault_injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache: CacheAdapter = cache if cache is not None else NoCacheAdapter()
        #: Extra identity reported under ``worker`` in health/metrics
        #: (the fleet supervisor stamps worker index and bind mode).
        self.worker_info = dict(worker_info) if worker_info else {}
        self.fault_injector = (
            fault_injector if fault_injector is not None else FaultInjector()
        )
        if breaker is not None:
            self.breaker: CircuitBreaker | None = breaker
        elif self.config.breaker_enabled:
            self.breaker = CircuitBreaker(
                window=self.config.breaker_window,
                min_requests=self.config.breaker_min_requests,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown=self.config.breaker_cooldown,
                jitter=self.config.breaker_jitter,
                on_transition=self._breaker_transition,
            )
        else:
            self.breaker = None
        #: The fleet supervisor wires its cross-process state in after
        #: the fork; single-process deployments leave it None.
        self.fleet_state: SharedFleetState | None = None
        self._keyer = ResponseKeyer()
        if self.cache.enabled:
            # A session eviction drops the tenant's standing context,
            # so everything learned (and stored) for it must go too.
            self.registry.add_evict_listener(self._tenant_evicted)
        self._admission = threading.BoundedSemaphore(self.config.max_concurrency)
        # Rank work runs here when deadlines are on: sized to the
        # admission bound, so the executor can never be the narrower
        # throttle; threads spawn lazily on first use.
        self._rank_pool = (
            ThreadPoolExecutor(
                max_workers=self.config.max_concurrency,
                thread_name_prefix="repro-rank",
            )
            if self.config.request_timeout is not None
            else None
        )
        # Cross-request micro-batching (enabled with batch_max_size >= 2):
        # concurrent ranks sharing a candidate matrix fuse into one pass.
        self.batcher: BatchScheduler | None = (
            BatchScheduler(
                max_batch_size=self.config.batch_max_size,
                max_wait_us=self.config.batch_max_wait_us,
                queue_limit=self.config.batch_queue_limit,
            )
            if self.config.batch_max_size >= 2
            else None
        )
        #: The serving front's stats provider (see :meth:`attach_gateway`).
        self._gateway_stats: Callable[[], Mapping[str, object]] | None = None
        self._started_at = time.time()

    # -- the staged pipeline ----------------------------------------------
    def rank(self, request: ServiceRequest | Mapping[str, Sequence[str]]) -> ServiceResponse:
        """Answer one ranking request through the full pipeline.

        Accepts a parsed :class:`ServiceRequest` or raw query-string
        parameters (parsed as the ``parse`` stage).  Never raises for
        request-shaped failures: malformed input is a 400 body,
        admission overflow and breaker sheds a 503 (stale-served when
        possible), a blown deadline a 504, unexpected engine errors a
        500 — the gateway maps ``status`` straight onto HTTP.

        Thread-per-connection gateways call this; the event-loop
        gateway calls the same two halves itself — :meth:`begin_rank`
        inline on the loop, :meth:`finish_rank` on a worker thread.
        """
        attempt = self.begin_rank(request)
        if attempt.response is not None:
            return attempt.response
        return self.finish_rank(attempt)

    def begin_rank(
        self, request: ServiceRequest | Mapping[str, Sequence[str]]
    ) -> RankAttempt:
        """Run the inline-safe prefix: parse and the cache probe.

        Never blocks and never raises for request-shaped failures.
        Returns a :class:`RankAttempt`; when its ``response`` is set
        (parse 400, pure cache hit) the request is fully answered and
        :meth:`finish_rank` must *not* be called.  Both stages run
        exactly once per request regardless of which entry point the
        gateway used, so cache hit/miss accounting never double-counts.
        """
        clock = _StageClock()
        attempt = RankAttempt(clock=clock)
        try:
            with clock.stage("parse"):
                if not isinstance(request, ServiceRequest):
                    request = ServiceRequest.from_params(request)
                attempt.request = request
                top_k = request.top_k if request.top_k is not None else self.config.default_top_k
                attempt.rank_request = RankRequest(
                    documents=request.documents,
                    top_k=top_k,
                    explain=request.explain,
                )
                attempt.effective_timeout = clamp_timeout(
                    request.timeout,
                    self.config.request_timeout,
                    self.config.max_request_timeout,
                    self.config.min_request_timeout,
                )
                attempt.deadline = (
                    Deadline.after(attempt.effective_timeout)
                    if attempt.effective_timeout is not None and self._rank_pool is not None
                    else None
                )
        except ReproError as exc:
            attempt.response = self._reply(
                clock, 400, {"error": str(exc)}, outcome="bad_request"
            )
            return attempt

        if self.cache.enabled:
            with clock.stage("cache"):
                attempt.lookup = self._keyer.lookup(
                    request.tenant,
                    request.context,
                    request.documents,
                    top_k,
                    request.explain,
                )
                if attempt.lookup is not None:
                    attempt.cached_body = self.cache.get(attempt.lookup.key)
            if attempt.cached_body is not None and not attempt.lookup.needs_install:
                # Pure hit: the tenant's standing context already *is*
                # the state this body was ranked under — nothing to
                # install, no session to touch, no admission needed.
                # Served even while the breaker is open: a hit touches
                # nothing the breaker protects.
                with clock.stage("render"):
                    body, precoded = self._serve_hit(request, attempt.cached_body)
                attempt.response = self._reply(
                    clock, 200, body, outcome="ok_cached", cached=True, precoded=precoded
                )
        return attempt

    def shed_inline(self, attempt: RankAttempt) -> ServiceResponse:
        """Shed one begun request without touching any blocking stage.

        The event-loop gateway's overload valve: when its dispatch
        queue is saturated, queueing more work onto the rank executor
        only builds latency debt, so the request is answered on the
        loop — from stale cache when the policy allows it, a 503 with
        ``Retry-After`` otherwise — with the same counters the
        admission-shed path feeds, so dashboards need no new queries.
        """
        self.metrics.count("resilience", "shed")
        self.metrics.count("resilience", "shed.overload")
        stale = self._try_stale(
            attempt.clock, attempt.request, attempt.lookup, reason="overload"
        )
        if stale is not None:
            return stale
        return self._reply(
            attempt.clock,
            503,
            {
                "error": "service overloaded: gateway dispatch queue full",
                "max_concurrency": self.config.max_concurrency,
            },
            outcome="rejected",
            headers=_retry_after(max(0.1, self.config.queue_timeout)),
        )

    def finish_rank(
        self, attempt: RankAttempt, *, queue_budget: float | None = None
    ) -> ServiceResponse:
        """Run the blocking stages of a begun request to an answer.

        Breaker, admission, resolve, context, rank, render — may block
        on the admission semaphore and the rank executor, so an
        event-loop gateway calls it off-loop.  ``attempt`` must come
        from :meth:`begin_rank` with ``response`` unset.

        ``queue_budget`` replaces ``config.queue_timeout`` as the
        admission wait for this request: a gateway that already queued
        the attempt (the event loop's dispatch queue) passes the
        *remaining* budget, so total queueing before an overload shed
        matches the thread-per-connection gateway's semantics instead
        of paying the timeout twice.
        """
        clock = attempt.clock
        request = attempt.request
        rank_request = attempt.rank_request
        deadline = attempt.deadline
        effective_timeout = attempt.effective_timeout
        lookup = attempt.lookup
        cached_body = attempt.cached_body

        # While a breaker core is half-open, this request may *be* its
        # single probe; every termination path below must then settle
        # it — record an outcome, or cancel via _settle_probe — or the
        # probe slot leaks and the breaker never recovers.
        breaker_probe: BreakerDecision | None = None
        if self.breaker is not None:
            with clock.stage("breaker"):
                decision = self.breaker.allow(request.tenant)
            if decision.allowed and decision.probes:
                breaker_probe = decision
            if not decision.allowed:
                self.metrics.count("resilience", "shed")
                self.metrics.count("resilience", "shed.breaker")
                stale = self._try_stale(clock, request, lookup, reason="breaker_open")
                if stale is not None:
                    return stale
                retry = max(0.1, decision.retry_after)
                return self._reply(
                    clock,
                    503,
                    {
                        "error": (
                            f"circuit breaker open ({decision.scope}): "
                            f"recent rank failures; request shed"
                        ),
                        "breaker_scope": decision.scope,
                        "retry_after_seconds": retry,
                    },
                    outcome="shed_breaker",
                    headers=_retry_after(retry),
                )

        with clock.stage("admit"):
            admit_timeout = (
                self.config.queue_timeout if queue_budget is None else queue_budget
            )
            if deadline is not None:
                admit_timeout = min(admit_timeout, max(0.0, deadline.remaining()))
            admitted = self._admission.acquire(timeout=admit_timeout)
        if not admitted:
            self._settle_probe(breaker_probe)  # shed: no outcome will follow
            self.metrics.count("resilience", "shed")
            self.metrics.count("resilience", "shed.overload")
            stale = self._try_stale(clock, request, lookup, reason="overload")
            if stale is not None:
                return stale
            return self._reply(
                clock,
                503,
                {
                    "error": "service overloaded: admission queue timed out",
                    "max_concurrency": self.config.max_concurrency,
                },
                outcome="rejected",
                headers=_retry_after(max(0.1, self.config.queue_timeout)),
            )
        release = _ReleaseOnce(self._admission)
        submitted = False
        served_hit = False
        try:
            with clock.stage("resolve"):
                checkout = self.registry.checkout(request.tenant)
                session = checkout.__enter__()
                release.attach_checkout(checkout)
            with clock.stage("context"):
                # Pre-flight every spec: a bad one 400s here with
                # the tenant's standing context untouched.
                specs = request.context  # None keeps the standing context
                if specs is not None:
                    for spec in specs:
                        parse_context_spec(spec)

            def work() -> tuple[dict, bool]:
                self.fault_injector.before_rank(request.tenant)
                hit = False
                body: dict
                if cached_body is not None:
                    # Delta hit: install the delta (the client-visible
                    # side effect of /rank?context=...), then serve the
                    # body only if the ledger's prediction matches the
                    # just-installed engine truth.
                    with clock.stage("rank"):
                        session.install_context(*specs, tick="svc")
                        learned = self._keyer.learn(
                            lookup, session.engine.view_fingerprint()
                        )
                    if learned == lookup.view_digest:
                        hit = True
                        with clock.stage("render"):
                            body, _ = self._serve_hit(request, cached_body)
                if not hit:
                    with clock.stage("rank"):
                        # After a refuted delta hit the delta is already
                        # installed and standing — rank under it as-is.
                        rank_specs = None if cached_body is not None else specs
                        response = self._rank_session(
                            session, rank_specs, rank_request
                        )
                    with clock.stage("render"):
                        body = self._render(request, response)
                    if lookup is not None:
                        self._fill(lookup, response.fingerprint, body)
                return body, hit

            if deadline is not None:
                # Ownership of the slot + pin moves to the work unit;
                # this thread only waits out the remaining budget.
                future = self._rank_pool.submit(self._execute, work, deadline, release)
                submitted = True
                body, served_hit = future.result(
                    timeout=max(0.0, deadline.remaining())
                )
            else:
                body, served_hit = self._execute(work, None, release)
        except (_FutureTimeout, DeadlineExceeded):
            self.metrics.count("resilience", "timeouts")
            # A deadline the client shrank below the server default says
            # nothing about engine health: counting those 504s as breaker
            # failures would let one misconfigured (or hostile) client
            # open the *global* circuit and shed every tenant's traffic.
            client_shortened = (
                request.timeout is not None
                and self.config.request_timeout is not None
                and effective_timeout < self.config.request_timeout
            )
            if self.breaker is not None:
                if client_shortened:
                    self.metrics.count("resilience", "timeouts.client")
                    self._settle_probe(breaker_probe)
                else:
                    self.breaker.record_failure(request.tenant)
            stale = self._try_stale(clock, request, lookup, reason="deadline")
            if stale is not None:
                return stale
            return self._reply(
                clock,
                504,
                {
                    "error": (
                        f"deadline exceeded: rank did not finish within "
                        f"{effective_timeout:.3f}s"
                    ),
                    "timeout_seconds": effective_timeout,
                },
                outcome="timeout",
            )
        except ReproError as exc:
            self._settle_probe(breaker_probe)  # a 400 records no outcome
            return self._reply(clock, 400, {"error": str(exc)}, outcome="bad_request")
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            self.metrics.count("resilience", "rank_errors")
            if self.breaker is not None:
                self.breaker.record_failure(request.tenant)
            stale = self._try_stale(clock, request, lookup, reason="error")
            if stale is not None:
                return stale
            return self._reply(
                clock, 500, {"error": f"{type(exc).__name__}: {exc}"}, outcome="error"
            )
        finally:
            if not submitted:
                release()
        if self.breaker is not None:
            self.breaker.record_success(request.tenant)
        return self._reply(
            clock,
            200,
            body,
            outcome="ok_cached" if served_hit else "ok",
            cached=served_hit,
        )

    def _settle_probe(self, decision: BreakerDecision | None) -> None:
        """Hand back a half-open probe this request held but cannot settle.

        Called on termination paths that record no engine outcome
        (admission shed, client-error 400, client-shortened timeout) —
        otherwise the breaker's single probe slot leaks and it wedges
        in half-open, denying every request, forever.
        """
        if self.breaker is not None and decision is not None:
            self.breaker.cancel_probe(decision)

    def _rank_session(self, session, specs, rank_request):
        """Rank one session request, through the batcher when enabled.

        ``prepare_rank`` snapshots the bound problem under the engine
        lock; the kernel pass then runs outside it — batched with
        whatever concurrent mates share the same compiled candidates.
        Requests the engine cannot snapshot (SQL, cache hits, cold
        basis, ...) come back pre-answered and skip the batcher.
        """
        if self.batcher is None:
            return session.rank_in_context(specs, rank_request, tick="svc")
        prepared = session.prepare_rank(specs, rank_request, tick="svc")
        if prepared.response is not None:
            return prepared.response
        scores_map = self.batcher.execute(prepared, current_deadline())
        return prepared.complete(scores_map)

    @staticmethod
    def _execute(work, deadline: Deadline | None, release: _ReleaseOnce):
        """Run one work unit under its deadline; always release after."""
        try:
            if deadline is None:
                return work()
            with deadline_scope(deadline):
                deadline.check()
                return work()
        finally:
            release()

    def install_context(self, tenant: str, specs: Iterable[str]) -> ServiceResponse:
        """Install a *standing* context for a tenant (``POST /context``).

        Subsequent ``/rank`` requests without a ``context`` parameter
        rank under this context until it is replaced.  Runs under the
        same admission semaphore as :meth:`rank` — a context install
        may mint a whole session, so overload sheds it with a 503 too.
        """
        clock = _StageClock()
        specs = tuple(str(spec) for spec in specs)
        lookup: KeyLookup | None = None
        if self.cache.enabled:
            with clock.stage("cache"):
                # Era fence read *before* the install: if the tenant is
                # invalidated mid-install, the learn below is discarded.
                lookup = self._keyer.lookup(str(tenant), specs, None, None, False)
        with clock.stage("admit"):
            admitted = self._admission.acquire(timeout=self.config.queue_timeout)
        if not admitted:
            self.metrics.count("resilience", "shed")
            self.metrics.count("resilience", "shed.overload")
            return self._reply(
                clock,
                503,
                {
                    "error": "service overloaded: admission queue timed out",
                    "max_concurrency": self.config.max_concurrency,
                },
                outcome="rejected",
                headers=_retry_after(max(0.1, self.config.queue_timeout)),
            )
        try:
            with clock.stage("resolve"):
                checkout = self.registry.checkout(str(tenant))
                session = checkout.__enter__()
            try:
                with clock.stage("context"):
                    session.install_context(*specs, tick="svc")
                if lookup is not None:
                    # Read-your-writes: the very next /rank without a
                    # context parameter should already hit under the
                    # new standing digest.
                    self._keyer.learn(lookup, session.engine.view_fingerprint())
            finally:
                checkout.__exit__(None, None, None)
        except ReproError as exc:
            return self._reply(clock, 400, {"error": str(exc)}, outcome="bad_request")
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            return self._reply(
                clock, 500, {"error": f"{type(exc).__name__}: {exc}"}, outcome="error"
            )
        finally:
            self._admission.release()
        return self._reply(
            clock,
            200,
            {"tenant": str(tenant), "installed": len(specs), "context": list(specs)},
            outcome="ok",
        )

    # -- degraded-mode serving ----------------------------------------------
    def _try_stale(
        self,
        clock: _StageClock,
        request: ServiceRequest,
        lookup: KeyLookup | None,
        *,
        reason: str,
    ) -> ServiceResponse | None:
        """A stale cache body for a request the healthy path failed.

        Probes the exact key first (a recently expired body for this
        precise context), then the family fallback (the tenant's most
        recent answer to the same query shape under *some* context) —
        bounded by ``stale_max_age`` either way.  ``None`` means the
        caller must fail the request for real.
        """
        if not self.config.serve_stale or lookup is None or not self.cache.enabled:
            return None
        hit = self.cache.get_stale(
            lookup.key, family=lookup.family, max_age=self.config.stale_max_age
        )
        if hit is None:
            self.metrics.count("resilience", "stale_miss")
            return None
        self.metrics.count("resilience", "stale_served")
        self.metrics.count("resilience", f"stale_served.{reason}")
        body = dict(hit.body)
        if request.context is not None:
            body["context"] = list(request.context)
        body["cached"] = True
        body["stale"] = True
        body["stale_reason"] = reason
        body["stale_age_seconds"] = round(hit.age, 3)
        if not hit.exact:
            body["stale_context_digest"] = True  # ranked under an older context
        return self._reply(
            clock,
            200,
            body,
            outcome="ok_stale",
            tag="stale",
            headers={"Warning": _STALE_WARNING},
        )

    # -- invalidation -------------------------------------------------------
    def invalidate_tenant(self, tenant: str) -> int:
        """Purge everything cached for one tenant; returns entries dropped.

        The explicit invalidation path for knowledge changes the
        service cannot see — direct session mutation
        (``session.assert_fact`` on a handle you hold), administrative
        rule edits, and so on.  Context changes flowing through the
        service API never need this: they move the tenant to a new
        view digest and strand the old entries (see
        :mod:`repro.cache.keys`).
        """
        self._keyer.forget(str(tenant))
        return self.cache.invalidate_tenant(str(tenant))

    def _tenant_evicted(self, tenant_id: str) -> None:
        # Registry eviction hook (fired outside shard locks): the
        # session — and with it the standing context — is gone, so the
        # ledger's learned digests and the stored bodies must go too.
        self._keyer.forget(tenant_id)
        self.cache.invalidate_tenant(tenant_id)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut the rank executor down (in-flight work is not waited on).

        The batch scheduler is drained first: open groups flush on
        their leaders' threads, so no queued request is orphaned even
        when the queue is non-empty at shutdown.
        """
        if self.batcher is not None:
            self.batcher.close()
        if self._rank_pool is not None:
            self._rank_pool.shutdown(wait=False)

    def available_slots(self) -> int:
        """Admission slots currently free (== ``max_concurrency`` at rest).

        The post-storm invariant the chaos tests assert: whatever mix
        of timeouts, sheds and errors just happened, every slot must
        come back.
        """
        return self._admission._value  # noqa: SLF001 - the semaphore's own counter

    # -- observability -----------------------------------------------------
    def _breaker_transition(self, scope: str, old: str, new: str) -> None:
        self.metrics.count("resilience", f"breaker_{new}")
        kind = "global" if scope == "global" else "tenant"
        self.metrics.count("resilience", f"breaker_{new}.{kind}")

    def _worker_section(self) -> dict:
        section: dict = {
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self._started_at,
        }
        section.update(self.worker_info)
        return section

    def health(self) -> dict:
        """The ``GET /healthz`` body: liveness plus fleet occupancy."""
        info = self.registry.info()
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "worker": self._worker_section(),
            "registry": {
                "active_sessions": info.active,
                "max_sessions": info.max_sessions,
                "shards": info.shards,
                "pinned": info.pinned,
                "minted": info.minted,
                "hits": info.hits,
                "evictions": info.evictions,
            },
        }

    def readiness(self) -> tuple[int, dict]:
        """The ``GET /readyz`` answer: ``(status_code, body)``.

        Liveness (:meth:`health`) says "this process runs"; readiness
        says "send me traffic".  Degraded — 503, so load balancers
        rotate the worker out — when the global breaker is open or the
        fleet supervisor has marked a crash-looping sibling failed.
        """
        problems: list[str] = []
        if self.breaker is not None and self.breaker.state() == "open":
            problems.append("breaker_open")
        failed = self.fleet_state.failed_workers if self.fleet_state is not None else 0
        if failed > 0:
            problems.append("fleet_workers_failed")
        body = {
            "status": "ready" if not problems else "degraded",
            "problems": problems,
            "failed_workers": failed,
            "breaker": (
                self.breaker.snapshot()
                if self.breaker is not None
                else {"enabled": False}
            ),
            "worker": self._worker_section(),
        }
        return (200 if not problems else 503), body

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` body: stage latencies, outcomes, fleet."""
        snapshot = self.metrics.snapshot()
        snapshot["config"] = {
            "max_concurrency": self.config.max_concurrency,
            "queue_timeout": self.config.queue_timeout,
            "request_timeout": self.config.request_timeout,
            "min_request_timeout": self.config.min_request_timeout,
            "max_request_timeout": self.config.max_request_timeout,
            "serve_stale": self.config.serve_stale,
            "stale_max_age": self.config.stale_max_age,
            "batch_max_size": self.config.batch_max_size,
            "batch_max_wait_us": self.config.batch_max_wait_us,
            "batch_queue_limit": self.config.batch_queue_limit,
        }
        snapshot["batching"] = (
            self.batcher.snapshot() if self.batcher is not None else {"enabled": False}
        )
        snapshot["registry"] = self.health()["registry"]
        snapshot["cache"] = self.cache.info().to_dict()
        snapshot["cache"]["enabled"] = bool(self.cache.enabled)
        snapshot["resilience"] = {
            "counters": self.metrics.counters("resilience"),
            "breaker": (
                self.breaker.snapshot()
                if self.breaker is not None
                else {"enabled": False}
            ),
            "fault_injection": self.fault_injector.info(),
            "available_slots": self.available_slots(),
        }
        provider = self._gateway_stats
        snapshot["gateway"] = (
            dict(provider()) if provider is not None else {"attached": False}
        )
        snapshot["worker"] = self._worker_section()
        return snapshot

    def attach_gateway(self, provider: Callable[[], Mapping[str, object]] | None) -> None:
        """Register the serving front's stats provider.

        The gateway that owns the sockets (the event loop, or nothing
        for the plain threading server) contributes its own section to
        ``GET /metrics`` — open connections, wire-stage latencies, loop
        lag.  ``None`` detaches.
        """
        self._gateway_stats = provider

    # -- internals ---------------------------------------------------------
    def _render(self, request: ServiceRequest, response) -> dict:
        items = [
            {
                "position": item.position,
                "document": item.document,
                "score": item.score,
                "preference": item.preference,
            }
            for item in response.items
        ]
        body: dict = {
            "tenant": request.tenant,
            "items": items,
            "from_cache": response.from_cache,
        }
        if request.context is not None:
            body["context"] = list(request.context)
        if response.explanation is not None:
            body["explanation"] = response.explanation
        return body

    def _serve_hit(
        self, request: ServiceRequest, stored: dict
    ) -> tuple[dict, bytes | None]:
        # Stored bodies are canonical and shared between hits: copy the
        # top level, re-attach the per-request context echo, and mark
        # the body as served from the response cache.  A hit with no
        # per-request context echo is byte-identical between serves, so
        # its encoding memoises on the cache entry — the second return
        # value is those bytes (None when this serve must encode).
        body = dict(stored)
        body["cached"] = True
        if request.context is not None:
            body["context"] = list(request.context)
            return body, None
        if isinstance(stored, _CanonicalBody):
            precoded = stored.hit_bytes
            if precoded is None:
                precoded = json.dumps(body).encode("utf-8")
                stored.hit_bytes = precoded  # benign race: equal bytes
            return body, precoded
        return body, None

    def _fill(self, lookup: KeyLookup, fingerprint: tuple | None, body: dict) -> None:
        if fingerprint is None:
            # The engine bypassed its materialised view (explicit
            # candidate ranking under prune settings, etc.) — there is
            # no signature proving what this body depends on.
            return
        digest = self._keyer.learn(lookup, fingerprint)
        if digest is None:
            return  # invalidated while in flight: do not resurrect
        canonical = _CanonicalBody(body)
        canonical.pop("context", None)  # per-request echo, not content
        key = response_key(
            lookup.tenant, digest, lookup.documents, lookup.top_k, lookup.explain
        )
        self.cache.put(key, canonical, tenant=lookup.tenant, family=lookup.family)

    def _reply(
        self,
        clock: _StageClock,
        status: int,
        body: dict,
        *,
        outcome: str,
        cached: bool | None = None,
        tag: str | None = None,
        headers: Mapping[str, str] | None = None,
        precoded: bytes | None = None,
    ) -> ServiceResponse:
        timings = clock.snapshot()
        timings["total"] = clock.total()
        if tag is None:
            tag = None if cached is None else ("cached" if cached else "uncached")
        for stage_name, seconds in timings.items():
            self.metrics.observe_stage(stage_name, seconds, tag=tag)
        self.metrics.count_outcome(outcome)
        if self.config.include_timings:
            body = dict(body)
            body["timings_ms"] = {
                name: seconds * 1000.0 for name, seconds in timings.items()
            }
            precoded = None  # the body just changed; stored bytes no longer match
        return ServiceResponse(
            status=status,
            body=body,
            timings=timings,
            headers=dict(headers) if headers else {},
            precoded=precoded,
        )
