"""The :class:`RankingService` request pipeline.

The paper's tvtouch scenario is an always-on service: one shared domain
ontology, many users, volatile context arriving *with each request*.
This module is that request path, staged and instrumented::

    parse → cache → admit → resolve → context → rank → render

* **parse** — normalise raw parameters (query string or JSON body)
  into a frozen :class:`ServiceRequest`; malformed input is a 400
  before any shared resource is touched.
* **cache** — the response-cache lookup (:mod:`repro.cache`): derive
  the key this request would rank under from the tenant's learned
  view digest and the canonicalised query, and probe the adapter.  A
  *pure* hit (no context delta to install) is served here, before
  admission — a hit is a dict copy, too cheap to shed.  A hit on a
  delta request still passes through admit/resolve so the delta can
  be installed as the tenant's standing context (the client-visible
  side effect of ``/rank?context=...``) before the body is served —
  and is served only if the ledger's prediction is confirmed against
  the just-installed engine fingerprint.  Misses fall through and
  fill the cache after **render**; invalidation is by reachability
  (any context change moves the tenant to a new view digest — see
  :mod:`repro.cache.keys`) plus eviction hooks and
  :meth:`RankingService.invalidate_tenant`.
* **admit** — admission control: a bounded semaphore caps in-flight
  rank work; a request that cannot be admitted within
  ``queue_timeout`` is rejected with a 503 instead of piling onto an
  overloaded process (load shedding, not unbounded queueing).
* **resolve** — a *pinned* checkout of the tenant's session from the
  sharded :class:`~repro.tenants.TenantRegistry`; the pin guarantees
  LRU eviction can never yank the overlay from an in-flight request.
* **context** — validate every spec of the per-request context delta
  (``None`` keeps the tenant's standing context); a bad spec is a 400
  *here*, with the tenant's standing context untouched (and the
  engine's own install validates-before-clearing too, so no error
  path can leave a half-installed context).
* **rank** — :meth:`UserSession.rank_in_context`: delta install and
  rank under one hold of the engine lock, atomic per tenant.
* **render** — the ranked items as a JSON-able body.

Every stage's latency lands in :class:`~repro.service.metrics.ServiceMetrics`
(the ``GET /metrics`` surface), plus an end-to-end ``total`` recorder.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cache.keys import KeyLookup, ResponseKeyer, response_key
from repro.cache.none import NoCacheAdapter
from repro.cache.protocol import CacheAdapter
from repro.engine.backends import parse_context_spec
from repro.engine.requests import RankRequest
from repro.errors import EngineError, ReproError
from repro.service.metrics import ServiceMetrics
from repro.tenants.registry import TenantRegistry

__all__ = [
    "RankingService",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "STAGES",
]

#: Pipeline stages, in request order (``total`` is recorded on top).
STAGES = ("parse", "cache", "admit", "resolve", "context", "rank", "render")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving pipeline.

    ``max_concurrency`` bounds in-flight rank work (admission
    semaphore); ``queue_timeout`` is how long a request may wait for
    admission before being shed with a 503.  ``include_timings``
    attaches per-stage latencies to every response body (handy for
    tracing, off by default to keep payloads lean).
    """

    max_concurrency: int = 8
    queue_timeout: float = 0.25
    default_top_k: int | None = None
    include_timings: bool = False

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise EngineError(
                f"max_concurrency must be positive, got {self.max_concurrency!r}"
            )
        if self.queue_timeout < 0:
            raise EngineError(
                f"queue_timeout must be non-negative, got {self.queue_timeout!r}"
            )


@dataclass(frozen=True)
class ServiceRequest:
    """One parsed ranking request.

    ``context=None`` keeps the tenant's standing context;
    ``context=()`` explicitly clears it (rank context-free).
    """

    tenant: str
    context: tuple[str, ...] | None = None
    top_k: int | None = None
    documents: tuple[str, ...] | None = None
    explain: bool = False

    @classmethod
    def from_params(cls, params: Mapping[str, Sequence[str]]) -> "ServiceRequest":
        """Build from query-string shaped parameters (``parse_qs`` output).

        Recognised keys: ``tenant`` (required), ``context``
        (repeatable, ``CONCEPT[:PROB]``), ``top_k``, ``documents``
        (repeatable and/or comma-separated), ``explain``.
        """
        known = {"tenant", "context", "top_k", "documents", "explain"}
        unknown = set(params) - known
        if unknown:
            raise EngineError(
                f"unknown rank parameters {sorted(unknown)}; known: {sorted(known)}"
            )
        tenants = list(params.get("tenant", ()))
        if len(tenants) != 1 or not str(tenants[0]).strip():
            raise EngineError("exactly one non-empty 'tenant' parameter is required")
        context: tuple[str, ...] | None = None
        if "context" in params:
            context = tuple(str(spec) for spec in params["context"])
        top_k = None
        if "top_k" in params:
            values = list(params["top_k"])
            try:
                top_k = int(values[-1])
            except (TypeError, ValueError):
                raise EngineError(
                    f"top_k must be an integer, got {values[-1]!r}"
                ) from None
        documents = None
        if "documents" in params:
            flattened = [
                part.strip()
                for value in params["documents"]
                for part in str(value).split(",")
                if part.strip()
            ]
            documents = tuple(flattened)
        explain = False
        if "explain" in params:
            explain = str(list(params["explain"])[-1]).lower() in ("1", "true", "yes")
        return cls(
            tenant=str(tenants[0]),
            context=context,
            top_k=top_k,
            documents=documents,
            explain=explain,
        )

    @classmethod
    def from_payload(cls, payload: object) -> "ServiceRequest":
        """Build from a JSON body (``POST``-shaped: plain values)."""
        if not isinstance(payload, Mapping):
            raise EngineError(f"request body must be a JSON object, got {payload!r}")
        params: dict[str, list[str]] = {}
        for key in ("tenant", "top_k", "explain"):
            if key in payload:
                params[key] = [str(payload[key])]
        for key in ("context", "documents"):
            if key in payload:
                value = payload[key]
                if isinstance(value, str):
                    value = [value]
                if not isinstance(value, Iterable):
                    raise EngineError(f"'{key}' must be a list of strings, got {value!r}")
                params[key] = [str(item) for item in value]
        unknown = set(payload) - {"tenant", "context", "top_k", "documents", "explain"}
        if unknown:
            raise EngineError(f"unknown request keys {sorted(unknown)}")
        return cls.from_params(params)


@dataclass(frozen=True)
class ServiceResponse:
    """One pipeline answer: an HTTP-ish status, a JSON-able body, timings."""

    status: int
    body: dict
    timings: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class _Span:
    """One timed stage of a :class:`_StageClock` (a context manager)."""

    __slots__ = ("_clock", "_name", "_start")

    def __init__(self, clock: "_StageClock", name: str):
        self._clock = clock
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._clock.timings[self._name] = time.perf_counter() - self._start
        return False


class _StageClock:
    """Accumulates per-stage wall time for one request."""

    __slots__ = ("timings", "_started")

    def __init__(self):
        self.timings: dict[str, float] = {}
        self._started = time.perf_counter()

    def stage(self, name: str) -> _Span:
        return _Span(self, name)

    def total(self) -> float:
        return time.perf_counter() - self._started


class RankingService:
    """The concurrent request pipeline over a tenant fleet.

    One service fronts one :class:`~repro.tenants.TenantRegistry`;
    requests for any number of tenants flow through the staged pipeline
    concurrently, bounded by the admission semaphore.  The service
    itself is stateless beyond metrics — all ranking state lives in the
    registry's sessions — so it is safe to share one instance across
    every gateway thread.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        config: ServiceConfig | None = None,
        metrics: ServiceMetrics | None = None,
        cache: CacheAdapter | None = None,
        worker_info: Mapping[str, object] | None = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.cache: CacheAdapter = cache if cache is not None else NoCacheAdapter()
        #: Extra identity reported under ``worker`` in health/metrics
        #: (the fleet supervisor stamps worker index and bind mode).
        self.worker_info = dict(worker_info) if worker_info else {}
        self._keyer = ResponseKeyer()
        if self.cache.enabled:
            # A session eviction drops the tenant's standing context,
            # so everything learned (and stored) for it must go too.
            self.registry.add_evict_listener(self._tenant_evicted)
        self._admission = threading.BoundedSemaphore(self.config.max_concurrency)
        self._started_at = time.time()

    # -- the staged pipeline ----------------------------------------------
    def rank(self, request: ServiceRequest | Mapping[str, Sequence[str]]) -> ServiceResponse:
        """Answer one ranking request through the full pipeline.

        Accepts a parsed :class:`ServiceRequest` or raw query-string
        parameters (parsed as the ``parse`` stage).  Never raises for
        request-shaped failures: malformed input is a 400 body,
        admission overflow a 503, unexpected engine errors a 500 —
        the gateway maps ``status`` straight onto HTTP.
        """
        clock = _StageClock()
        try:
            with clock.stage("parse"):
                if not isinstance(request, ServiceRequest):
                    request = ServiceRequest.from_params(request)
                top_k = request.top_k if request.top_k is not None else self.config.default_top_k
                rank_request = RankRequest(
                    documents=request.documents,
                    top_k=top_k,
                    explain=request.explain,
                )
        except ReproError as exc:
            return self._reply(clock, 400, {"error": str(exc)}, outcome="bad_request")

        lookup: KeyLookup | None = None
        cached_body: dict | None = None
        if self.cache.enabled:
            with clock.stage("cache"):
                lookup = self._keyer.lookup(
                    request.tenant,
                    request.context,
                    request.documents,
                    top_k,
                    request.explain,
                )
                if lookup is not None:
                    cached_body = self.cache.get(lookup.key)
            if cached_body is not None and not lookup.needs_install:
                # Pure hit: the tenant's standing context already *is*
                # the state this body was ranked under — nothing to
                # install, no session to touch, no admission needed.
                with clock.stage("render"):
                    body = self._serve_hit(request, cached_body)
                return self._reply(clock, 200, body, outcome="ok_cached", cached=True)

        with clock.stage("admit"):
            admitted = self._admission.acquire(timeout=self.config.queue_timeout)
        if not admitted:
            return self._reply(
                clock,
                503,
                {
                    "error": "service overloaded: admission queue timed out",
                    "max_concurrency": self.config.max_concurrency,
                },
                outcome="rejected",
            )
        served_hit = False
        try:
            with clock.stage("resolve"):
                checkout = self.registry.checkout(request.tenant)
                session = checkout.__enter__()
            try:
                with clock.stage("context"):
                    # Pre-flight every spec: a bad one 400s here with
                    # the tenant's standing context untouched.
                    specs = request.context  # None keeps the standing context
                    if specs is not None:
                        for spec in specs:
                            parse_context_spec(spec)
                if cached_body is not None:
                    # Delta hit: install the delta (the client-visible
                    # side effect of /rank?context=...), then serve the
                    # body only if the ledger's prediction matches the
                    # just-installed engine truth.
                    with clock.stage("rank"):
                        session.install_context(*specs, tick="svc")
                        learned = self._keyer.learn(
                            lookup, session.engine.view_fingerprint()
                        )
                    if learned == lookup.view_digest:
                        served_hit = True
                        with clock.stage("render"):
                            body = self._serve_hit(request, cached_body)
                if not served_hit:
                    with clock.stage("rank"):
                        # After a refuted delta hit the delta is already
                        # installed and standing — rank under it as-is.
                        rank_specs = None if cached_body is not None else specs
                        response = session.rank_in_context(
                            rank_specs, rank_request, tick="svc"
                        )
                    with clock.stage("render"):
                        body = self._render(request, response)
                    if lookup is not None:
                        self._fill(lookup, response.fingerprint, body)
            finally:
                checkout.__exit__(None, None, None)
        except ReproError as exc:
            return self._reply(clock, 400, {"error": str(exc)}, outcome="bad_request")
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            return self._reply(
                clock, 500, {"error": f"{type(exc).__name__}: {exc}"}, outcome="error"
            )
        finally:
            self._admission.release()
        return self._reply(
            clock,
            200,
            body,
            outcome="ok_cached" if served_hit else "ok",
            cached=served_hit,
        )

    def install_context(self, tenant: str, specs: Iterable[str]) -> ServiceResponse:
        """Install a *standing* context for a tenant (``POST /context``).

        Subsequent ``/rank`` requests without a ``context`` parameter
        rank under this context until it is replaced.  Runs under the
        same admission semaphore as :meth:`rank` — a context install
        may mint a whole session, so overload sheds it with a 503 too.
        """
        clock = _StageClock()
        specs = tuple(str(spec) for spec in specs)
        lookup: KeyLookup | None = None
        if self.cache.enabled:
            with clock.stage("cache"):
                # Era fence read *before* the install: if the tenant is
                # invalidated mid-install, the learn below is discarded.
                lookup = self._keyer.lookup(str(tenant), specs, None, None, False)
        with clock.stage("admit"):
            admitted = self._admission.acquire(timeout=self.config.queue_timeout)
        if not admitted:
            return self._reply(
                clock,
                503,
                {
                    "error": "service overloaded: admission queue timed out",
                    "max_concurrency": self.config.max_concurrency,
                },
                outcome="rejected",
            )
        try:
            with clock.stage("resolve"):
                checkout = self.registry.checkout(str(tenant))
                session = checkout.__enter__()
            try:
                with clock.stage("context"):
                    session.install_context(*specs, tick="svc")
                if lookup is not None:
                    # Read-your-writes: the very next /rank without a
                    # context parameter should already hit under the
                    # new standing digest.
                    self._keyer.learn(lookup, session.engine.view_fingerprint())
            finally:
                checkout.__exit__(None, None, None)
        except ReproError as exc:
            return self._reply(clock, 400, {"error": str(exc)}, outcome="bad_request")
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            return self._reply(
                clock, 500, {"error": f"{type(exc).__name__}: {exc}"}, outcome="error"
            )
        finally:
            self._admission.release()
        return self._reply(
            clock,
            200,
            {"tenant": str(tenant), "installed": len(specs), "context": list(specs)},
            outcome="ok",
        )

    # -- invalidation -------------------------------------------------------
    def invalidate_tenant(self, tenant: str) -> int:
        """Purge everything cached for one tenant; returns entries dropped.

        The explicit invalidation path for knowledge changes the
        service cannot see — direct session mutation
        (``session.assert_fact`` on a handle you hold), administrative
        rule edits, and so on.  Context changes flowing through the
        service API never need this: they move the tenant to a new
        view digest and strand the old entries (see
        :mod:`repro.cache.keys`).
        """
        self._keyer.forget(str(tenant))
        return self.cache.invalidate_tenant(str(tenant))

    def _tenant_evicted(self, tenant_id: str) -> None:
        # Registry eviction hook (fired outside shard locks): the
        # session — and with it the standing context — is gone, so the
        # ledger's learned digests and the stored bodies must go too.
        self._keyer.forget(tenant_id)
        self.cache.invalidate_tenant(tenant_id)

    # -- observability -----------------------------------------------------
    def _worker_section(self) -> dict:
        section: dict = {
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self._started_at,
        }
        section.update(self.worker_info)
        return section

    def health(self) -> dict:
        """The ``GET /healthz`` body: liveness plus fleet occupancy."""
        info = self.registry.info()
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "worker": self._worker_section(),
            "registry": {
                "active_sessions": info.active,
                "max_sessions": info.max_sessions,
                "shards": info.shards,
                "pinned": info.pinned,
                "minted": info.minted,
                "hits": info.hits,
                "evictions": info.evictions,
            },
        }

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` body: stage latencies, outcomes, fleet."""
        snapshot = self.metrics.snapshot()
        snapshot["config"] = {
            "max_concurrency": self.config.max_concurrency,
            "queue_timeout": self.config.queue_timeout,
        }
        snapshot["registry"] = self.health()["registry"]
        snapshot["cache"] = self.cache.info().to_dict()
        snapshot["cache"]["enabled"] = bool(self.cache.enabled)
        snapshot["worker"] = self._worker_section()
        return snapshot

    # -- internals ---------------------------------------------------------
    def _render(self, request: ServiceRequest, response) -> dict:
        items = [
            {
                "position": item.position,
                "document": item.document,
                "score": item.score,
                "preference": item.preference,
            }
            for item in response.items
        ]
        body: dict = {
            "tenant": request.tenant,
            "items": items,
            "from_cache": response.from_cache,
        }
        if request.context is not None:
            body["context"] = list(request.context)
        if response.explanation is not None:
            body["explanation"] = response.explanation
        return body

    def _serve_hit(self, request: ServiceRequest, stored: dict) -> dict:
        # Stored bodies are canonical and shared between hits: copy the
        # top level, re-attach the per-request context echo, and mark
        # the body as served from the response cache.
        body = dict(stored)
        if request.context is not None:
            body["context"] = list(request.context)
        body["cached"] = True
        return body

    def _fill(self, lookup: KeyLookup, fingerprint: tuple | None, body: dict) -> None:
        if fingerprint is None:
            # The engine bypassed its materialised view (explicit
            # candidate ranking under prune settings, etc.) — there is
            # no signature proving what this body depends on.
            return
        digest = self._keyer.learn(lookup, fingerprint)
        if digest is None:
            return  # invalidated while in flight: do not resurrect
        canonical = dict(body)
        canonical.pop("context", None)  # per-request echo, not content
        key = response_key(
            lookup.tenant, digest, lookup.documents, lookup.top_k, lookup.explain
        )
        self.cache.put(key, canonical, tenant=lookup.tenant)

    def _reply(
        self,
        clock: _StageClock,
        status: int,
        body: dict,
        *,
        outcome: str,
        cached: bool | None = None,
    ) -> ServiceResponse:
        timings = dict(clock.timings)
        timings["total"] = clock.total()
        tag = None if cached is None else ("cached" if cached else "uncached")
        for stage_name, seconds in timings.items():
            self.metrics.observe_stage(stage_name, seconds, tag=tag)
        self.metrics.count_outcome(outcome)
        if self.config.include_timings:
            body = dict(body)
            body["timings_ms"] = {
                name: seconds * 1000.0 for name, seconds in timings.items()
            }
        return ServiceResponse(status=status, body=body, timings=timings)
