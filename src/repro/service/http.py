"""The stdlib HTTP/JSON gateway over :class:`RankingService`.

No third-party dependencies: a :class:`ThreadingHTTPServer` front
(one thread per connection, daemon threads so shutdown never hangs)
dispatching to the staged pipeline.  Endpoints:

``GET /rank?tenant=…&context=…&top_k=…``
    One ranking request.  ``context`` is repeatable
    (``CONCEPT[:PROB]``) and *replaces* the tenant's dynamic context
    for this and later requests; omit it to rank under the standing
    context.  Optional ``documents`` (repeatable / comma-separated),
    ``explain=1``, ``timeout`` (seconds; the ``X-Request-Timeout``
    header works too and the query parameter wins).

``POST /context``
    JSON body ``{"tenant": "...", "context": ["Weekend", "Breakfast:0.7"]}`` —
    install a standing context.

``GET /healthz``
    Liveness + registry occupancy ("this process runs").

``GET /readyz``
    Readiness ("send me traffic"): 503 + ``degraded`` while the
    global circuit breaker is open or a fleet sibling has been marked
    failed by the crash-loop detector.

``GET /metrics``
    Per-stage latency summaries, outcome counters, fleet counters,
    resilience counters + breaker state.

Degraded answers carry their HTTP contract in headers: overload and
breaker sheds send ``Retry-After``; stale serves send
``Warning: 110`` (response is stale) — both flow out of
``ServiceResponse.headers`` untouched.

Start one with :func:`make_server` (ephemeral ``port=0`` supported —
tests and benchmarks do) or the blocking :func:`serve` the CLI wraps::

    python -m repro serve --port 8080
    curl 'http://127.0.0.1:8080/rank?tenant=alice&context=Weekend&top_k=3'
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro import __version__ as _repro_version
from repro.service.pipeline import RankingService, ServiceResponse

__all__ = ["RankingHTTPServer", "make_server", "serve"]

#: Cap on accepted request bodies (context installs are tiny; anything
#: bigger is a client error, not a reason to buffer unbounded bytes).
MAX_BODY_BYTES = 1 << 20

#: The Server header both gateways send — derived from the package
#: version so it can never drift from a release again.
SERVER_VERSION = f"repro-serve/{_repro_version}"


class _BodyTooLarge(ValueError):
    """Declared request body over :data:`MAX_BODY_BYTES` (a 413)."""


class _MalformedLength(ValueError):
    """Unparseable Content-Length: framing is unknown, close after 400."""


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes gateway endpoints onto the service pipeline."""

    server_version = SERVER_VERSION
    protocol_version = "HTTP/1.1"
    # A response leaves as header + body packets on one keep-alive
    # connection; with Nagle on, the body packet waits out the client's
    # delayed ACK (~40 ms p50 on loopback, measured in E13).
    disable_nagle_algorithm = True

    # The ThreadingHTTPServer subclass carries the service instance.
    @property
    def service(self) -> RankingService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routing -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.server.request_begun()  # type: ignore[attr-defined]
        try:
            self._route_get()
        finally:
            self.server.request_done()  # type: ignore[attr-defined]

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        if url.path == "/rank":
            params = parse_qs(url.query, keep_blank_values=True)
            header_timeout = self.headers.get("X-Request-Timeout")
            if header_timeout is not None and "timeout" not in params:
                params["timeout"] = [header_timeout]
            self._send(self.service.rank(params))
            # After the response is on the wire: the chaos hook that
            # periodically SIGKILLs this worker mid-traffic (noop when
            # fault injection is inactive).
            self.service.fault_injector.maybe_kill_worker()
        elif url.path == "/healthz":
            self._send_json(200, self.service.health())
        elif url.path == "/readyz":
            status, body = self.service.readiness()
            self._send_json(status, body)
        elif url.path == "/metrics":
            self._send_json(200, self.service.metrics_snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.server.request_begun()  # type: ignore[attr-defined]
        try:
            self._route_post()
        finally:
            self.server.request_done()  # type: ignore[attr-defined]

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        if url.path != "/context":
            self._send_json(404, {"error": f"unknown path {url.path!r}"})
            return
        try:
            payload = self._read_json()
        except _BodyTooLarge as exc:
            # The unread body is still on the wire: the connection
            # cannot be reused for a next request.
            self.close_connection = True
            self._send_json(413, {"error": str(exc)})
            return
        except _MalformedLength as exc:
            self.close_connection = True
            self._send_json(400, {"error": str(exc)})
            return
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if not isinstance(payload, dict) or "tenant" not in payload:
            self._send_json(400, {"error": "body must be {'tenant': ..., 'context': [...]}"})
            return
        context = payload.get("context", [])
        if isinstance(context, str):
            context = [context]
        if not isinstance(context, list):
            self._send_json(400, {"error": "'context' must be a list of CONCEPT[:PROB] strings"})
            return
        self._send(self.service.install_context(str(payload["tenant"]), context))

    # -- plumbing ----------------------------------------------------------
    def _read_json(self) -> object:
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            # int() on header garbage must be a clean 400, not an
            # uncaught ValueError resetting the connection.
            raise _MalformedLength(
                f"malformed Content-Length header: {raw_length!r}"
            ) from None
        if length <= 0:
            raise ValueError("request body required")
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc

    def _send(self, response: ServiceResponse) -> None:
        # encoded() memoises: a cache hit ships its stored bytes, and
        # nothing ever json.dumps the same response body twice.
        self._send_payload(response.status, response.encoded(), response.headers)

    def _send_json(
        self, status: int, body: dict, headers: dict[str, str] | None = None
    ) -> None:
        self._send_payload(status, json.dumps(body).encode("utf-8"), headers)

    def _send_payload(
        self, status: int, payload: bytes, headers: dict[str, str] | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)


class RankingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP front bound to one :class:`RankingService`.

    ``daemon_threads`` so in-flight handler threads never block
    interpreter shutdown; ``allow_reuse_address`` so quick restarts do
    not trip TIME_WAIT (Nagle is disabled on the handler).  Tracks
    in-flight requests so :meth:`drain` can bound a graceful stop.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: RankingService,
        *,
        verbose: bool = False,
        bind_and_activate: bool = True,
    ):
        # ``bind_and_activate=False`` lets the fleet adopt an already
        # bound socket (SO_REUSEPORT sibling or an inherited listener)
        # instead of binding a fresh one.
        super().__init__(address, _GatewayHandler, bind_and_activate=bind_and_activate)
        self.service = service
        self.verbose = verbose
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()

    # -- graceful drain ----------------------------------------------------
    def request_begun(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._idle.clear()

    def request_done(self) -> None:
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def drain(self, grace: float, settle: float = 0.05) -> bool:
        """Wait up to ``grace`` seconds for in-flight requests to finish.

        Call after ``shutdown()`` (no new connections are being
        accepted) and before ``server_close()``.  Idle alone is not
        proof: a connection accepted just before shutdown whose handler
        thread has not reached its method yet is invisible to the
        counter, so idle must still hold after a ``settle`` interval
        before it is believed.  Returns True when the server went idle
        within the grace, False when stragglers remain (they are daemon
        threads; closing anyway is safe).
        """
        deadline = time.monotonic() + max(0.0, grace)
        while True:
            if not self._idle.wait(timeout=max(0.0, deadline - time.monotonic())):
                return False
            time.sleep(min(settle, max(0.0, deadline - time.monotonic())))
            if self.inflight == 0:
                return True

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    service: RankingService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> RankingHTTPServer:
    """Bind (but do not run) a gateway; ``port=0`` picks a free port.

    Callers own the lifecycle: ``serve_forever()`` on a thread of
    their choosing, ``shutdown()`` + ``server_close()`` to stop.
    """
    return RankingHTTPServer((host, port), service, verbose=verbose)


def serve(
    service: RankingService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    grace: float = 5.0,
    ready=None,
) -> int:
    """Run the gateway until interrupted (the ``repro serve`` body).

    ``ready`` (if given) is called with the bound server once it is
    listening — tests and the CLI use it to learn the ephemeral port.
    On interrupt the gateway stops accepting, drains in-flight
    requests for up to ``grace`` seconds, then closes.  Returns a
    process exit code.
    """
    server = make_server(service, host, port, verbose=verbose)
    if ready is not None:
        ready(server)

    def _interrupt(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    # SIGTERM (the supervisor/orchestrator stop signal) drains the same
    # way Ctrl-C does, matching the fleet parent's handler.
    try:
        previous_term = signal.signal(signal.SIGTERM, _interrupt)
    except ValueError:  # not on the main thread (embedded use)
        previous_term = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        if previous_term is not None:
            signal.signal(signal.SIGTERM, previous_term)
        server.shutdown()
        server.drain(grace)
        service.close()
        server.server_close()
    return 0
