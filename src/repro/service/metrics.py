"""Structured latency metrics for the serving runtime.

A :class:`LatencyRecorder` is a thread-safe accumulator: total count
and time forever, plus a bounded ring of recent samples for percentile
queries (p50/p95/p99 of the last ``capacity`` observations — the shape
a live dashboard wants, without unbounded memory under heavy traffic).

:class:`ServiceMetrics` groups one recorder per pipeline stage plus
request-outcome counters; its :meth:`~ServiceMetrics.snapshot` is the
JSON body of the gateway's ``GET /metrics``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Mapping

__all__ = ["GatewayMetrics", "LatencyRecorder", "ServiceMetrics", "percentile"]


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` (nearest-rank, sorted input).

    ``fraction`` is in [0, 1]; an empty sample list yields 0.0.
    """
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction!r}")
    rank = max(0, min(len(samples) - 1, round(fraction * (len(samples) - 1))))
    return samples[rank]


class LatencyRecorder:
    """Thread-safe latency accumulator with percentile queries.

    ``observe`` is O(1) under one small lock; ``summary`` sorts the
    retained window (bounded by ``capacity``), so it is cheap enough
    for a metrics endpoint but not meant for the per-request path.
    """

    def __init__(self, capacity: int = 16384):
        if capacity < 1:
            raise ValueError(f"recorder needs a positive capacity, got {capacity!r}")
        self._lock = threading.Lock()
        self._samples: "deque[float]" = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentiles(self, *fractions: float) -> tuple[float, ...]:
        """Quantiles over the retained window, one per fraction."""
        with self._lock:
            window = sorted(self._samples)
        return tuple(percentile(window, fraction) for fraction in fractions)

    def summary(self) -> dict[str, float]:
        """Count, mean and tail latencies in milliseconds (JSON-able)."""
        with self._lock:
            window = sorted(self._samples)
            count, total, worst = self._count, self._total, self._max
        p50, p95, p99 = (percentile(window, f) for f in (0.50, 0.95, 0.99))
        return {
            "count": count,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "p50_ms": p50 * 1000.0,
            "p95_ms": p95 * 1000.0,
            "p99_ms": p99 * 1000.0,
            "max_ms": worst * 1000.0,
        }


class ServiceMetrics:
    """Per-stage latency recorders plus request-outcome counters.

    Stages are created lazily on first observation, so the pipeline
    and the load generator can share one class without agreeing on a
    fixed stage list up front.
    """

    def __init__(self, capacity: int = 16384):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._stages: dict[str, LatencyRecorder] = {}
        self._outcomes: dict[str, int] = {}
        self._counters: dict[str, dict[str, int]] = {}

    def stage(self, name: str) -> LatencyRecorder:
        """The recorder for one pipeline stage (created on demand)."""
        with self._lock:
            recorder = self._stages.get(name)
            if recorder is None:
                recorder = LatencyRecorder(self._capacity)
                self._stages[name] = recorder
            return recorder

    def observe_stage(self, name: str, seconds: float, *, tag: str | None = None) -> None:
        """Record one stage latency, optionally under a tag as well.

        A tagged observation lands in both the bare recorder (so
        aggregate stage numbers keep counting everything) and a
        ``"{name}.{tag}"`` recorder — the pipeline uses tags to split
        latencies into ``cached`` vs ``uncached`` populations.
        """
        self.stage(name).observe(seconds)
        if tag is not None:
            self.stage(f"{name}.{tag}").observe(seconds)

    def count_outcome(self, outcome: str) -> None:
        """Bump one request-outcome counter (``ok``/``rejected``/...)."""
        with self._lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1

    def outcomes(self) -> dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    def count(self, group: str, name: str, amount: int = 1) -> None:
        """Bump one counter in a named group (``resilience`` etc.).

        Groups keep subsystem counters (timeouts, stale serves,
        breaker transitions…) out of the request-outcome dict, whose
        keys are one-per-request by contract.
        """
        with self._lock:
            counters = self._counters.setdefault(group, {})
            counters[name] = counters.get(name, 0) + amount

    def counters(self, group: str | None = None) -> dict:
        """One group's counters, or every group keyed by name."""
        with self._lock:
            if group is not None:
                return dict(self._counters.get(group, {}))
            return {name: dict(values) for name, values in self._counters.items()}

    def snapshot(self) -> dict[str, object]:
        """The whole metrics surface as one JSON-able mapping."""
        with self._lock:
            stages = dict(self._stages)
            outcomes = dict(self._outcomes)
            counters = {name: dict(values) for name, values in self._counters.items()}
        return {
            "outcomes": outcomes,
            "stages": {name: recorder.summary() for name, recorder in sorted(stages.items())},
            "counters": counters,
        }


class GatewayMetrics:
    """Wire-side counters and stage latencies for an event-loop gateway.

    Tracks what the pipeline's stage recorders cannot see because it
    happens before/after the pipeline runs: socket-level **read** time
    (first byte of a request to its last), **parse** time (bytes to a
    routed request), **write** time (response bytes onto the
    transport), connection churn, and **event-loop lag** (how late the
    loop's timers fire — the single best health signal for a loop that
    must never block).  :meth:`snapshot` is the ``gateway`` section of
    ``GET /metrics`` (see :meth:`RankingService.attach_gateway`).
    """

    def __init__(self, capacity: int = 8192):
        self._lock = threading.Lock()
        self._open = 0
        self._accepted = 0
        self._requests = 0
        self._bad_requests = 0
        self._read_timeouts = 0
        self.read = LatencyRecorder(capacity)
        self.parse = LatencyRecorder(capacity)
        self.write = LatencyRecorder(capacity)
        self.loop_lag = LatencyRecorder(capacity)

    def connection_opened(self) -> None:
        with self._lock:
            self._open += 1
            self._accepted += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._open = max(0, self._open - 1)

    def count_request(self) -> None:
        with self._lock:
            self._requests += 1

    def count_bad_request(self) -> None:
        with self._lock:
            self._bad_requests += 1

    def count_read_timeout(self) -> None:
        with self._lock:
            self._read_timeouts += 1

    @property
    def open_connections(self) -> int:
        with self._lock:
            return self._open

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            open_now, accepted = self._open, self._accepted
            requests, bad, timeouts = self._requests, self._bad_requests, self._read_timeouts
        return {
            "attached": True,
            "connections": {"open": open_now, "accepted": accepted},
            "requests": requests,
            "bad_requests": bad,
            "read_timeouts": timeouts,
            "stages": {
                "read": self.read.summary(),
                "parse": self.parse.summary(),
                "write": self.write.summary(),
            },
            "loop_lag": self.loop_lag.summary(),
        }


def render_summary(summary: Mapping[str, float]) -> str:
    """One recorder summary as a compact human line (used by the CLI)."""
    return (
        f"n={summary['count']} mean={summary['mean_ms']:.2f}ms "
        f"p50={summary['p50_ms']:.2f}ms p95={summary['p95_ms']:.2f}ms "
        f"p99={summary['p99_ms']:.2f}ms max={summary['max_ms']:.2f}ms"
    )
