"""The pre-fork serving fleet: N worker processes behind one port.

The GIL caps a single Python process at one core of rank work; the
fleet escapes it the classic pre-fork way (the shape gunicorn and
nginx use):

* the **parent** builds nothing heavy — it resolves the port, forks
  ``workers`` children, then only supervises: respawn a worker that
  dies unexpectedly (with exponential backoff, and a crash-loop
  detector that *stops* respawning a worker dying repeatedly), fan
  ``SIGTERM``/``SIGINT`` out on shutdown, and answer parent-side
  aggregated health via :meth:`FleetSupervisor.health`;
* each **worker** builds its own :class:`~repro.service.pipeline.
  RankingService` (own registry, own response cache — processes share
  nothing, so no cross-process coherence protocol is needed; the
  world is rebuilt per worker from the same deterministic loaders)
  and runs the threaded gateway loop on the shared port.

Port sharing has two modes, picked automatically:

* ``reuseport`` — every worker binds its *own* listening socket with
  ``SO_REUSEPORT``; the kernel load-balances incoming connections
  across workers.  The parent holds a bound (never listening)
  *anchor* socket on the same port: it pins the port for the fleet's
  lifetime (respawned workers rebind the same number, even with
  ``--port 0``) and is how the parent learns the ephemeral port in
  the first place.
* ``inherit`` — platforms without ``SO_REUSEPORT``: the parent binds
  and listens once, workers inherit the listener across ``fork`` and
  accept from it concurrently (thundering-herd accept, the pre-2013
  nginx shape — correct everywhere POSIX).

Shutdown is graceful end to end: a worker's first ``SIGTERM`` stops
the accept loop, drains in-flight requests for the grace period, then
exits 0 (a second signal exits immediately); the parent's monitor
thread distinguishes a supervised shutdown from an unexpected death
and only respawns the latter.

Crash-loop containment: ``crash_loop_threshold`` deaths of the same
worker slot within ``crash_loop_window`` seconds marks the slot
*failed* — no further respawns (a worker dying that fast is broken,
not unlucky; respawning it forever burns CPU and masks the problem).
The failure is published to every surviving worker through
:class:`~repro.service.resilience.SharedFleetState`, so their
``/readyz`` flips to degraded and load balancers can react.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _sentinel_wait
from typing import Callable, Mapping

from repro.errors import EngineError
from repro.service.aio import AioRankingServer
from repro.service.http import RankingHTTPServer
from repro.service.pipeline import RankingService
from repro.service.resilience import SharedFleetState

__all__ = ["FleetSupervisor", "serve_fleet", "supports_fleet", "supports_reuseport"]

#: A worker factory: called *inside* the forked child with that
#: worker's identity mapping; must return a fully wired service.
ServiceFactory = Callable[[Mapping[str, object]], RankingService]


def supports_fleet(start_method: str | None = None) -> bool:
    """Whether this platform can run a fleet (optionally, a given way).

    ``fork`` fleets need the POSIX ``fork`` start method; ``spawn``
    fleets work anywhere ``SO_REUSEPORT`` does (a spawned worker cannot
    inherit the parent's listener, so the kernel must balance separate
    per-worker listeners instead).  With no argument: any viable path.
    """
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" in methods or ("spawn" in methods and supports_reuseport())
    if start_method == "fork":
        return "fork" in methods
    if start_method == "spawn":
        return "spawn" in methods and supports_reuseport()
    return False


def supports_reuseport() -> bool:
    """Whether kernel-level listener load-balancing is available."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        finally:
            probe.close()
    except OSError:  # pragma: no cover - platform-dependent
        return False
    return True


def _adopt_socket(
    server: "RankingHTTPServer | AioRankingServer", sock: socket.socket
) -> None:
    """Swap ``server``'s unbound socket for an already prepared one.

    Both gateways expose the same socket surface (``socket``,
    ``server_address``, ``server_name``, ``server_port``,
    ``server_activate``), so the fleet adopts either identically.
    """
    server.socket.close()
    server.socket = sock
    server.server_address = sock.getsockname()[:2]
    host, port = server.server_address
    # What HTTPServer.server_bind would have derived:
    server.server_name = socket.getfqdn(host)
    server.server_port = port


def _worker_main(
    index: int,
    host: str,
    port: int,
    mode: str,
    inherited: socket.socket | None,
    service_factory: ServiceFactory,
    workers: int,
    verbose: bool,
    grace: float,
    fleet_state: SharedFleetState | None,
    gateway: str,
    ready: "multiprocessing.synchronize.Event",
) -> None:
    """The forked child's whole life: build a service, serve the port."""
    service = service_factory(
        {"index": index, "workers": workers, "mode": mode, "gateway": gateway}
    )
    if fleet_state is not None:
        # Fork-shared: lets this worker's /readyz report siblings the
        # supervisor has marked failed.
        service.fleet_state = fleet_state
    if gateway == "aio":
        server: RankingHTTPServer | AioRankingServer = AioRankingServer(
            (host, port), service, verbose=verbose, bind_and_activate=False
        )
        server.drain_grace = grace
    else:
        server = RankingHTTPServer(
            (host, port), service, verbose=verbose, bind_and_activate=False
        )

    signalled = threading.Event()

    def _graceful(signum, frame):  # noqa: ARG001 - signal API
        if signalled.is_set():
            # Second signal: the operator means it.  Daemon threads and
            # kernel socket cleanup make the hard exit safe.
            os._exit(0)
        signalled.set()
        # shutdown() must not run on the serve_forever thread (it joins
        # the loop) — and a signal handler runs exactly there.
        threading.Thread(
            target=server.shutdown, name="worker-shutdown", daemon=True
        ).start()

    # SIGTERM is the parent's fan-out; SIGINT arrives directly when the
    # whole process group catches Ctrl-C.  Either way: stop accepting,
    # drain, exit 0.
    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    if mode == "reuseport":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        _adopt_socket(server, sock)
        server.server_activate()
    else:
        # The parent's listener came through fork already listening.
        assert inherited is not None
        _adopt_socket(server, inherited)

    ttl = service.fault_injector.worker_ttl
    if ttl > 0:
        # Chaos hook: die hard (SIGKILL, no graceful path) this long
        # after boot — the crash-loop detector's test vector.
        timer = threading.Timer(ttl, os.kill, args=(os.getpid(), signal.SIGKILL))
        timer.daemon = True
        timer.start()

    try:
        ready.set()
        server.serve_forever()
        server.drain(grace)
    finally:
        service.close()
        server.server_close()


class _Worker:
    """Parent-side record of one child process."""

    __slots__ = ("index", "process", "ready")

    def __init__(self, index: int, process, ready):
        self.index = index
        self.process = process
        self.ready = ready


class FleetSupervisor:
    """Owns a fleet of gateway workers on one shared port.

    Parameters
    ----------
    service_factory:
        Called inside each worker child with that worker's identity
        mapping; returns the worker's service.  Under the ``fork``
        start method plain closures work (no pickling); under
        ``spawn`` it must be a picklable module-level callable.
    workers:
        Child process count (≥ 1).
    host / port:
        Bind address; ``port=0`` picks a free port once, which every
        worker (and every respawn) then shares.
    start_timeout:
        Seconds to wait for each worker's ready signal on start.
    grace:
        Seconds between ``SIGTERM`` and ``SIGKILL`` on stop (also each
        worker's in-flight drain budget).
    respawn_backoff / respawn_backoff_max:
        Delay before respawning a dead worker: ``respawn_backoff``
        after the first death in the window, doubling per further
        death, capped at ``respawn_backoff_max``.
    crash_loop_threshold / crash_loop_window:
        ``threshold`` deaths of one worker slot within ``window``
        seconds marks the slot failed — no further respawns, and
        :meth:`health` degrades.  Clean exits (exitcode 0 — a worker
        SIGTERMed directly that drained and left gracefully) are
        respawned without counting toward the window.
    start_method:
        ``"fork"`` (closures and pre-loaded worlds pass by reference;
        POSIX only), ``"spawn"`` (fresh interpreter per worker — the
        factory must pickle, and ``SO_REUSEPORT`` is required since a
        spawned child cannot inherit the parent's listener), or
        ``None`` to prefer ``fork`` where available.
    gateway:
        ``"aio"`` (default) runs each worker on the event-loop gateway
        (:mod:`repro.service.aio`); ``"threads"`` keeps the
        thread-per-connection :class:`RankingHTTPServer`.
    """

    def __init__(
        self,
        service_factory: ServiceFactory,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        verbose: bool = False,
        start_timeout: float = 30.0,
        grace: float = 5.0,
        respawn_backoff: float = 0.1,
        respawn_backoff_max: float = 2.0,
        crash_loop_threshold: int = 3,
        crash_loop_window: float = 5.0,
        start_method: str | None = None,
        gateway: str = "aio",
    ):
        if workers < 1:
            raise EngineError(f"fleet needs at least one worker, got {workers!r}")
        if gateway not in ("aio", "threads"):
            raise EngineError(
                f"gateway must be 'aio' or 'threads', got {gateway!r}"
            )
        if start_method not in (None, "fork", "spawn"):
            raise EngineError(
                f"start_method must be 'fork', 'spawn' or None, got {start_method!r}"
            )
        if start_method is None:
            start_method = "fork" if supports_fleet("fork") else "spawn"
        if not supports_fleet(start_method):
            raise EngineError(
                f"the serving fleet cannot use the {start_method!r} start "
                "method here ('fork' needs POSIX, 'spawn' needs "
                "SO_REUSEPORT); run single-process (--workers 1) instead"
            )
        if start_method == "spawn":
            # Fail at configuration time, not inside the first child:
            # everything a spawned worker receives crosses a pickle
            # boundary, and the factory is the piece users supply.
            import pickle

            try:
                pickle.dumps(service_factory)
            except Exception as exc:
                raise EngineError(
                    "the 'spawn' start method needs a picklable service "
                    f"factory (module-level callable), got one that fails "
                    f"to pickle: {exc}"
                ) from exc
        if respawn_backoff <= 0 or respawn_backoff_max < respawn_backoff:
            raise EngineError(
                "respawn backoff must be positive and no greater than its cap, "
                f"got {respawn_backoff!r}/{respawn_backoff_max!r}"
            )
        if crash_loop_threshold < 2 or crash_loop_window <= 0:
            raise EngineError(
                "crash loop detection needs threshold >= 2 and a positive "
                f"window, got {crash_loop_threshold!r}/{crash_loop_window!r}"
            )
        self.service_factory = service_factory
        self.workers = workers
        self.host = host
        self.verbose = verbose
        self.start_timeout = start_timeout
        self.grace = grace
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_max = respawn_backoff_max
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window = crash_loop_window
        self.start_method = start_method
        self.gateway = gateway
        # A spawned worker cannot inherit a listening socket, so spawn
        # always runs per-worker listeners under SO_REUSEPORT (already
        # validated above); fork picks the best mode the kernel offers.
        self.mode = "reuseport" if supports_reuseport() else "inherit"
        self._mp = multiprocessing.get_context(start_method)
        self.fleet_state = SharedFleetState(self._mp)
        self._lock = threading.Lock()
        self._fleet: list[_Worker] = []
        self._stopping = False
        self._started = False
        self._monitor: threading.Thread | None = None
        self._respawns = 0
        #: Per-slot death timestamps within the crash-loop window.
        self._deaths: dict[int, deque] = {}
        #: (respawn_at, index) — deaths waiting out their backoff.
        self._pending: list[tuple[float, int]] = []
        #: Slots the crash-loop detector has given up on.
        self._failed: dict[int, dict] = {}
        # Resolve the port up front, in the parent, whatever the mode:
        # an anchor (bound, never listening) under reuseport, the real
        # listener under inherit.
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.mode == "reuseport":
                self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._socket.bind((host, port))
            if self.mode == "inherit":
                self._socket.listen(128)
        except BaseException:
            self._socket.close()
            raise
        self.port = self._socket.getsockname()[1]

    # -- lifecycle ---------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Fork the fleet and wait until every worker is accepting."""
        if self._started:
            raise EngineError("fleet already started")
        self._started = True
        if self.start_method == "fork":
            # A preloaded world (serve --snapshot) is inherited
            # copy-on-write; freeze the heap so the workers' cyclic
            # collector never traverses it — those header writes would
            # privatize every shared page.  Respawned workers fork off
            # this same frozen image.
            import gc

            gc.collect()
            gc.freeze()
        with self._lock:
            for index in range(self.workers):
                self._fleet.append(self._spawn(index))
        for worker in list(self._fleet):
            if not worker.ready.wait(self.start_timeout):
                self.stop()
                raise EngineError(
                    f"fleet worker {worker.index} failed to become ready "
                    f"within {self.start_timeout}s"
                )
        self._monitor = threading.Thread(
            target=self._supervise, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    def _spawn(self, index: int) -> _Worker:
        ready = self._mp.Event()
        inherited = self._socket if self.mode == "inherit" else None
        process = self._mp.Process(
            target=_worker_main,
            args=(
                index,
                self.host,
                self.port,
                self.mode,
                inherited,
                self.service_factory,
                self.workers,
                self.verbose,
                self.grace,
                self.fleet_state,
                self.gateway,
                ready,
            ),
            name=f"repro-serve-worker-{index}",
        )
        process.start()
        return _Worker(index, process, ready)

    def _note_death(self, index: int, now: float, exitcode: int | None) -> None:
        """Record one worker death; schedule a respawn or give up."""
        if exitcode == 0:
            # A clean exit — the worker's own graceful handler drained
            # and returned 0 (an operator or orchestrator SIGTERMed it
            # directly).  That is a *cycle*, not a crash: respawn after
            # the base backoff without feeding the crash-loop window,
            # or a few routine cycles would fence the slot for good.
            self._pending.append((now + self.respawn_backoff, index))
            return
        deaths = self._deaths.setdefault(index, deque())
        deaths.append(now)
        while deaths and now - deaths[0] > self.crash_loop_window:
            deaths.popleft()
        if len(deaths) >= self.crash_loop_threshold:
            # Crash loop: this slot dies faster than it can serve.
            # Stop feeding it processes and tell the fleet.
            self._failed[index] = {
                "index": index,
                "deaths_in_window": len(deaths),
                "window_seconds": self.crash_loop_window,
                "failed_at": time.time(),
            }
            self.fleet_state.mark_failed()
            return
        backoff = min(
            self.respawn_backoff * (2 ** (len(deaths) - 1)),
            self.respawn_backoff_max,
        )
        self._pending.append((now + backoff, index))

    def _supervise(self) -> None:
        """Respawn workers that die without being asked to."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                now = time.monotonic()
                due = [index for (at, index) in self._pending if at <= now]
                if due:
                    self._pending = [
                        (at, index) for (at, index) in self._pending if at > now
                    ]
                    for index in due:
                        self._fleet.append(self._spawn(index))
                        self._respawns += 1
                sentinels = {
                    worker.process.sentinel: worker for worker in self._fleet
                }
                pending = bool(self._pending)
            if not sentinels and not pending:
                return
            if sentinels:
                dead = _sentinel_wait(list(sentinels), timeout=0.1)
            else:
                time.sleep(0.05)
                dead = []
            if not dead:
                continue
            for sentinel in dead:
                # The sentinel (an fd closing) fires a beat before the
                # child is reapable: join briefly — outside the lock —
                # so ``exitcode`` below is the real code, not None.
                sentinels[sentinel].process.join(timeout=1.0)
            with self._lock:
                if self._stopping:
                    return
                now = time.monotonic()
                for sentinel in dead:
                    worker = sentinels[sentinel]
                    if worker not in self._fleet:
                        continue
                    self._fleet.remove(worker)
                    self._note_death(worker.index, now, worker.process.exitcode)

    def stop(self) -> None:
        """SIGTERM fan-out, grace, SIGKILL stragglers, release the port."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            self._pending.clear()
            fleet = list(self._fleet)
        for worker in fleet:
            if worker.process.is_alive():
                worker.process.terminate()
        deadline = time.monotonic() + self.grace
        for worker in fleet:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in fleet:
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(self.grace)
        if self._monitor is not None and self._monitor.is_alive():
            self._monitor.join(self.grace)
        self._socket.close()
        if self._started and self.start_method == "fork":
            # Undo the pre-fork freeze: no more workers will fork off
            # this image, so the heap can be collected normally again.
            import gc

            gc.unfreeze()

    def __enter__(self) -> "FleetSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # -- parent-side observability ------------------------------------------
    def worker_pids(self) -> list[int]:
        with self._lock:
            return [
                worker.process.pid
                for worker in sorted(self._fleet, key=lambda w: w.index)
                if worker.process.pid is not None
            ]

    def health(self) -> dict:
        """The parent's aggregated fleet view (each worker's ``/healthz``
        reports only itself — the kernel picks who answers)."""
        with self._lock:
            fleet = sorted(self._fleet, key=lambda w: w.index)
            alive = sum(1 for worker in fleet if worker.process.is_alive())
            healthy = alive == self.workers and not self._failed
            body = {
                "status": "ok" if healthy else "degraded",
                "mode": self.mode,
                "gateway": self.gateway,
                "url": self.url,
                "workers": self.workers,
                "alive": alive,
                "respawns": self._respawns,
                "pending_respawns": len(self._pending),
                "failed": [
                    dict(self._failed[index]) for index in sorted(self._failed)
                ],
                "fleet": [
                    {
                        "index": worker.index,
                        "pid": worker.process.pid,
                        "alive": worker.process.is_alive(),
                    }
                    for worker in fleet
                ],
            }
        return body


def serve_fleet(
    service_factory: ServiceFactory,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    announce: Callable[[FleetSupervisor], None] | None = None,
    start_method: str | None = None,
    gateway: str = "aio",
) -> int:
    """Run a fleet until interrupted (the ``repro serve --workers N`` body).

    ``announce`` is called once the whole fleet is accepting — the CLI
    prints the listening line (and per-worker pids) from it.  Returns
    a process exit code.
    """
    supervisor = FleetSupervisor(
        service_factory,
        workers=workers,
        host=host,
        port=port,
        verbose=verbose,
        start_method=start_method,
        gateway=gateway,
    )

    def _interrupt(signum, frame):  # noqa: ARG001 - signal API
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _interrupt)
    try:
        supervisor.start()
        if announce is not None:
            announce(supervisor)
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        supervisor.stop()
    return 0
