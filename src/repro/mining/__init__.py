"""Preference mining (S9): history -> scored preference rules.

Candidates come from the observed feature keys; sigmas are estimated
with exactly the paper's semantics; evaluation measures recovery of
planted rules (experiment E6).
"""

from repro.mining.candidates import CandidatePair, enumerate_candidates
from repro.mining.evaluation import MiningReport, evaluate_mining, ranking_agreement
from repro.mining.miner import MinedRule, MiningConfig, mine_rules, to_repository

__all__ = [
    "CandidatePair",
    "MinedRule",
    "MiningConfig",
    "MiningReport",
    "enumerate_candidates",
    "evaluate_mining",
    "mine_rules",
    "ranking_agreement",
    "to_repository",
]
