"""The preference miner: history -> scored preference rules.

Implements the Section 6 proposal literally: candidate (context,
preference) pairs are scored with *exactly* the sigma semantics of
Section 3.2 (availability-conditioned choice frequency), filtered by
support, and emitted as :class:`~repro.rules.rule.PreferenceRule`s.

Because the generative history sampler of
:mod:`repro.workloads.history_gen` simulates choices with the same
semantics, mining a sampled history recovers the planted sigmas up to
sampling noise — experiment E6 quantifies the convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MiningError
from repro.history.episodes import Episode
from repro.history.log import HistoryLog
from repro.history.sigma import SigmaEstimate
from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule
from repro.mining.candidates import CandidatePair, enumerate_candidates

__all__ = ["MinedRule", "MiningConfig", "mine_rules"]

#: Key under which a default (context = TOP) candidate is counted.
DEFAULT_CONTEXT_KEY = "TOP"


@dataclass(frozen=True)
class MinedRule:
    """A mined rule with its supporting evidence."""

    rule: PreferenceRule
    estimate: SigmaEstimate

    @property
    def support(self) -> int:
        return self.estimate.denominator


@dataclass(frozen=True)
class MiningConfig:
    """Mining thresholds.

    Parameters
    ----------
    min_support:
        Minimum number of episodes in which the pair was choosable.
    min_lift:
        Minimum absolute difference between the pair's sigma and the
        *default* sigma of the same preference (how much the context
        changes behaviour).  Default-context candidates skip this test.
    smoothing:
        Laplace smoothing mass applied to the emitted sigma (0 keeps the
        raw ratio).
    include_default:
        Also emit default rules (context = ⊤) for preferences the user
        consistently (dis)favours regardless of context.
    """

    min_support: int = 5
    min_lift: float = 0.1
    smoothing: float = 0.0
    include_default: bool = False

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise MiningError(f"min_support must be >= 1, got {self.min_support}")
        if self.min_lift < 0.0:
            raise MiningError(f"min_lift must be >= 0, got {self.min_lift}")
        if self.smoothing < 0.0:
            raise MiningError(f"smoothing must be >= 0, got {self.smoothing}")


def _count_pair(log: HistoryLog, candidate: CandidatePair) -> SigmaEstimate:
    """Sigma counts for one candidate; TOP context matches every episode."""
    numerator = 0
    denominator = 0
    episodes: list[Episode] | HistoryLog
    if candidate.context_key == DEFAULT_CONTEXT_KEY:
        episodes = log
    else:
        episodes = log.with_context(candidate.context_key)
    for episode in episodes:
        if not episode.offered(candidate.preference_key):
            continue
        denominator += 1
        if episode.chose(candidate.preference_key):
            numerator += 1
    return SigmaEstimate(candidate.context_key, candidate.preference_key, numerator, denominator)


def mine_rules(log: HistoryLog, config: MiningConfig | None = None) -> list[MinedRule]:
    """Mine scored preference rules from a history log.

    Returns rules sorted by decreasing support, then rule id.  Rule ids
    are generated as ``m1``, ``m2``, ... in that order.

    Examples
    --------
    >>> from repro.history import Candidate, Episode, HistoryLog
    >>> log = HistoryLog()
    >>> for _ in range(10):
    ...     log.record(Episode.build(
    ...         context=["Morning"],
    ...         candidates=[Candidate.of("t", "TrafficBulletin"), Candidate.of("m", "Movie")],
    ...         chosen=["t"]))
    >>> mined = mine_rules(log, MiningConfig(min_support=5, min_lift=0.0))
    >>> any(r.rule.context_key == "Morning" and r.rule.preference_key == "TrafficBulletin"
    ...     for r in mined)
    True
    """
    config = config if config is not None else MiningConfig()

    # Default sigmas per preference serve as the lift baseline.
    default_estimates: dict[str, SigmaEstimate] = {}
    for preference_key in sorted(log.document_features()):
        default_estimates[preference_key] = _count_pair(
            log, CandidatePair(DEFAULT_CONTEXT_KEY, preference_key)
        )

    mined: list[MinedRule] = []
    for candidate in enumerate_candidates(log, include_default=True):
        is_default = candidate.context_key == DEFAULT_CONTEXT_KEY
        if is_default and not config.include_default:
            continue
        estimate = (
            default_estimates[candidate.preference_key]
            if is_default
            else _count_pair(log, candidate)
        )
        if estimate.denominator < config.min_support:
            continue
        if not is_default:
            baseline = default_estimates[candidate.preference_key]
            if baseline.defined and abs(estimate.value - baseline.value) < config.min_lift:
                continue
        sigma = (
            estimate.smoothed(config.smoothing) if config.smoothing > 0.0 else estimate.value
        )
        context, preference = candidate.concepts()
        mined.append(
            MinedRule(
                PreferenceRule(f"m{len(mined) + 1}", context, preference, sigma),
                estimate,
            )
        )
    mined.sort(key=lambda m: (-m.support, m.rule.rule_id))
    return mined


def to_repository(mined: list[MinedRule]) -> RuleRepository:
    """Collect mined rules into a repository (ids kept)."""
    return RuleRepository(m.rule for m in mined)
