"""Candidate rule enumeration for preference mining.

Section 6 ("Mining/learning preferences"): "a legitimate question to
ask is, how well the actual user preferences would be predicted by
mining the history of the user using exactly these semantics".

A mined rule needs a candidate (context, preference) pair.  The
candidate space here is deliberately the same one the history log can
speak about: the observed context feature keys and document feature
keys.  Each feature key is parsed back into the DL concept it denotes
(the rule layer stringifies concepts canonically, so keys round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dl.concepts import TOP, Concept
from repro.dl.parser import parse_concept
from repro.errors import MiningError
from repro.history.log import HistoryLog

__all__ = ["CandidatePair", "enumerate_candidates"]


@dataclass(frozen=True)
class CandidatePair:
    """A candidate (context, preference) pair with its feature keys."""

    context_key: str
    preference_key: str

    def concepts(self) -> tuple[Concept, Concept]:
        """Parse the keys back into concepts (``TOP`` for the default key)."""
        context = TOP if self.context_key == "TOP" else parse_concept(self.context_key)
        preference = parse_concept(self.preference_key)
        return context, preference


def enumerate_candidates(
    log: HistoryLog,
    include_default: bool = True,
    max_candidates: int = 10000,
) -> Iterator[CandidatePair]:
    """All (observed context feature, observed document feature) pairs.

    With ``include_default`` a ``TOP`` context is paired with every
    document feature, producing candidate default rules.

    Raises
    ------
    MiningError
        If the candidate space exceeds ``max_candidates`` (guard against
        degenerate logs).
    """
    context_keys = sorted(log.context_features())
    document_keys = sorted(log.document_features())
    if include_default:
        context_keys = ["TOP"] + context_keys
    total = len(context_keys) * len(document_keys)
    if total > max_candidates:
        raise MiningError(
            f"candidate space of {total} pairs exceeds max_candidates={max_candidates}"
        )
    for context_key in context_keys:
        for document_key in document_keys:
            yield CandidatePair(context_key, document_key)
