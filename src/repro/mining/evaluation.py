"""Mining evaluation: does history mining recover the planted rules?

The experiment behind E6: generate a history from ground-truth rules
(with the generative model matching the sigma semantics), mine it, and
measure

* **sigma error** — mean absolute difference between mined and planted
  sigma over the recovered pairs;
* **recall** — fraction of planted (context, preference) pairs
  recovered;
* **precision** — fraction of mined pairs that were planted;
* **ranking agreement** — Kendall tau between scores assigned by the
  true and the mined model to a shared candidate slate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rules.repository import RuleRepository
from repro.rules.rule import PreferenceRule
from repro.ir.metrics import kendall_tau
from repro.mining.miner import MinedRule

__all__ = ["MiningReport", "evaluate_mining", "ranking_agreement"]


@dataclass(frozen=True)
class MiningReport:
    """Recovery quality of one mining run."""

    planted: int
    mined: int
    matched: int
    sigma_mae: float

    @property
    def recall(self) -> float:
        return self.matched / self.planted if self.planted else 0.0

    @property
    def precision(self) -> float:
        return self.matched / self.mined if self.mined else 0.0

    def __str__(self) -> str:
        return (
            f"planted={self.planted} mined={self.mined} matched={self.matched} "
            f"recall={self.recall:.2f} precision={self.precision:.2f} "
            f"sigma_mae={self.sigma_mae:.4f}"
        )


def evaluate_mining(
    true_rules: RuleRepository | list[PreferenceRule],
    mined: list[MinedRule],
) -> MiningReport:
    """Compare mined rules against the planted ground truth by feature pair."""
    truth = {rule.feature_pair: rule.sigma for rule in true_rules}
    recovered = {m.rule.feature_pair: m.rule.sigma for m in mined}

    matched_pairs = set(truth) & set(recovered)
    if matched_pairs:
        sigma_mae = sum(abs(truth[pair] - recovered[pair]) for pair in matched_pairs) / len(
            matched_pairs
        )
    else:
        sigma_mae = float("nan")
    return MiningReport(
        planted=len(truth),
        mined=len(recovered),
        matched=len(matched_pairs),
        sigma_mae=sigma_mae,
    )


def ranking_agreement(
    true_scores: dict[str, float],
    mined_scores: dict[str, float],
) -> float:
    """Kendall tau between two score maps over their shared documents."""
    shared = sorted(set(true_scores) & set(mined_scores))
    if len(shared) < 2:
        return 0.0
    return kendall_tau(
        [true_scores[doc] for doc in shared],
        [mined_scores[doc] for doc in shared],
    )
