"""Group aggregation strategies.

Standard choices from the group-recommendation literature, all mapping
a vector of member probabilities to one group score in ``[0, 1]``:

* **average** — utilitarian mean;
* **product** — joint "everyone considers it ideal" (independent
  members), the direct probabilistic reading of the paper's model;
* **least misery** — the unhappiest member decides (min);
* **most pleasure** — the happiest member decides (max).

All strategies satisfy unanimity (identical inputs aggregate to that
value) and monotonicity (raising one member's score never lowers the
group score) — property-tested invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ScoringError

__all__ = [
    "AggregationStrategy",
    "Average",
    "Product",
    "LeastMisery",
    "MostPleasure",
    "STRATEGIES",
    "resolve_strategy",
]


class AggregationStrategy:
    """Maps member probabilities to a group score."""

    name = "abstract"

    def aggregate(self, values: Sequence[float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Average(AggregationStrategy):
    name = "average"

    def aggregate(self, values: Sequence[float]) -> float:
        _check(values)
        return sum(values) / len(values)


@dataclass(frozen=True)
class Product(AggregationStrategy):
    name = "product"

    def aggregate(self, values: Sequence[float]) -> float:
        _check(values)
        result = 1.0
        for value in values:
            result *= value
        return result


@dataclass(frozen=True)
class LeastMisery(AggregationStrategy):
    name = "least_misery"

    def aggregate(self, values: Sequence[float]) -> float:
        _check(values)
        return min(values)


@dataclass(frozen=True)
class MostPleasure(AggregationStrategy):
    name = "most_pleasure"

    def aggregate(self, values: Sequence[float]) -> float:
        _check(values)
        return max(values)


def _check(values: Sequence[float]) -> None:
    if not values:
        raise ScoringError("cannot aggregate an empty score vector")


STRATEGIES: dict[str, AggregationStrategy] = {
    strategy.name: strategy
    for strategy in (Average(), Product(), LeastMisery(), MostPleasure())
}


def resolve_strategy(strategy: AggregationStrategy | str) -> AggregationStrategy:
    """Accept either a strategy object or its name."""
    if isinstance(strategy, AggregationStrategy):
        return strategy
    try:
        return STRATEGIES[strategy]
    except KeyError as exc:
        raise ScoringError(
            f"unknown aggregation strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from exc
