"""Multi-user (group) ranking (S10) — the Section 6 extension."""

from repro.multiuser.group import GroupMember, GroupRanker, GroupScore
from repro.multiuser.strategies import (
    STRATEGIES,
    AggregationStrategy,
    Average,
    LeastMisery,
    MostPleasure,
    Product,
    resolve_strategy,
)

__all__ = [
    "AggregationStrategy",
    "Average",
    "GroupMember",
    "GroupRanker",
    "GroupScore",
    "LeastMisery",
    "MostPleasure",
    "Product",
    "STRATEGIES",
    "resolve_strategy",
]
