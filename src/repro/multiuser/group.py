"""Multi-user ranking: the Section 6 group extension.

"In some cases we might have to deal with ranking results for multiple
users (for example if multiple users want to watch TV together).  We
conjecture that this could be naturally addressed with the model
presented here."

The natural reading implemented here: each member has their own scorer
(their own rules and, via the shared ABox, the shared context); a group
score aggregates the members' per-document ideal-document probabilities
under a chosen strategy.

Scorers over the same world share one compiled reasoner
(:func:`repro.reason.compiled_kb`), so group ranking reasons each
context event and each document feature *once per group and epoch*, not
once per member: the first member's binding fills the membership and
probability memos the remaining members (and repeated rankings under an
unchanged context) hit.  :meth:`GroupRanker.shared_kb` exposes that KB
when the sharing actually holds.

Members need not share one literal ABox: tenants minted from a
:class:`~repro.tenants.TenantRegistry` rank over copy-on-write
*overlays* of one base world — each member keeps a private context and
private rules, while the static knowledge is reasoned once in the
shared base tier.  :meth:`GroupRanker.from_sessions` builds a group
straight from such sessions and :meth:`GroupRanker.shared_base`
reports the common base world when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ScoringError
from repro.core.scorer import ContextAwareScorer
from repro.dl.abox import ABox
from repro.multiuser.strategies import STRATEGIES, AggregationStrategy, resolve_strategy
from repro.reason import CompiledKB

__all__ = ["GroupMember", "GroupScore", "GroupRanker"]


@dataclass(frozen=True)
class GroupMember:
    """One member: a display name plus their personal scorer."""

    name: str
    scorer: ContextAwareScorer


@dataclass(frozen=True)
class GroupScore:
    """A document's group score with the per-member breakdown."""

    document: str
    value: float
    per_member: tuple[tuple[str, float], ...]

    def member_score(self, name: str) -> float:
        for member, value in self.per_member:
            if member == name:
                return value
        raise ScoringError(f"no member named {name!r} in this group score")


@dataclass
class GroupRanker:
    """Ranks documents for a group of situated users.

    Parameters
    ----------
    members:
        The group (at least one member).
    strategy:
        Aggregation: ``"average"``, ``"product"``, ``"least_misery"``,
        ``"most_pleasure"`` or any :class:`AggregationStrategy`.

    Examples
    --------
    >>> # See examples/group_watching.py for an end-to-end group session.
    """

    members: Sequence[GroupMember]
    strategy: AggregationStrategy | str = "average"

    def __post_init__(self) -> None:
        if not self.members:
            raise ScoringError("a group needs at least one member")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ScoringError(f"duplicate member names in group: {names}")
        self.strategy = resolve_strategy(self.strategy)

    @classmethod
    def from_sessions(
        cls,
        sessions: Mapping[str, object] | Iterable[object],
        strategy: AggregationStrategy | str = "average",
    ) -> "GroupRanker":
        """A group from tenant sessions (or anything with ``as_member``).

        Accepts a ``{name: session}`` mapping (sessions *or* engines),
        or an iterable of tenant sessions named by their ``tenant_id``
        — bare engines carry no name, so pass them in a mapping.
        Sessions from one :class:`~repro.tenants.TenantRegistry` are
        overlays of one base world, so the group shares the base
        reasoning tier while every member keeps a private context and
        rule set.
        """
        if isinstance(sessions, Mapping):
            named = list(sessions.items())
        else:
            named = [(getattr(session, "tenant_id", None), session) for session in sessions]
        members = []
        for name, session in named:
            as_member = getattr(session, "as_member", None)
            if as_member is None:
                raise ScoringError(
                    f"cannot build a group member from {session!r}; expected a "
                    "repro.tenants.UserSession or RankingEngine (with as_member)"
                )
            if name is None:
                raise ScoringError(
                    f"no member name for {session!r}; pass a {{name: session}} "
                    "mapping for objects without a tenant_id"
                )
            members.append(as_member(name))
        return cls(members, strategy=strategy)

    def shared_kb(self) -> CompiledKB | None:
        """The one compiled reasoner behind every member, if shared.

        ``None`` when members were built over different worlds (or with
        distinct private KBs) — each then reasons on its own memo.
        Overlay-backed members always have distinct KBs; their sharing
        happens one level down, in the base tier
        (:meth:`shared_base`).
        """
        first = self.members[0].scorer.kb
        if all(member.scorer.kb is first for member in self.members[1:]):
            return first
        return None

    def shared_base(self) -> ABox | None:
        """The common static world behind every member, if one exists.

        For members over one literal ABox this is that ABox; for
        tenant overlays it is the shared base they all read through to
        (whose reasoning lands in one shared base tier).  ``None`` when
        members span unrelated worlds.
        """
        def base_of(abox: ABox) -> ABox:
            below = getattr(abox, "base", None)
            return base_of(below) if isinstance(below, ABox) else abox

        first = base_of(self.members[0].scorer.abox)
        if all(base_of(member.scorer.abox) is first for member in self.members[1:]):
            return first
        return None

    def score(self, documents: Iterable[str]) -> list[GroupScore]:
        """Score documents for every member and aggregate.

        Members run sequentially over the same candidate list; with a
        shared KB the first member's cold bind warms the reasoner for
        the rest (shared context events, shared document features).
        """
        documents = list(documents)
        per_member_scores = {
            member.name: member.scorer.score_map(documents) for member in self.members
        }
        results = []
        for document in documents:
            member_values = tuple(
                (member.name, per_member_scores[member.name][document])
                for member in self.members
            )
            value = self.strategy.aggregate([v for _name, v in member_values])
            results.append(GroupScore(document, value, member_values))
        return results

    def rank(self, documents: Iterable[str]) -> list[GroupScore]:
        """Group scores, best first (ties by document name)."""
        scores = self.score(documents)
        scores.sort(key=lambda score: (-score.value, score.document))
        return scores

    @staticmethod
    def available_strategies() -> tuple[str, ...]:
        return tuple(sorted(STRATEGIES))
