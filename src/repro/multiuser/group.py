"""Multi-user ranking: the Section 6 group extension.

"In some cases we might have to deal with ranking results for multiple
users (for example if multiple users want to watch TV together).  We
conjecture that this could be naturally addressed with the model
presented here."

The natural reading implemented here: each member has their own scorer
(their own rules and, via the shared ABox, the shared context); a group
score aggregates the members' per-document ideal-document probabilities
under a chosen strategy.

Scorers over the same world share one compiled reasoner
(:func:`repro.reason.compiled_kb`), so group ranking reasons each
context event and each document feature *once per group and epoch*, not
once per member: the first member's binding fills the membership and
probability memos the remaining members (and repeated rankings under an
unchanged context) hit.  :meth:`GroupRanker.shared_kb` exposes that KB
when the sharing actually holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ScoringError
from repro.core.scorer import ContextAwareScorer
from repro.multiuser.strategies import STRATEGIES, AggregationStrategy, resolve_strategy
from repro.reason import CompiledKB

__all__ = ["GroupMember", "GroupScore", "GroupRanker"]


@dataclass(frozen=True)
class GroupMember:
    """One member: a display name plus their personal scorer."""

    name: str
    scorer: ContextAwareScorer


@dataclass(frozen=True)
class GroupScore:
    """A document's group score with the per-member breakdown."""

    document: str
    value: float
    per_member: tuple[tuple[str, float], ...]

    def member_score(self, name: str) -> float:
        for member, value in self.per_member:
            if member == name:
                return value
        raise ScoringError(f"no member named {name!r} in this group score")


@dataclass
class GroupRanker:
    """Ranks documents for a group of situated users.

    Parameters
    ----------
    members:
        The group (at least one member).
    strategy:
        Aggregation: ``"average"``, ``"product"``, ``"least_misery"``,
        ``"most_pleasure"`` or any :class:`AggregationStrategy`.

    Examples
    --------
    >>> # See examples/group_watching.py for an end-to-end group session.
    """

    members: Sequence[GroupMember]
    strategy: AggregationStrategy | str = "average"

    def __post_init__(self) -> None:
        if not self.members:
            raise ScoringError("a group needs at least one member")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ScoringError(f"duplicate member names in group: {names}")
        self.strategy = resolve_strategy(self.strategy)

    def shared_kb(self) -> CompiledKB | None:
        """The one compiled reasoner behind every member, if shared.

        ``None`` when members were built over different worlds (or with
        distinct private KBs) — each then reasons on its own memo.
        """
        first = self.members[0].scorer.kb
        if all(member.scorer.kb is first for member in self.members[1:]):
            return first
        return None

    def score(self, documents: Iterable[str]) -> list[GroupScore]:
        """Score documents for every member and aggregate.

        Members run sequentially over the same candidate list; with a
        shared KB the first member's cold bind warms the reasoner for
        the rest (shared context events, shared document features).
        """
        documents = list(documents)
        per_member_scores = {
            member.name: member.scorer.score_map(documents) for member in self.members
        }
        results = []
        for document in documents:
            member_values = tuple(
                (member.name, per_member_scores[member.name][document])
                for member in self.members
            )
            value = self.strategy.aggregate([v for _name, v in member_values])
            results.append(GroupScore(document, value, member_values))
        return results

    def rank(self, documents: Iterable[str]) -> list[GroupScore]:
        """Group scores, best first (ties by document name)."""
        scores = self.score(documents)
        scores.sort(key=lambda score: (-score.value, score.document))
        return scores

    @staticmethod
    def available_strategies() -> tuple[str, ...]:
        return tuple(sorted(STRATEGIES))
