"""A rule-based optimiser for relational-algebra trees.

The paper's Section 6 locates the performance fix in pruning work
"in early stages"; on the storage side the classical counterpart is
predicate push-down.  This module implements semantics-preserving
rewrites over :mod:`repro.storage.algebra` trees:

* ``σ(σ(x))``          → one selection with a conjoined predicate;
* ``σ(∪)``             → union of selections;
* ``σ(−)``             → difference of selections (data columns match
  pairwise, so filtering both sides is equivalent);
* ``σ(⋈)``             → conjunct-wise push-down of the predicate parts
  that mention only one side's columns;
* ``π(π(x))``          → the outer projection alone;
* ``ρ`` with an empty/identity mapping → dropped.

:func:`schema_of` infers an operator's output schema without touching
any rows (it is also what makes join push-down decidable), and
:func:`explain_plan` renders a plan for humans.  Equivalence of the
optimised plan is property-tested on random concept-compiled views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.storage.algebra import (
    AlgebraNode,
    AndPredicate,
    ColumnComparison,
    Comparison,
    Constant,
    Difference,
    Join,
    NotPredicate,
    OrPredicate,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.storage.schema import EVENT_COLUMN, Column, ColumnType, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database

__all__ = ["schema_of", "optimize", "explain_plan", "predicate_columns"]


def schema_of(database: "Database", node: AlgebraNode) -> Schema:
    """Infer an operator tree's output schema without evaluating it."""
    if isinstance(node, Scan):
        if database.has_base_table(node.table):
            return database.table(node.table).schema
        return schema_of(database, database.view_definition(node.table))
    if isinstance(node, Constant):
        return node.schema
    if isinstance(node, Select):
        return schema_of(database, node.child)
    if isinstance(node, Project):
        return schema_of(database, node.child).project(node.columns)
    if isinstance(node, Rename):
        return schema_of(database, node.child).rename(dict(node.mapping))
    if isinstance(node, Union):
        return schema_of(database, node.left)
    if isinstance(node, Difference):
        return schema_of(database, node.left)
    if isinstance(node, Join):
        left = schema_of(database, node.left)
        right = schema_of(database, node.right)
        right_join_columns = {right_col for _l, right_col in node.on}
        columns = [column for column in left if column.name != EVENT_COLUMN]
        columns.extend(
            column
            for column in right
            if column.name not in right_join_columns and column.name != EVENT_COLUMN
        )
        if left.has_event_column or right.has_event_column:
            columns.append(Column(EVENT_COLUMN, ColumnType.EVENT))
        return Schema(columns)
    raise QueryError(f"cannot infer schema of unknown algebra node {node!r}")


def predicate_columns(predicate: Predicate) -> frozenset[str]:
    """The column names a predicate reads."""
    if isinstance(predicate, Comparison):
        return frozenset({predicate.column})
    if isinstance(predicate, ColumnComparison):
        return frozenset({predicate.left, predicate.right})
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        columns: frozenset[str] = frozenset()
        for part in predicate.parts:
            columns |= predicate_columns(part)
        return columns
    if isinstance(predicate, NotPredicate):
        return predicate_columns(predicate.part)
    raise QueryError(f"cannot analyse unknown predicate {predicate!r}")


def _conjuncts(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, AndPredicate):
        result: list[Predicate] = []
        for part in predicate.parts:
            result.extend(_conjuncts(part))
        return result
    return [predicate]


def _conjoin(parts: list[Predicate]) -> Predicate | None:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return AndPredicate(tuple(parts))


def optimize(database: "Database", node: AlgebraNode) -> AlgebraNode:
    """Return an equivalent, typically cheaper, operator tree."""
    node = _rewrite(database, node)
    # One extra pass catches rewrites enabled by the first (e.g. a
    # selection pushed through a union meeting another selection).
    return _rewrite(database, node)


def _rewrite(database: "Database", node: AlgebraNode) -> AlgebraNode:
    if isinstance(node, Select):
        child = _rewrite(database, node.child)
        return _rewrite_select(database, node.predicate, child)
    if isinstance(node, Project):
        child = _rewrite(database, node.child)
        if isinstance(child, Project) and child.distinct == node.distinct:
            return Project(child.child, node.columns, node.distinct)
        return Project(child, node.columns, node.distinct)
    if isinstance(node, Rename):
        child = _rewrite(database, node.child)
        effective = tuple((old, new) for old, new in node.mapping if old != new)
        if not effective:
            return child
        return Rename(child, effective)
    if isinstance(node, Join):
        return Join(_rewrite(database, node.left), _rewrite(database, node.right), node.on)
    if isinstance(node, Union):
        return Union(_rewrite(database, node.left), _rewrite(database, node.right))
    if isinstance(node, Difference):
        return Difference(_rewrite(database, node.left), _rewrite(database, node.right))
    return node


def _rewrite_select(database: "Database", predicate: Predicate, child: AlgebraNode) -> AlgebraNode:
    if isinstance(child, Select):
        merged = _conjoin(_conjuncts(predicate) + _conjuncts(child.predicate))
        assert merged is not None
        return _rewrite_select(database, merged, child.child)
    if isinstance(child, Union):
        return Union(
            _rewrite_select(database, predicate, child.left),
            _rewrite_select(database, predicate, child.right),
        )
    if isinstance(child, Difference):
        # Difference matches rows on their data columns, so filtering
        # both sides by a data-column predicate is equivalent.
        return Difference(
            _rewrite_select(database, predicate, child.left),
            _rewrite_select(database, predicate, child.right),
        )
    if isinstance(child, Join):
        left_schema = schema_of(database, child.left)
        right_schema = schema_of(database, child.right)
        push_left: list[Predicate] = []
        push_right: list[Predicate] = []
        keep: list[Predicate] = []
        for part in _conjuncts(predicate):
            columns = predicate_columns(part)
            if EVENT_COLUMN in columns:
                keep.append(part)
            elif all(name in left_schema for name in columns):
                push_left.append(part)
            elif all(name in right_schema for name in columns):
                push_right.append(part)
            else:
                keep.append(part)
        left = child.left
        right = child.right
        left_pred = _conjoin(push_left)
        if left_pred is not None:
            left = _rewrite_select(database, left_pred, left)
        right_pred = _conjoin(push_right)
        if right_pred is not None:
            right = _rewrite_select(database, right_pred, right)
        joined = Join(left, right, child.on)
        rest = _conjoin(keep)
        return Select(joined, rest) if rest is not None else joined
    return Select(child, predicate)


def explain_plan(node: AlgebraNode, indent: str = "  ") -> str:
    """Render a plan as an indented operator tree."""
    lines: list[str] = []

    def walk(current: AlgebraNode, depth: int) -> None:
        lines.append(f"{indent * depth}{current.describe()}")
        for child_name in ("child", "left", "right"):
            child = getattr(current, child_name, None)
            if isinstance(child, AlgebraNode):
                walk(child, depth + 1)

    walk(node, 0)
    return "\n".join(lines)
