"""Compiling DL concept expressions to relational-algebra views.

The paper (following Borgida & Brachman's "Loading data into description
reasoners") "express[es] DL concept expressions using SQL queries and
add[s] support for the propagation of event expressions" and can then
"construct a database view for each concept expression containing all
tuples that are included in the concept expression, together with an
event expression as a measure of the probability by which they are
included".

:func:`compile_concept` produces an operator tree of schema
``(id, event)`` over the concept/role tables of a
:class:`~repro.storage.database.Database`:

==================  =====================================================
concept             algebra
==================  =====================================================
``A`` (atomic)      union of the concept tables of A and its TBox
                    descendants (missing tables contribute nothing)
``¬C``              Individuals − compile(C)   (event: ``AND NOT``)
``C ⊓ D``           join on id                 (event: ``AND``)
``C ⊔ D``           union                      (event: ``OR``-merged)
``∃R.C``            role R ⋈ compile(C) on destination=id, projected to
                    source (event: ``AND`` then ``OR``-merged)
``R VALUE a``       role R filtered on destination = a
``∀R.C``            rewritten to ¬∃R.¬C (equivalent under the closed
                    world, and exactly what the instance checker computes)
``{a, b}``          inline constant with certain events
==================  =====================================================

The correspondence with :func:`repro.dl.instances.retrieve` — same
individuals, same event probabilities — is a tested invariant.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.events.expr import ALWAYS
from repro.dl.concepts import (
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
    complement,
    some,
)
from repro.dl.tbox import TBox
from repro.dl.vocabulary import RoleName
from repro.storage.algebra import (
    AlgebraNode,
    ColumnComparison,
    Comparison,
    Constant,
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.storage.database import (
    INDIVIDUALS_TABLE,
    Database,
    concept_schema,
    concept_table_name,
    role_table_name,
)

__all__ = ["compile_concept", "create_concept_view"]


def _empty() -> Constant:
    return Constant(concept_schema(), ())


def _role_union(role: RoleName, tbox: TBox, database: Database) -> AlgebraNode | None:
    """Union of the role's table and its sub-roles' tables, or None.

    Duplicate (source, destination) pairs across sub-roles OR-merge
    their events through the union semantics.
    """
    scans = []
    for sub_role in sorted(tbox.role_descendants(role), key=lambda r: r.name):
        table = role_table_name(sub_role)
        if database.has_base_table(table):
            scans.append(Scan(table))
    if not scans:
        return None
    tree: AlgebraNode = scans[0]
    for scan in scans[1:]:
        tree = Union(tree, scan)
    return tree


def _successor_view(role: RoleName, filler: Concept, tbox: TBox, database: Database) -> AlgebraNode | None:
    """``(source, destination, event)`` of role successors in the filler."""
    roles = _role_union(role, tbox, database)
    if roles is None:
        return None
    filler_view = _compile(filler, tbox, database)
    joined = Join(roles, filler_view, on=(("destination", "id"),))
    return Project(joined, ("source", "destination", "event"))


def compile_concept(concept: Concept, tbox: TBox, database: Database) -> AlgebraNode:
    """Compile a concept expression into an ``(id, event)`` operator tree."""
    return _compile(tbox.expand(concept), tbox, database)


def _compile(concept: Concept, tbox: TBox, database: Database) -> AlgebraNode:
    if isinstance(concept, Top):
        return Scan(INDIVIDUALS_TABLE)
    if isinstance(concept, Bottom):
        return _empty()
    if isinstance(concept, Atomic):
        scans = []
        for name in sorted(tbox.descendants(concept.concept), key=lambda n: n.name):
            table = concept_table_name(name)
            if database.has_base_table(table):
                scans.append(Scan(table))
        if not scans:
            return _empty()
        tree: AlgebraNode = scans[0]
        for scan in scans[1:]:
            tree = Union(tree, scan)
        return tree
    if isinstance(concept, Not):
        return Difference(Scan(INDIVIDUALS_TABLE), _compile(concept.child, tbox, database))
    if isinstance(concept, And):
        parts = [_compile(child, tbox, database) for child in concept.children]
        tree = parts[0]
        for part in parts[1:]:
            tree = Join(tree, part, on=(("id", "id"),))
        return tree
    if isinstance(concept, Or):
        parts = [_compile(child, tbox, database) for child in concept.children]
        tree = parts[0]
        for part in parts[1:]:
            tree = Union(tree, part)
        return tree
    if isinstance(concept, OneOf):
        rows = tuple((member.name, ALWAYS) for member in sorted(concept.members, key=lambda m: m.name))
        return Constant(concept_schema(), rows)
    if isinstance(concept, HasValue):
        roles = _role_union(concept.role, tbox, database)
        if roles is None:
            return _empty()
        filtered = Select(roles, Comparison("destination", "=", concept.value.name))
        projected = Project(filtered, ("source", "event"))
        return Rename(projected, (("source", "id"),))
    if isinstance(concept, Exists):
        successors = _successor_view(concept.role, concept.filler, tbox, database)
        if successors is None:
            return _empty()
        projected = Project(successors, ("source", "event"))
        return Rename(projected, (("source", "id"),))
    if isinstance(concept, ForAll):
        # Closed world: ∀R.C ≡ ¬∃R.¬C, matching the instance checker.
        rewritten = complement(some(concept.role, complement(concept.filler)))
        return _compile(rewritten, tbox, database)
    if isinstance(concept, AtLeast):
        # n-way self-join over the successor view with an ordering
        # predicate on the destinations, so each n-subset of distinct
        # successors contributes exactly once; events conjoin through
        # the joins and alternatives OR-merge in the final projection.
        successors = _successor_view(concept.role, concept.filler, tbox, database)
        if successors is None:
            return _empty()
        tree: AlgebraNode = Rename(successors, (("destination", "dest_0"),))
        for index in range(1, concept.count):
            copy = Rename(successors, (("source", "src"), ("destination", f"dest_{index}")))
            tree = Join(tree, copy, on=(("source", "src"),))
            tree = Select(tree, ColumnComparison(f"dest_{index - 1}", "<", f"dest_{index}"))
        projected = Project(tree, ("source", "event"))
        return Rename(projected, (("source", "id"),))
    raise QueryError(f"cannot compile unknown concept node {concept!r}")


def create_concept_view(
    database: Database,
    name: str,
    concept: Concept,
    tbox: TBox,
) -> str:
    """Register the compiled concept as a named view; returns the name."""
    database.create_view(name, compile_concept(concept, tbox, database))
    return name
