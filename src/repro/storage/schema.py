"""Relational schemas with an EVENT column type.

The paper's naive implementation "extended PostgreSQL with a datatype
for event expressions".  In this engine the extension is the ``EVENT``
column type, whose values are :class:`~repro.events.expr.EventExpr`
objects; the relational algebra combines them when tuples are joined,
merged or subtracted.

By convention (and enforced by the concept/role table constructors in
:mod:`repro.storage.database`), a probabilistic table's event column is
named ``event`` — the same convention the SQL view generator of the
sqlite backend relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.events.expr import EventExpr

__all__ = ["ColumnType", "Column", "Schema", "EVENT_COLUMN"]

#: Conventional name of the event-expression column.
EVENT_COLUMN = "event"


class ColumnType(Enum):
    """The value domains supported by the engine."""

    INT = "int"
    REAL = "real"
    TEXT = "text"
    EVENT = "event"

    def accepts(self, value: object) -> bool:
        """Whether a Python value is admissible in this column."""
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.REAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        return isinstance(value, EventExpr)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.type, ColumnType):
            raise SchemaError(f"column type must be a ColumnType, got {self.type!r}")

    def __str__(self) -> str:
        return f"{self.name} {self.type.value.upper()}"


class Schema:
    """An ordered list of uniquely named columns.

    Examples
    --------
    >>> schema = Schema([Column("id", ColumnType.TEXT), Column("event", ColumnType.EVENT)])
    >>> schema.index_of("id")
    0
    >>> schema.has_event_column
    True
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Iterable[Column]):
        self.columns = tuple(columns)
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not self.columns:
            raise SchemaError("a schema needs at least one column")
        self._index = {column.name: position for position, column in enumerate(self.columns)}

    # -- lookups ----------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(f"no column {name!r} in schema {self.names}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def has_event_column(self) -> bool:
        return EVENT_COLUMN in self._index and self.column(EVENT_COLUMN).type is ColumnType.EVENT

    @property
    def data_names(self) -> tuple[str, ...]:
        """Column names excluding the event column (the dedup key)."""
        return tuple(name for name in self.names if name != EVENT_COLUMN)

    # -- derivation -----------------------------------------------------
    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to the given columns, in the given order."""
        return Schema([self.column(name) for name in names])

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Schema with columns renamed per ``mapping`` (others unchanged)."""
        for old in mapping:
            self.index_of(old)  # raises on unknown names
        return Schema(
            [Column(mapping.get(column.name, column.name), column.type) for column in self.columns]
        )

    def validate_row(self, row: tuple) -> None:
        """Raise :class:`SchemaError` unless ``row`` fits this schema."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row width {len(row)} does not match schema width {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if not column.type.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not admissible in column {column}"
                )

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(column) for column in self.columns) + ")"
