"""Probabilistic relational storage (S3).

The paper's naive implementation substrate: tables with event-expression
columns, the Fuhr–Roelleke probabilistic relational algebra, virtual
views, the DL-concept-to-view compiler, a mini SQL front end able to run
the paper's introduction query verbatim, and an sqlite3 backend whose
views perform event propagation inside real SQL.
"""

from repro.storage.algebra import (
    AlgebraNode,
    AndPredicate,
    ColumnComparison,
    Comparison,
    Constant,
    Difference,
    Join,
    NotPredicate,
    OrPredicate,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
    union_all,
)
from repro.storage.database import (
    CONCEPT_TABLE_PREFIX,
    INDIVIDUALS_TABLE,
    ROLE_TABLE_PREFIX,
    Database,
    concept_schema,
    concept_table_name,
    role_schema,
    role_table_name,
)
from repro.storage.mapping import compile_concept, create_concept_view
from repro.storage.optimizer import explain_plan, optimize, schema_of
from repro.storage.schema import EVENT_COLUMN, Column, ColumnType, Schema
from repro.storage.sql import ResultSet, SelectStatement, SqlSession, parse_sql
from repro.storage.sqlite_backend import SqliteBackend
from repro.storage.table import Table

__all__ = [
    "AlgebraNode",
    "AndPredicate",
    "CONCEPT_TABLE_PREFIX",
    "Column",
    "ColumnComparison",
    "ColumnType",
    "Comparison",
    "Constant",
    "Database",
    "Difference",
    "EVENT_COLUMN",
    "INDIVIDUALS_TABLE",
    "Join",
    "NotPredicate",
    "OrPredicate",
    "Predicate",
    "Project",
    "ROLE_TABLE_PREFIX",
    "Rename",
    "ResultSet",
    "Scan",
    "Schema",
    "Select",
    "SelectStatement",
    "SqlSession",
    "SqliteBackend",
    "Table",
    "Union",
    "compile_concept",
    "concept_schema",
    "concept_table_name",
    "create_concept_view",
    "evaluate",
    "explain_plan",
    "optimize",
    "parse_sql",
    "schema_of",
    "role_schema",
    "role_table_name",
    "union_all",
]
