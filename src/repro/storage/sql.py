"""A mini SQL front end, sufficient for the paper's example query.

The introduction of the paper poses::

    SELECT name, preferencescore
    FROM Programs
    WHERE preferencescore > 0.5
    ORDER BY preferencescore DESC

"where the underlying context-aware database would dynamically assign a
preference score to each program".  This module parses and executes the
``SELECT``/``FROM``/``WHERE``/``ORDER BY``/``LIMIT`` fragment against a
:class:`~repro.storage.database.Database`, with *virtual columns*: a
:class:`SqlSession` lets the ranking layer register a provider that
computes ``preferencescore`` per row at query time, which is exactly the
paper's dynamically assigned attribute.

Supported grammar (keywords case-insensitive)::

    statement := SELECT select_list FROM name [WHERE cond]
                 [ORDER BY name [ASC|DESC] (, name [ASC|DESC])*]
                 [LIMIT int] [;]
    select_list := '*' | name (',' name)*
    cond       := disjunct (OR disjunct)*
    disjunct   := term (AND term)*
    term       := NOT term | '(' cond ')' | name op literal | name op name
    op         := = | != | <> | < | <= | > | >=
    literal    := number | 'string'
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ParseError, QueryError
from repro.storage.database import Database

__all__ = ["SelectStatement", "ResultSet", "SqlSession", "parse_sql"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),;*])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "AND", "OR", "NOT"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int

    @property
    def keyword(self) -> str | None:
        if self.kind == "ident" and self.text.upper() in _KEYWORDS:
            return self.text.upper()
        return None


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", text, position)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(0), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# conditions (evaluated over row dictionaries)
# ---------------------------------------------------------------------------

class Condition:
    """Abstract WHERE condition over a row dictionary."""

    def matches(self, row: dict[str, object]) -> bool:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        raise NotImplementedError


_CMP: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Condition):
    """``column op literal`` or ``column op column``."""

    column: str
    op: str
    value: object
    value_is_column: bool = False

    def matches(self, row: dict[str, object]) -> bool:
        left = row.get(self.column)
        right = row.get(str(self.value)) if self.value_is_column else self.value
        if left is None or right is None:
            return False
        try:
            return _CMP[self.op](left, right)
        except TypeError as exc:
            raise QueryError(f"cannot compare {left!r} {self.op} {right!r}") from exc

    def columns(self) -> frozenset[str]:
        names = {self.column}
        if self.value_is_column:
            names.add(str(self.value))
        return frozenset(names)


@dataclass(frozen=True)
class AndCondition(Condition):
    parts: tuple[Condition, ...]

    def matches(self, row: dict[str, object]) -> bool:
        return all(part.matches(row) for part in self.parts)

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(part.columns() for part in self.parts))


@dataclass(frozen=True)
class OrCondition(Condition):
    parts: tuple[Condition, ...]

    def matches(self, row: dict[str, object]) -> bool:
        return any(part.matches(row) for part in self.parts)

    def columns(self) -> frozenset[str]:
        return frozenset().union(*(part.columns() for part in self.parts))


@dataclass(frozen=True)
class NotCondition(Condition):
    part: Condition

    def matches(self, row: dict[str, object]) -> bool:
        return not self.part.matches(row)

    def columns(self) -> frozenset[str]:
        return self.part.columns()


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement."""

    columns: tuple[str, ...] | None  # None means '*'
    table: str
    where: Condition | None = None
    order_by: tuple[tuple[str, bool], ...] = ()  # (column, descending)
    limit: int | None = None

    def referenced_columns(self) -> frozenset[str]:
        names: set[str] = set(self.columns or ())
        if self.where is not None:
            names.update(self.where.columns())
        names.update(column for column, _desc in self.order_by)
        return frozenset(names)


@dataclass
class ResultSet:
    """Columns plus rows, as produced by :meth:`SqlSession.execute`."""

    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)

    def to_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def render(self) -> str:
        """Plain-text rendering (aligned columns) for examples/benches."""
        headers = list(self.columns)
        body = [
            ["" if value is None else (f"{value:.4f}" if isinstance(value, float) else str(value)) for value in row]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(line[i]) for line in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(headers))))
        return "\n".join(lines)


class _SqlParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.peek()
        if token.keyword != word:
            raise ParseError(f"expected {word}, found {token.text or 'end of input'!r}", self.text, token.position)
        self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident" or token.keyword is not None:
            raise ParseError(f"expected identifier, found {token.text or 'end of input'!r}", self.text, token.position)
        self.advance()
        return token.text

    def parse(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        columns = self.select_list()
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.peek().keyword == "WHERE":
            self.advance()
            where = self.condition()
        order_by: list[tuple[str, bool]] = []
        if self.peek().keyword == "ORDER":
            self.advance()
            self.expect_keyword("BY")
            while True:
                column = self.expect_ident()
                descending = False
                if self.peek().keyword in ("ASC", "DESC"):
                    descending = self.advance().keyword == "DESC"
                order_by.append((column, descending))
                if self.peek().kind == "punct" and self.peek().text == ",":
                    self.advance()
                    continue
                break
        limit = None
        if self.peek().keyword == "LIMIT":
            self.advance()
            token = self.peek()
            if token.kind != "number" or "." in token.text:
                raise ParseError("LIMIT requires an integer", self.text, token.position)
            limit = int(self.advance().text)
        if self.peek().kind == "punct" and self.peek().text == ";":
            self.advance()
        token = self.peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input {token.text!r}", self.text, token.position)
        return SelectStatement(columns, table, where, tuple(order_by), limit)

    def select_list(self) -> tuple[str, ...] | None:
        token = self.peek()
        if token.kind == "punct" and token.text == "*":
            self.advance()
            return None
        columns = [self.expect_ident()]
        while self.peek().kind == "punct" and self.peek().text == ",":
            self.advance()
            columns.append(self.expect_ident())
        return tuple(columns)

    # -- conditions -----------------------------------------------------
    def condition(self) -> Condition:
        parts = [self.conjunction()]
        while self.peek().keyword == "OR":
            self.advance()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else OrCondition(tuple(parts))

    def conjunction(self) -> Condition:
        parts = [self.term()]
        while self.peek().keyword == "AND":
            self.advance()
            parts.append(self.term())
        return parts[0] if len(parts) == 1 else AndCondition(tuple(parts))

    def term(self) -> Condition:
        token = self.peek()
        if token.keyword == "NOT":
            self.advance()
            return NotCondition(self.term())
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self.condition()
            closing = self.peek()
            if closing.kind != "punct" or closing.text != ")":
                raise ParseError("expected ')'", self.text, closing.position)
            self.advance()
            return inner
        column = self.expect_ident()
        op_token = self.peek()
        if op_token.kind != "op":
            raise ParseError(f"expected comparison operator, found {op_token.text!r}", self.text, op_token.position)
        self.advance()
        value_token = self.peek()
        if value_token.kind == "number":
            self.advance()
            value: object = float(value_token.text) if "." in value_token.text else int(value_token.text)
            return Compare(column, op_token.text, value)
        if value_token.kind == "string":
            self.advance()
            return Compare(column, op_token.text, value_token.text[1:-1].replace("''", "'"))
        if value_token.kind == "ident" and value_token.keyword is None:
            self.advance()
            return Compare(column, op_token.text, value_token.text, value_is_column=True)
        raise ParseError(f"expected literal or column, found {value_token.text!r}", self.text, value_token.position)


def parse_sql(text: str) -> SelectStatement:
    """Parse a SELECT statement (raises :class:`ParseError` on bad input)."""
    return _SqlParser(text).parse()


class SqlSession:
    """Executes SELECT statements with virtual-column support.

    Parameters
    ----------
    database:
        The database to resolve table names against.

    Examples
    --------
    >>> from repro.storage import Database, Schema, Column, ColumnType
    >>> db = Database()
    >>> programs = db.create_table("Programs", Schema([Column("name", ColumnType.TEXT)]))
    >>> programs.insert(("news",))
    >>> session = SqlSession(db)
    >>> session.register_virtual_column("Programs", "preferencescore", lambda row: 0.9)
    >>> session.execute("SELECT name, preferencescore FROM Programs").rows
    [('news', 0.9)]
    """

    def __init__(self, database: Database):
        self.database = database
        self._virtual: dict[str, dict[str, Callable[[dict[str, object]], object]]] = {}

    def register_virtual_column(
        self,
        table: str,
        column: str,
        provider: Callable[[dict[str, object]], object],
    ) -> None:
        """Attach a computed column to a table for this session."""
        self._virtual.setdefault(table, {})[column] = provider

    def execute(self, statement: str | SelectStatement) -> ResultSet:
        """Run a SELECT statement and return its result set."""
        if isinstance(statement, str):
            statement = parse_sql(statement)
        table = self.database.table(statement.table)
        providers = self._virtual.get(statement.table, {})

        available = set(table.schema.names) | set(providers)
        unknown = statement.referenced_columns() - available
        if unknown:
            raise QueryError(
                f"unknown column(s) {sorted(unknown)} for table {statement.table!r}"
            )

        rows: list[dict[str, object]] = []
        for row in table:
            row_dict = table.row_dict(row)
            for name, provider in providers.items():
                row_dict[name] = provider(dict(row_dict))
            if statement.where is None or statement.where.matches(row_dict):
                rows.append(row_dict)

        for column, descending in reversed(statement.order_by):
            rows.sort(key=lambda r: (r.get(column) is None, r.get(column)), reverse=descending)

        if statement.limit is not None:
            rows = rows[: statement.limit]

        output_columns = statement.columns or tuple(
            list(table.schema.names) + sorted(providers)
        )
        result = ResultSet(tuple(output_columns))
        for row_dict in rows:
            result.rows.append(tuple(row_dict.get(name) for name in output_columns))
        return result


def execute_many(session: SqlSession, statements: Iterable[str]) -> list[ResultSet]:
    """Execute several statements in order (convenience for scripts)."""
    return [session.execute(statement) for statement in statements]
