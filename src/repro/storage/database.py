"""The database: base tables, virtual views, and the DL table conventions.

Per the paper's naive implementation, "we view each concept as a table,
which uses the concept name as the table name and has an ID attribute
and an event expression attribute.  Similarly, we view each role as a
table [...] containing three attributes; SOURCE, DESTINATION, and an
event expression."  This module provides exactly those conventions on
top of the generic table/algebra machinery, plus:

* a domain table (``Individuals``) used to evaluate complements;
* virtual views (stored operator trees, re-evaluated on access) — the
  mechanism by which scores follow the developing context;
* an ABox loader that materialises an ABox into concept/role tables,
  giving the "uniform tabular view towards both static and dynamic
  contexts" of Section 5.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StorageError, UnknownTableError
from repro.events.expr import ALWAYS
from repro.dl.abox import ABox
from repro.dl.vocabulary import ConceptName, RoleName
from repro.storage.algebra import AlgebraNode, evaluate
from repro.storage.schema import EVENT_COLUMN, Column, ColumnType, Schema
from repro.storage.table import Table

__all__ = [
    "Database",
    "CONCEPT_TABLE_PREFIX",
    "ROLE_TABLE_PREFIX",
    "INDIVIDUALS_TABLE",
    "concept_table_name",
    "role_table_name",
    "concept_schema",
    "role_schema",
]

CONCEPT_TABLE_PREFIX = "concept_"
ROLE_TABLE_PREFIX = "role_"
INDIVIDUALS_TABLE = "Individuals"


def concept_table_name(concept: str | ConceptName) -> str:
    """Name of the table holding one concept's members."""
    name = concept.name if isinstance(concept, ConceptName) else concept
    return f"{CONCEPT_TABLE_PREFIX}{name}"


def role_table_name(role: str | RoleName) -> str:
    """Name of the table holding one role's pairs."""
    name = role.name if isinstance(role, RoleName) else role
    return f"{ROLE_TABLE_PREFIX}{name}"


def concept_schema() -> Schema:
    """``(id TEXT, event EVENT)``."""
    return Schema([Column("id", ColumnType.TEXT), Column(EVENT_COLUMN, ColumnType.EVENT)])


def role_schema() -> Schema:
    """``(source TEXT, destination TEXT, event EVENT)``."""
    return Schema(
        [
            Column("source", ColumnType.TEXT),
            Column("destination", ColumnType.TEXT),
            Column(EVENT_COLUMN, ColumnType.EVENT),
        ]
    )


class Database:
    """A named collection of base tables and virtual views.

    Examples
    --------
    >>> from repro.storage import Database
    >>> db = Database()
    >>> table = db.create_concept_table("TvProgram")
    >>> table.insert(("oprah", ALWAYS))
    >>> len(db.table("concept_TvProgram"))
    1
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._views: dict[str, AlgebraNode] = {}

    # -- base tables ------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty base table; the name must be unused."""
        self._check_fresh(name)
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an existing table object under its own name."""
        self._check_fresh(table.name)
        self._tables[table.name] = table
        return table

    def create_concept_table(self, concept: str | ConceptName) -> Table:
        """Create the ``(id, event)`` table for a concept name."""
        return self.create_table(concept_table_name(concept), concept_schema())

    def create_role_table(self, role: str | RoleName) -> Table:
        """Create the ``(source, destination, event)`` table for a role."""
        return self.create_table(role_table_name(role), role_schema())

    def ensure_concept_table(self, concept: str | ConceptName) -> Table:
        name = concept_table_name(concept)
        if name not in self._tables:
            return self.create_concept_table(concept)
        return self._tables[name]

    def ensure_role_table(self, role: str | RoleName) -> Table:
        name = role_table_name(role)
        if name not in self._tables:
            return self.create_role_table(role)
        return self._tables[name]

    def ensure_individuals_table(self) -> Table:
        if INDIVIDUALS_TABLE not in self._tables:
            return self.create_table(INDIVIDUALS_TABLE, concept_schema())
        return self._tables[INDIVIDUALS_TABLE]

    def _check_fresh(self, name: str) -> None:
        if name in self._tables or name in self._views:
            raise StorageError(f"table or view {name!r} already exists")

    # -- views ------------------------------------------------------------
    def create_view(self, name: str, definition: AlgebraNode) -> None:
        """Register a virtual view (re-evaluated on every access)."""
        self._check_fresh(name)
        self._views[name] = definition

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise UnknownTableError(f"no view named {name!r}")
        del self._views[name]

    def view_definition(self, name: str) -> AlgebraNode:
        try:
            return self._views[name]
        except KeyError as exc:
            raise UnknownTableError(f"no view named {name!r}") from exc

    # -- resolution ---------------------------------------------------
    def table(self, name: str) -> Table:
        """Resolve a name to a base table or an evaluated view."""
        base = self._tables.get(name)
        if base is not None:
            return base
        view = self._views.get(name)
        if view is not None:
            result = evaluate(self, view)
            return result.renamed(name=name)
        raise UnknownTableError(f"no table or view named {name!r} in database {self.name!r}")

    def has_table(self, name: str) -> bool:
        return name in self._tables or name in self._views

    def has_base_table(self, name: str) -> bool:
        return name in self._tables

    def evaluate(self, node: AlgebraNode) -> Table:
        """Evaluate an operator tree against this database."""
        return evaluate(self, node)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._views))

    def total_rows(self) -> int:
        """Total number of base-table rows (the paper's "tuples")."""
        return sum(len(table) for table in self._tables.values())

    # -- ABox synchronisation ------------------------------------------
    def load_abox(self, abox: ABox, refresh: bool = False) -> None:
        """Materialise an ABox into concept/role/domain tables.

        With ``refresh=True`` existing concept/role/domain tables are
        cleared first, so the loader can be called after every context
        update (the "uniform tabular view" over dynamic context).
        """
        if refresh:
            for name, table in list(self._tables.items()):
                if name == INDIVIDUALS_TABLE or name.startswith(CONCEPT_TABLE_PREFIX) or name.startswith(ROLE_TABLE_PREFIX):
                    self._tables[name] = Table(name, table.schema)
        individuals = self.ensure_individuals_table()
        present = set(individuals.column_values("id"))
        for individual in sorted(abox.individuals, key=lambda ind: ind.name):
            if individual.name not in present:
                individuals.insert((individual.name, ALWAYS))
        for assertion in abox.concept_assertions():
            table = self.ensure_concept_table(assertion.concept)
            table.insert((assertion.individual.name, assertion.event))
        for assertion in abox.role_assertions():
            table = self.ensure_role_table(assertion.role)
            table.insert((assertion.source.name, assertion.target.name, assertion.event))

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={len(self._tables)}, "
            f"views={len(self._views)}, rows={self.total_rows()})"
        )


def load_rows(table: Table, rows: Iterable[tuple]) -> Table:
    """Insert rows into a table and return it (fluent helper)."""
    table.insert_many(rows)
    return table
