"""Relational algebra with event-expression propagation.

The probabilistic relational algebra of Fuhr & Roelleke, as used by the
paper's view machinery:

* **selection** keeps a tuple's event unchanged;
* **projection** with duplicate elimination merges equal tuples by
  *disjoining* their events (several derivations, any one suffices);
* **join** *conjoins* the events of the participating tuples;
* **union** merges like projection;
* **difference** keeps left tuples under ``left.event AND NOT
  right.event``;
* **rename** is pure bookkeeping.

Operator trees are immutable values; :func:`evaluate` interprets a tree
against a :class:`~repro.storage.database.Database` and returns a
:class:`~repro.storage.table.Table`.  Virtual views are stored as trees
and re-evaluated on demand, which is exactly why "as the current context
develops, the probabilities of containment of tuples in the view
changes accordingly" (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import QueryError
from repro.events.expr import ALWAYS, EventExpr, conj, neg
from repro.storage.schema import EVENT_COLUMN, Column, ColumnType, Schema
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import Database

__all__ = [
    "Predicate",
    "Comparison",
    "ColumnComparison",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "AlgebraNode",
    "Scan",
    "Constant",
    "Select",
    "Project",
    "Join",
    "Union",
    "Difference",
    "Rename",
    "evaluate",
    "union_all",
]

_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------

class Predicate:
    """Abstract row predicate used by :class:`Select`."""

    def matches(self, schema: Schema, row: tuple) -> bool:
        raise NotImplementedError

    def validate(self, schema: Schema) -> None:
        """Raise :class:`QueryError` if the predicate references unknown columns."""
        raise NotImplementedError


def _check_operator(op: str) -> str:
    if op not in _OPERATORS:
        raise QueryError(f"unknown comparison operator {op!r}; use one of {sorted(_OPERATORS)}")
    return op


def _compare(op: str, left: object, right: object) -> bool:
    if left is None or right is None:
        return False  # SQL-style: comparisons with NULL never match
    try:
        return _OPERATORS[op](left, right)
    except TypeError as exc:
        raise QueryError(f"cannot compare {left!r} {op} {right!r}") from exc


def _require_column(schema: Schema, name: str) -> None:
    if name not in schema:
        raise QueryError(f"predicate references unknown column {name!r} (schema: {schema.names})")


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column op literal``."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        _check_operator(self.op)

    def matches(self, schema: Schema, row: tuple) -> bool:
        return _compare(self.op, row[schema.index_of(self.column)], self.value)

    def validate(self, schema: Schema) -> None:
        _require_column(schema, self.column)

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class ColumnComparison(Predicate):
    """``column op other_column``."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        _check_operator(self.op)

    def matches(self, schema: Schema, row: tuple) -> bool:
        return _compare(self.op, row[schema.index_of(self.left)], row[schema.index_of(self.right)])

    def validate(self, schema: Schema) -> None:
        _require_column(schema, self.left)
        _require_column(schema, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class AndPredicate(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, schema: Schema, row: tuple) -> bool:
        return all(part.matches(schema, row) for part in self.parts)

    def validate(self, schema: Schema) -> None:
        for part in self.parts:
            part.validate(schema)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class OrPredicate(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, schema: Schema, row: tuple) -> bool:
        return any(part.matches(schema, row) for part in self.parts)

    def validate(self, schema: Schema) -> None:
        for part in self.parts:
            part.validate(schema)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class NotPredicate(Predicate):
    part: Predicate

    def matches(self, schema: Schema, row: tuple) -> bool:
        return not self.part.matches(schema, row)

    def validate(self, schema: Schema) -> None:
        self.part.validate(schema)

    def __str__(self) -> str:
        return f"NOT ({self.part})"


# ---------------------------------------------------------------------------
# operator tree
# ---------------------------------------------------------------------------

class AlgebraNode:
    """Abstract relational-algebra operator."""

    def describe(self) -> str:
        """Single-line description used in explanations and EXPLAIN output."""
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(AlgebraNode):
    """Read a base table or a named view."""

    table: str

    def describe(self) -> str:
        return f"scan {self.table}"


@dataclass(frozen=True)
class Constant(AlgebraNode):
    """An inline relation (schema + rows), e.g. a nominal's members."""

    schema: Schema
    rows: tuple[tuple, ...]

    def describe(self) -> str:
        return f"constant({len(self.rows)} rows)"


@dataclass(frozen=True)
class Select(AlgebraNode):
    """σ — keep the rows matching a predicate."""

    child: AlgebraNode
    predicate: Predicate

    def describe(self) -> str:
        return f"select[{self.predicate}]"


@dataclass(frozen=True)
class Project(AlgebraNode):
    """π — keep the named columns; optional duplicate elimination.

    With ``distinct=True`` (the default) duplicate rows are merged; if
    the projection carries the event column the duplicates' events are
    disjoined, implementing the probabilistic projection.
    """

    child: AlgebraNode
    columns: tuple[str, ...]
    distinct: bool = True

    def describe(self) -> str:
        return f"project[{', '.join(self.columns)}]"


@dataclass(frozen=True)
class Join(AlgebraNode):
    """⋈ — equi-join; events of matched tuples are conjoined.

    ``on`` lists (left column, right column) pairs.  The result carries
    the left columns followed by the right columns minus the right join
    columns and minus the right event column (whose content is folded
    into the single result event).
    """

    left: AlgebraNode
    right: AlgebraNode
    on: tuple[tuple[str, str], ...]

    def describe(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in self.on)
        return f"join[{pairs}]"


@dataclass(frozen=True)
class Union(AlgebraNode):
    """∪ — schema-compatible union; duplicate tuples' events disjoin."""

    left: AlgebraNode
    right: AlgebraNode

    def describe(self) -> str:
        return "union"


@dataclass(frozen=True)
class Difference(AlgebraNode):
    """− — probabilistic difference.

    A left tuple matched by an equal-data right tuple survives under
    ``left.event AND NOT right.event``; unmatched left tuples survive
    unchanged.  (With certain events this is classical set difference.)
    """

    left: AlgebraNode
    right: AlgebraNode

    def describe(self) -> str:
        return "difference"


@dataclass(frozen=True)
class Rename(AlgebraNode):
    """ρ — rename columns."""

    child: AlgebraNode
    mapping: tuple[tuple[str, str], ...]

    def describe(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping)
        return f"rename[{pairs}]"


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def evaluate(database: "Database", node: AlgebraNode) -> Table:
    """Interpret an operator tree against a database.

    Returns a fresh :class:`Table` (never a live base table), so callers
    may mutate the result freely.
    """
    if isinstance(node, Scan):
        source = database.table(node.table)
        result = Table(source.name, source.schema)
        result.insert_many(source.rows)
        return result
    if isinstance(node, Constant):
        return Table("constant", node.schema, node.rows)
    if isinstance(node, Select):
        child = evaluate(database, node.child)
        node.predicate.validate(child.schema)
        result = Table("select", child.schema)
        result.insert_many(row for row in child if node.predicate.matches(child.schema, row))
        return result
    if isinstance(node, Project):
        child = evaluate(database, node.child)
        schema = child.schema.project(node.columns)
        positions = [child.schema.index_of(name) for name in node.columns]
        result = Table("project", schema)
        if node.distinct:
            result.insert_many(tuple(row[p] for p in positions) for row in child)
            if not schema.has_event_column:
                deduped = Table("project", schema)
                seen: set[tuple] = set()
                for row in result:
                    if row not in seen:
                        seen.add(row)
                        deduped.insert(row)
                return deduped
            return result
        result.insert_many(tuple(row[p] for p in positions) for row in child)
        return result
    if isinstance(node, Join):
        return _evaluate_join(database, node)
    if isinstance(node, Union):
        left = evaluate(database, node.left)
        right = evaluate(database, node.right)
        if left.schema != right.schema:
            raise QueryError(
                f"union of incompatible schemas {left.schema!r} and {right.schema!r}"
            )
        result = Table("union", left.schema)
        result.insert_many(left)
        result.insert_many(right)
        return result
    if isinstance(node, Difference):
        return _evaluate_difference(database, node)
    if isinstance(node, Rename):
        child = evaluate(database, node.child)
        return child.renamed(columns=dict(node.mapping))
    raise QueryError(f"cannot evaluate unknown algebra node {node!r}")


def _evaluate_join(database: "Database", node: Join) -> Table:
    left = evaluate(database, node.left)
    right = evaluate(database, node.right)
    for left_col, right_col in node.on:
        left.schema.index_of(left_col)
        right.schema.index_of(right_col)

    right_join_columns = {right_col for _l, right_col in node.on}
    left_has_event = left.schema.has_event_column
    right_has_event = right.schema.has_event_column

    kept_right = [
        column
        for column in right.schema
        if column.name not in right_join_columns and column.name != EVENT_COLUMN
    ]
    left_columns = [column for column in left.schema if column.name != EVENT_COLUMN]
    result_columns: list[Column] = list(left_columns) + list(kept_right)
    overlap = {c.name for c in left_columns} & {c.name for c in kept_right}
    if overlap:
        raise QueryError(f"join would duplicate columns {sorted(overlap)}; rename first")
    carries_event = left_has_event or right_has_event
    if carries_event:
        result_columns.append(Column(EVENT_COLUMN, ColumnType.EVENT))
    schema = Schema(result_columns)
    result = Table("join", schema)

    # Hash join on the right side.
    right_key_positions = [right.schema.index_of(right_col) for _l, right_col in node.on]
    buckets: dict[tuple, list[tuple]] = {}
    for row in right:
        buckets.setdefault(tuple(row[p] for p in right_key_positions), []).append(row)

    left_key_positions = [left.schema.index_of(left_col) for left_col, _r in node.on]
    left_event_position = left.schema.index_of(EVENT_COLUMN) if left_has_event else None
    right_event_position = right.schema.index_of(EVENT_COLUMN) if right_has_event else None
    left_data_positions = [left.schema.index_of(column.name) for column in left_columns]
    right_data_positions = [right.schema.index_of(column.name) for column in kept_right]

    for left_row in left:
        key = tuple(left_row[p] for p in left_key_positions)
        for right_row in buckets.get(key, ()):
            values = [left_row[p] for p in left_data_positions]
            values.extend(right_row[p] for p in right_data_positions)
            if carries_event:
                events = []
                if left_event_position is not None:
                    events.append(left_row[left_event_position])
                if right_event_position is not None:
                    events.append(right_row[right_event_position])
                values.append(conj(events))
            result.insert(tuple(values))
    return result


def _evaluate_difference(database: "Database", node: Difference) -> Table:
    left = evaluate(database, node.left)
    right = evaluate(database, node.right)
    if left.schema.data_names != right.schema.data_names:
        raise QueryError(
            f"difference of incompatible schemas {left.schema!r} and {right.schema!r}"
        )
    left_has_event = left.schema.has_event_column
    right_has_event = right.schema.has_event_column

    right_data_positions = [right.schema.index_of(name) for name in right.schema.data_names]
    right_event_position = right.schema.index_of(EVENT_COLUMN) if right_has_event else None
    matched: dict[tuple, EventExpr] = {}
    for row in right:
        key = tuple(row[p] for p in right_data_positions)
        event = row[right_event_position] if right_event_position is not None else ALWAYS
        existing = matched.get(key)
        matched[key] = event if existing is None else (existing | event)

    left_data_positions = [left.schema.index_of(name) for name in left.schema.data_names]
    left_event_position = left.schema.index_of(EVENT_COLUMN) if left_has_event else None
    result = Table("difference", left.schema)
    for row in left:
        key = tuple(row[p] for p in left_data_positions)
        right_event = matched.get(key)
        if right_event is None:
            result.insert(row)
            continue
        left_event = row[left_event_position] if left_event_position is not None else ALWAYS
        survival = conj([left_event, neg(right_event)])
        if survival.is_impossible:
            continue
        if left_event_position is None:
            # Left side is certain but the right event is uncertain: the
            # tuple survives with the residual event, so the result needs
            # an event column — disallow instead of silently widening.
            raise QueryError(
                "difference with uncertain right side requires an event column on the left"
            )
        values = list(row)
        values[left_event_position] = survival
        result.insert(tuple(values))
    return result


def union_all(nodes: Iterable[AlgebraNode]) -> AlgebraNode:
    """Left-deep union of several nodes (empty input is an error)."""
    nodes = list(nodes)
    if not nodes:
        raise QueryError("union_all of zero relations")
    tree = nodes[0]
    for node in nodes[1:]:
        tree = Union(tree, node)
    return tree
