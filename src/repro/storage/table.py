"""In-memory tables of tuples, with event-aware duplicate merging.

A :class:`Table` is an ordered bag of rows conforming to a
:class:`~repro.storage.schema.Schema`.  Tables whose schema carries an
event column treat the *data* columns as the logical key: inserting a
row whose data columns equal an existing row's merges the two by
disjoining their event expressions (two derivations of the same tuple),
mirroring how the paper's views accumulate evidence for a tuple.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.events.expr import EventExpr, disj
from repro.storage.schema import EVENT_COLUMN, Schema

__all__ = ["Table"]


class Table:
    """A named relation: a schema plus rows.

    Parameters
    ----------
    name:
        Table name (used by scans, error messages and the SQL layer).
    schema:
        The table's schema.
    rows:
        Optional initial rows (validated and merged like inserts).
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[tuple] = ()):
        self.name = name
        self.schema = schema
        self._rows: list[tuple] = []
        self._merge_index: dict[tuple, int] | None = {} if schema.has_event_column else None
        for row in rows:
            self.insert(row)

    # -- mutation -----------------------------------------------------
    def insert(self, row: tuple | list) -> None:
        """Insert a row; merges events with an existing equal-data row."""
        row = tuple(row)
        self.schema.validate_row(row)
        if self._merge_index is None:
            self._rows.append(row)
            return
        event_position = self.schema.index_of(EVENT_COLUMN)
        key = tuple(value for position, value in enumerate(row) if position != event_position)
        existing_position = self._merge_index.get(key)
        if existing_position is None:
            self._merge_index[key] = len(self._rows)
            self._rows.append(row)
            return
        existing = self._rows[existing_position]
        merged_event = disj([existing[event_position], row[event_position]])
        merged = list(existing)
        merged[event_position] = merged_event
        self._rows[existing_position] = tuple(merged)

    def insert_many(self, rows: Iterable[tuple | list]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    # -- access ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    @property
    def rows(self) -> list[tuple]:
        """A copy of the row list (mutating it does not affect the table)."""
        return list(self._rows)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        position = self.schema.index_of(name)
        return [row[position] for row in self._rows]

    def row_dict(self, row: tuple) -> dict[str, object]:
        """View one row as a column-name-to-value mapping."""
        return dict(zip(self.schema.names, row))

    def iter_dicts(self) -> Iterator[dict[str, object]]:
        """Iterate rows as dictionaries."""
        for row in self._rows:
            yield self.row_dict(row)

    def event_of(self, **key_columns) -> EventExpr | None:
        """Event of the row matching the given data-column values.

        Only meaningful on tables with an event column; returns ``None``
        when no row matches.
        """
        if not self.schema.has_event_column:
            raise SchemaError(f"table {self.name!r} has no event column")
        event_position = self.schema.index_of(EVENT_COLUMN)
        positions = {name: self.schema.index_of(name) for name in key_columns}
        for row in self._rows:
            if all(row[pos] == key_columns[name] for name, pos in positions.items()):
                return row[event_position]
        return None

    def sorted_by(
        self,
        keys: list[tuple[str, bool]],
        value_key: Callable[[object], object] | None = None,
    ) -> list[tuple]:
        """Rows sorted by ``(column, descending)`` pairs, stably."""
        rows = list(self._rows)
        for name, descending in reversed(keys):
            position = self.schema.index_of(name)
            rows.sort(
                key=lambda row: (row[position] is None, value_key(row[position]) if value_key else row[position]),
                reverse=descending,
            )
        return rows

    def renamed(self, name: str | None = None, columns: Mapping[str, str] | None = None) -> "Table":
        """A copy with a new table name and/or renamed columns."""
        new_schema = self.schema.rename(columns) if columns else self.schema
        table = Table(name or self.name, new_schema)
        table._rows = list(self._rows)
        if table._merge_index is not None and self._merge_index is not None:
            table._merge_index = dict(self._merge_index)
        return table

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.schema!r}, rows={len(self)})"
