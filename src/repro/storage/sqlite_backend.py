"""sqlite3 backend: the paper's "extended PostgreSQL", reproduced.

The paper's naive implementation "extended PostgreSQL with a datatype
for event expressions" and compiled concept expressions into SQL views
with event propagation.  This backend does the same against sqlite3
(in the Python standard library):

* concept/role tables are real SQL tables whose ``event`` column holds
  the s-expression serialisation of the event expression
  (:mod:`repro.events.serialize`);
* event propagation happens inside SQL through registered scalar
  functions ``ev_and`` / ``ev_not`` and the aggregate ``ev_or_agg``;
* ``ev_prob`` computes the exact probability of a serialised event
  (through the Shannon engine, honouring the backend's event space);
* concept expressions compile to nested ``SELECT`` text and can be
  installed as actual ``CREATE VIEW`` views.

The per-rule doubling of work that the paper measures (Section 5) shows
up here as the doubling of the naive preference view's SQL, which is
what benchmark E3 exercises end to end.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from repro.errors import StorageError
from repro.events.expr import EventExpr, conj, disj, neg
from repro.events.serialize import dumps, loads
from repro.events.shannon import ShannonEngine
from repro.events.space import EventSpace
from repro.dl.abox import ABox
from repro.dl.concepts import (
    And,
    AtLeast,
    Atomic,
    Bottom,
    Concept,
    Exists,
    ForAll,
    HasValue,
    Not,
    OneOf,
    Or,
    Top,
    complement,
    some,
)
from repro.dl.tbox import TBox
from repro.dl.vocabulary import RoleName

__all__ = ["SqliteBackend"]

_FALSE_TEXT = "F"


def _quote_identifier(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _quote_literal(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


class _EvOrAggregate:
    """SQL aggregate: disjunction of serialised event expressions."""

    def __init__(self) -> None:
        self._parts: list[EventExpr] = []

    def step(self, text: str | None) -> None:
        if text is not None:
            self._parts.append(loads(text))

    def finalize(self) -> str:
        return dumps(disj(self._parts))


class SqliteBackend:
    """An sqlite3 database holding concept/role tables with event columns.

    Parameters
    ----------
    space:
        The event space used for probability computation (mutex groups
        and marginals).  Serialize atom marginals also travel inside the
        event text, so expressions survive the round trip even for atoms
        the space has not seen.
    path:
        Database path; defaults to in-memory.
    """

    def __init__(self, space: EventSpace | None = None, path: str = ":memory:"):
        self.space = space
        self.connection = sqlite3.connect(path)
        self._engine = ShannonEngine(space)
        self._register_functions()
        self._concept_tables: set[str] = set()
        self._role_tables: set[str] = set()
        self._alias_counter = 0

    # -- setup ------------------------------------------------------------
    def _register_functions(self) -> None:
        def ev_and(left: str | None, right: str | None) -> str:
            parts = [loads(text) for text in (left, right) if text is not None]
            return dumps(conj(parts))

        def ev_not(text: str | None) -> str:
            if text is None:
                return "T"
            return dumps(neg(loads(text)))

        def ev_prob(text: str | None) -> float:
            if text is None:
                return 0.0
            return self._engine.probability(loads(text))

        self.connection.create_function("ev_and", 2, ev_and, deterministic=True)
        self.connection.create_function("ev_not", 1, ev_not, deterministic=True)
        self.connection.create_function("ev_prob", 1, ev_prob, deterministic=True)
        self.connection.create_aggregate("ev_or_agg", 1, _EvOrAggregate)

    # -- loading ----------------------------------------------------------
    def load_abox(self, abox: ABox) -> None:
        """Create and fill the individuals/concept/role tables."""
        cursor = self.connection.cursor()
        cursor.execute("CREATE TABLE IF NOT EXISTS individuals (id TEXT PRIMARY KEY, event TEXT NOT NULL)")
        cursor.executemany(
            "INSERT OR IGNORE INTO individuals (id, event) VALUES (?, 'T')",
            [(individual.name,) for individual in sorted(abox.individuals, key=lambda i: i.name)],
        )
        for concept_name in sorted(abox.concept_names, key=lambda n: n.name):
            table = f"concept_{concept_name.name}"
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {_quote_identifier(table)} "
                "(id TEXT PRIMARY KEY, event TEXT NOT NULL)"
            )
            self._concept_tables.add(concept_name.name)
            cursor.executemany(
                f"INSERT OR REPLACE INTO {_quote_identifier(table)} (id, event) VALUES (?, ?)",
                [
                    (assertion.individual.name, dumps(assertion.event))
                    for assertion in abox.concept_members(concept_name)
                ],
            )
        for role_name in sorted(abox.role_names, key=lambda n: n.name):
            table = f"role_{role_name.name}"
            cursor.execute(
                f"CREATE TABLE IF NOT EXISTS {_quote_identifier(table)} "
                "(source TEXT NOT NULL, destination TEXT NOT NULL, event TEXT NOT NULL, "
                "PRIMARY KEY (source, destination))"
            )
            self._role_tables.add(role_name.name)
            cursor.executemany(
                f"INSERT OR REPLACE INTO {_quote_identifier(table)} (source, destination, event) VALUES (?, ?, ?)",
                [
                    (assertion.source.name, assertion.target.name, dumps(assertion.event))
                    for assertion in abox.role_pairs(role_name)
                ],
            )
        self.connection.commit()

    # -- concept compilation ---------------------------------------------
    def _alias(self) -> str:
        self._alias_counter += 1
        return f"t{self._alias_counter}"

    def concept_sql(self, concept: Concept, tbox: TBox) -> str:
        """SQL text producing ``(id, event)`` for a concept expression."""
        return self._sql(tbox.expand(concept), tbox)

    def _empty_sql(self) -> str:
        return "SELECT id, event FROM individuals WHERE 1 = 0"

    def _role_union_sql(self, role: RoleName, tbox: TBox) -> str | None:
        """``(source, destination, event)`` over the role and its sub-roles."""
        tables = [
            f"role_{sub_role.name}"
            for sub_role in sorted(tbox.role_descendants(role), key=lambda r: r.name)
            if sub_role.name in self._role_tables
        ]
        if not tables:
            return None
        selects = [
            f"SELECT source, destination, event FROM {_quote_identifier(table)}" for table in tables
        ]
        if len(selects) == 1:
            return selects[0]
        alias = self._alias()
        union = " UNION ALL ".join(selects)
        return (
            f"SELECT source, destination, ev_or_agg(event) AS event "
            f"FROM ({union}) {alias} GROUP BY source, destination"
        )

    def _successor_sql(self, role: RoleName, filler: Concept, tbox: TBox) -> str | None:
        """``(src, dst, event)`` of role successors inside the filler."""
        roles = self._role_union_sql(role, tbox)
        if roles is None:
            return None
        filler_sql = self._sql(filler, tbox)
        r, c = self._alias(), self._alias()
        return (
            f"SELECT {r}.source AS src, {r}.destination AS dst, "
            f"ev_or_agg(ev_and({r}.event, {c}.event)) AS event "
            f"FROM ({roles}) {r} JOIN ({filler_sql}) {c} ON {r}.destination = {c}.id "
            f"GROUP BY {r}.source, {r}.destination"
        )

    def _sql(self, concept: Concept, tbox: TBox) -> str:
        if isinstance(concept, Top):
            return "SELECT id, event FROM individuals"
        if isinstance(concept, Bottom):
            return self._empty_sql()
        if isinstance(concept, Atomic):
            tables = [
                f"concept_{name.name}"
                for name in sorted(tbox.descendants(concept.concept), key=lambda n: n.name)
                if name.name in self._concept_tables
            ]
            if not tables:
                return self._empty_sql()
            if len(tables) == 1:
                return f"SELECT id, event FROM {_quote_identifier(tables[0])}"
            union = " UNION ALL ".join(
                f"SELECT id, event FROM {_quote_identifier(table)}" for table in tables
            )
            alias = self._alias()
            return (
                f"SELECT id, ev_or_agg(event) AS event FROM ({union}) {alias} GROUP BY id"
            )
        if isinstance(concept, Not):
            child = self._sql(concept.child, tbox)
            d, c, outer = self._alias(), self._alias(), self._alias()
            inner = (
                f"SELECT {d}.id AS id, "
                f"CASE WHEN {c}.event IS NULL THEN {d}.event "
                f"ELSE ev_and({d}.event, ev_not({c}.event)) END AS event "
                f"FROM individuals {d} LEFT JOIN ({child}) {c} ON {d}.id = {c}.id"
            )
            return f"SELECT id, event FROM ({inner}) {outer} WHERE event <> {_quote_literal(_FALSE_TEXT)}"
        if isinstance(concept, And):
            parts = [self._sql(child, tbox) for child in concept.children]
            sql = parts[0]
            for part in parts[1:]:
                left, right = self._alias(), self._alias()
                sql = (
                    f"SELECT {left}.id AS id, ev_and({left}.event, {right}.event) AS event "
                    f"FROM ({sql}) {left} JOIN ({part}) {right} ON {left}.id = {right}.id"
                )
            return sql
        if isinstance(concept, Or):
            parts = [self._sql(child, tbox) for child in concept.children]
            union = " UNION ALL ".join(f"SELECT id, event FROM ({part}) {self._alias()}" for part in parts)
            alias = self._alias()
            return f"SELECT id, ev_or_agg(event) AS event FROM ({union}) {alias} GROUP BY id"
        if isinstance(concept, OneOf):
            members = ", ".join(
                _quote_literal(member.name) for member in sorted(concept.members, key=lambda m: m.name)
            )
            return f"SELECT id, event FROM individuals WHERE id IN ({members})"
        if isinstance(concept, HasValue):
            roles = self._role_union_sql(concept.role, tbox)
            if roles is None:
                return self._empty_sql()
            alias = self._alias()
            return (
                f"SELECT source AS id, ev_or_agg(event) AS event FROM ({roles}) {alias} "
                f"WHERE destination = {_quote_literal(concept.value.name)} GROUP BY source"
            )
        if isinstance(concept, Exists):
            successors = self._successor_sql(concept.role, concept.filler, tbox)
            if successors is None:
                return self._empty_sql()
            alias = self._alias()
            return (
                f"SELECT src AS id, ev_or_agg(event) AS event FROM ({successors}) {alias} "
                f"GROUP BY src"
            )
        if isinstance(concept, ForAll):
            rewritten = complement(some(concept.role, complement(concept.filler)))
            return self._sql(rewritten, tbox)
        if isinstance(concept, AtLeast):
            successors = self._successor_sql(concept.role, concept.filler, tbox)
            if successors is None:
                return self._empty_sql()
            aliases = [self._alias() for _ in range(concept.count)]
            event_sql = f"{aliases[0]}.event"
            joins = [f"({successors}) {aliases[0]}"]
            conditions = []
            for index in range(1, concept.count):
                a, b = aliases[index - 1], aliases[index]
                joins.append(f"({successors}) {b}")
                conditions.append(f"{aliases[0]}.src = {b}.src")
                conditions.append(f"{a}.dst < {b}.dst")
                event_sql = f"ev_and({event_sql}, {b}.event)"
            where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
            return (
                f"SELECT {aliases[0]}.src AS id, ev_or_agg({event_sql}) AS event "
                f"FROM {', '.join(joins)}{where} GROUP BY {aliases[0]}.src"
            )
        raise StorageError(f"cannot compile unknown concept node {concept!r}")

    # -- views & queries ------------------------------------------------
    def create_concept_view(self, name: str, concept: Concept, tbox: TBox) -> str:
        """Install ``CREATE VIEW name AS <concept sql>``; returns the name."""
        sql = self.concept_sql(concept, tbox)
        self.connection.execute(f"CREATE VIEW {_quote_identifier(name)} AS {sql}")
        self.connection.commit()
        return name

    def drop_view(self, name: str) -> None:
        self.connection.execute(f"DROP VIEW IF EXISTS {_quote_identifier(name)}")
        self.connection.commit()

    def query_events(self, sql: str) -> dict[str, EventExpr]:
        """Run ``(id, event)`` SQL and parse the event column."""
        cursor = self.connection.execute(sql)
        return {row[0]: loads(row[1]) for row in cursor.fetchall()}

    def query_probabilities(self, sql: str) -> dict[str, float]:
        """Run ``(id, event)`` SQL and compute each tuple's probability."""
        wrapped = f"SELECT id, ev_prob(event) FROM ({sql}) prob_wrapper"
        cursor = self.connection.execute(wrapped)
        return {row[0]: row[1] for row in cursor.fetchall()}

    def concept_probabilities(self, concept: Concept, tbox: TBox) -> dict[str, float]:
        """Retrieve a concept's members with probabilities, via real SQL."""
        return self.query_probabilities(self.concept_sql(concept, tbox))

    def executescript(self, script: str) -> None:
        """Run raw SQL (escape hatch for benchmarks and tests)."""
        self.connection.executescript(script)

    def execute(self, sql: str, parameters: Iterable = ()) -> sqlite3.Cursor:
        """Run one raw SQL statement."""
        return self.connection.execute(sql, tuple(parameters))

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
