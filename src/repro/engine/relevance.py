"""Relevance strategies: how the two relevance parts become one ranking.

Equation (3) factors document relevance into a query-dependent part
``P(Q=q | D=d, U=u_sit)`` and the context-aware, query-independent part
``P(D=d | U=u_sit)``.  Each strategy here is a
:class:`~repro.engine.protocols.RelevanceBackend` plugin combining the
two:

* :class:`GatedRelevance` — the paper's Section 5 naive union (binary
  query relevance gates; preference orders);
* :class:`MixedRelevance` — the Section 6 smoothed power mixture
  (:func:`repro.core.ranker.mix_scores`, with exact λ boundaries);
* :class:`LogLinearRelevance` — the IR log-linear mixture, porting
  :func:`repro.ir.combined_ranking` into the engine;
* :class:`GroupRelevance` — the Section 6 multi-user extension,
  porting :class:`repro.multiuser.GroupRanker` into the engine: the
  preference part becomes the group-aggregated score.

Strategies resolve by name through :func:`resolve_relevance`, so
builders and config files can say ``"mixed"`` and engines can swap
strategies without touching the pipeline.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.ranker import mix_scores
from repro.errors import EngineConfigError
from repro.ir.combine import LOG_FLOOR, combine_log_linear
from repro.multiuser.group import GroupRanker
from repro.perf.backend import resolve_backend
from repro.perf.flatops import log_linear_rows
from repro.engine.requests import RankedItem

__all__ = [
    "GatedRelevance",
    "MixedRelevance",
    "LogLinearRelevance",
    "GroupRelevance",
    "RELEVANCE_STRATEGIES",
    "resolve_relevance",
]


def _ranked(entries: list[tuple[str, float, float, float | None]]) -> list[RankedItem]:
    """Sort (document, score, preference, qd) best-first and number positions."""
    entries.sort(key=lambda entry: (-entry[1], entry[0]))
    return [
        RankedItem(document, score, preference, query_dependent, position)
        for position, (document, score, preference, query_dependent) in enumerate(
            entries, start=1
        )
    ]


def _ranked_top_k(
    entries: list[tuple[str, float, float, float | None]], k: int
) -> list[RankedItem]:
    """The first ``k`` items of :func:`_ranked` without the full sort.

    ``heapq.nsmallest`` under the same ``(-score, document)`` key is
    documented equivalent to ``sorted(...)[:k]``, so positions, order
    and tie-breaks match the full ranking exactly — a top-k request
    over thousands of candidates just stops paying O(n log n) sorting
    and n item constructions for the n - k documents it never returns.
    """
    best = heapq.nsmallest(k, entries, key=lambda entry: (-entry[1], entry[0]))
    return [
        RankedItem(document, score, preference, query_dependent, position)
        for position, (document, score, preference, query_dependent) in enumerate(
            best, start=1
        )
    ]


@dataclass(frozen=True)
class GatedRelevance:
    """The paper's naive union: binary query relevance × preference.

    Documents in the query result carry query-dependent probability 1
    and are ordered by preference score; everything else scores 0 and
    is omitted.  Without a query part, this is the pure preference
    ranking.
    """

    name: str = field(default="gated", init=False)

    def _entries(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[tuple[str, float, float, float | None]]:
        entries: list[tuple[str, float, float, float | None]] = []
        for document in documents:
            preference = preference_scores.get(document, 0.0)
            if query_scores is None:
                entries.append((document, preference, preference, None))
                continue
            if query_scores.get(document, 0.0) <= 0.0:
                continue
            entries.append((document, preference, preference, 1.0))
        return entries

    def combine(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[RankedItem]:
        return _ranked(self._entries(preference_scores, query_scores, documents))

    def combine_top_k(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
        k: int,
    ) -> list[RankedItem]:
        """``combine(...)[:k]``, via a heap instead of a full sort."""
        return _ranked_top_k(
            self._entries(preference_scores, query_scores, documents), k
        )


@dataclass(frozen=True)
class MixedRelevance:
    """Section 6 smoothing: ``combined = qd^λ · pref^(1-λ)``.

    Uses :func:`repro.core.ranker.mix_scores`, so the λ = 0 (pure
    context) and λ = 1 (pure IR) boundaries are exact.  Query-less
    requests fall back to the pure preference ranking.
    """

    mixing_weight: float = 0.5
    name: str = field(default="mixed", init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.mixing_weight <= 1.0:
            raise EngineConfigError(
                f"mixing weight must be in [0, 1], got {self.mixing_weight!r}"
            )

    def _entries(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[tuple[str, float, float, float | None]]:
        entries: list[tuple[str, float, float, float | None]] = []
        for document in documents:
            preference = preference_scores.get(document, 0.0)
            if query_scores is None:
                entries.append((document, preference, preference, None))
            else:
                query_dependent = query_scores.get(document, 0.0)
                combined = mix_scores(query_dependent, preference, self.mixing_weight)
                entries.append((document, combined, preference, query_dependent))
        return entries

    def combine(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[RankedItem]:
        return _ranked(self._entries(preference_scores, query_scores, documents))

    def combine_top_k(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
        k: int,
    ) -> list[RankedItem]:
        """``combine(...)[:k]``, via a heap instead of a full sort."""
        return _ranked_top_k(
            self._entries(preference_scores, query_scores, documents), k
        )


@dataclass(frozen=True)
class LogLinearRelevance:
    """The IR combination, as an engine plugin.

    ``score = λ·log qd + (1-λ)·log pref`` with an epsilon floor — the
    semantics of :func:`repro.ir.combined_ranking`: documents missing
    one part are penalised, not dropped.  Scores are log-space (≤ 0).

    Large batches combine through the kernel's numeric backend
    (vectorised logs when numpy is importable, the
    :func:`repro.perf.flatops.log_linear_rows` loop otherwise).
    """

    mixing_weight: float = 0.5
    name: str = field(default="log_linear", init=False)

    #: Below this many documents the per-pair reference call wins.
    _BATCH_MIN = 64

    def __post_init__(self) -> None:
        if not 0.0 <= self.mixing_weight <= 1.0:
            raise EngineConfigError(
                f"mixing weight must be in [0, 1], got {self.mixing_weight!r}"
            )

    def _entries(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[tuple[str, float, float, float | None]]:
        if query_scores is None:
            return [
                (document, value, value, None)
                for document, value in (
                    (document, preference_scores.get(document, 0.0))
                    for document in documents
                )
            ]
        preferences = [preference_scores.get(document, 0.0) for document in documents]
        dependents = [query_scores.get(document, 0.0) for document in documents]
        combined = self._combine_rows(dependents, preferences)
        return [
            (document, score, preference, query_dependent)
            for document, score, preference, query_dependent in zip(
                documents, combined, preferences, dependents
            )
        ]

    def combine(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[RankedItem]:
        return _ranked(self._entries(preference_scores, query_scores, documents))

    def combine_top_k(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
        k: int,
    ) -> list[RankedItem]:
        """``combine(...)[:k]``, via a heap instead of a full sort."""
        return _ranked_top_k(
            self._entries(preference_scores, query_scores, documents), k
        )

    def _combine_rows(
        self, dependents: list[float], preferences: list[float]
    ) -> list[float]:
        if len(dependents) < self._BATCH_MIN:
            return [
                combine_log_linear(qd, qi, self.mixing_weight)
                for qd, qi in zip(dependents, preferences)
            ]
        np = resolve_backend()
        if np is None:
            return log_linear_rows(
                dependents, preferences, self.mixing_weight, LOG_FLOOR
            )
        qd = np.maximum(LOG_FLOOR, np.asarray(dependents, dtype=np.float64))
        qi = np.maximum(LOG_FLOOR, np.asarray(preferences, dtype=np.float64))
        mixed = self.mixing_weight * np.log(qd) + (1.0 - self.mixing_weight) * np.log(qi)
        return mixed.tolist()


@dataclass
class GroupRelevance:
    """Multi-user ranking as an engine plugin.

    The preference part is replaced by the group-aggregated score from
    a :class:`~repro.multiuser.GroupRanker` (each member scoring the
    candidates under their own rules and the shared context); query
    results gate binarily, as in the naive union.  Each member's
    scorer batches its candidates through the compiled scoring kernel,
    so a group request costs one vectorised pass per member.

    ``uses_preference_view = False`` tells the engine not to compute
    its own single-user preference view for document-list requests —
    the members' scorers do all the scoring.  Group scores are
    recomputed per request (they span several rule sets, outside the
    engine's single-signature cache); per-rule explanations are
    likewise unavailable on the group path.
    """

    ranker: GroupRanker
    name: str = field(default="group", init=False)
    uses_preference_view: bool = field(default=False, init=False)

    def _entries(
        self,
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[tuple[str, float, float, float | None]]:
        group_scores = {
            score.document: score.value for score in self.ranker.score(documents)
        }
        entries: list[tuple[str, float, float, float | None]] = []
        for document in documents:
            preference = group_scores.get(document, 0.0)
            if query_scores is None:
                entries.append((document, preference, preference, None))
                continue
            if query_scores.get(document, 0.0) <= 0.0:
                continue
            entries.append((document, preference, preference, 1.0))
        return entries

    def combine(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> list[RankedItem]:
        return _ranked(self._entries(query_scores, documents))

    def combine_top_k(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
        k: int,
    ) -> list[RankedItem]:
        """``combine(...)[:k]``, via a heap instead of a full sort."""
        return _ranked_top_k(self._entries(query_scores, documents), k)


#: Name → zero-config strategy factory, for builders and config files.
RELEVANCE_STRATEGIES = {
    "gated": GatedRelevance,
    "mixed": MixedRelevance,
    "log_linear": LogLinearRelevance,
}


def resolve_relevance(spec: object, **options: object):
    """Resolve a relevance backend from a name, class or instance.

    ``options`` (e.g. ``mixing_weight``) are forwarded to named
    strategies; passing options alongside a ready-made instance is an
    error.
    """
    if isinstance(spec, str):
        try:
            factory = RELEVANCE_STRATEGIES[spec]
        except KeyError:
            raise EngineConfigError(
                f"unknown relevance strategy {spec!r}; "
                f"choose from {sorted(RELEVANCE_STRATEGIES)} or pass a RelevanceBackend"
            ) from None
        try:
            return factory(**options)  # type: ignore[arg-type]
        except TypeError as exc:
            raise EngineConfigError(
                f"invalid options for relevance strategy {spec!r}: {exc}"
            ) from exc
    if callable(getattr(spec, "combine", None)):
        if options:
            raise EngineConfigError(
                "options are only valid with a named relevance strategy"
            )
        return spec
    raise EngineConfigError(
        f"relevance must be a strategy name or a RelevanceBackend, got {spec!r}"
    )
