"""Per-context-signature memoization of the preference view.

Section 5's observation — "as the current context develops, the
probabilities of containment of tuples in the view changes accordingly"
— cuts both ways: while the context does *not* develop, the view does
not change either.  The engine therefore keys fully scored views by
``(context signature, rule fingerprint, scorer configuration)`` and
serves repeats from memory; any context or rule change produces a new
key, which is invalidation by construction.

A small LRU bound keeps memory flat under heavy traffic with many
distinct contexts (e.g. per-user sensor snapshots).

Besides fully scored views, the cache distinguishes a cheaper kind of
reuse: a **basis** (:class:`repro.engine.basis.ViewBasis`) keyed by
everything *except* the dynamic context — static-knowledge epoch, rule
fingerprint, scorer configuration, target.  On a context-only change
the signature misses but the basis hits, and the engine rescores on
the compiled candidate matrix instead of re-binding every document
(``context_refreshes`` counts these incremental refreshes).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.scoring import DocumentScore
from repro.errors import EngineConfigError

__all__ = ["ViewCache", "CacheInfo"]


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters plus occupancy, in the ``functools`` style.

    ``context_refreshes`` counts signature misses served incrementally
    from a cached basis (context-delta rescoring); ``bases`` is the
    number of compiled bases currently held.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    context_refreshes: int = 0
    bases: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ViewCache:
    """An LRU map from engine signatures to scored preference views.

    Thread-safe: every operation holds one internal lock, so the LRU
    bookkeeping (``move_to_end`` racing ``popitem``) can never corrupt
    under concurrent readers — the engine's own lock already serialises
    one engine's requests, but diagnostic readers (``info()``, the
    service's ``/metrics`` endpoint) observe the cache from other
    threads.
    """

    def __init__(self, max_entries: int = 16):
        if max_entries < 1:
            raise EngineConfigError(
                f"cache needs at least one entry, got max_entries={max_entries!r}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, dict[str, DocumentScore]]" = OrderedDict()
        self._bases: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._context_refreshes = 0

    def get(self, key: Hashable) -> dict[str, DocumentScore] | None:
        """The cached scores for ``key`` (counts a hit or a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, scores: dict[str, DocumentScore]) -> None:
        """Store scores for ``key``, evicting the least recent if full."""
        with self._lock:
            self._entries[key] = dict(scores)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # -- the incremental-rescoring basis ----------------------------------
    def basis_get(self, key: Hashable):
        """The cached basis for ``key`` (no hit/miss accounting)."""
        with self._lock:
            basis = self._bases.get(key)
            if basis is not None:
                self._bases.move_to_end(key)
            return basis

    def basis_put(self, key: Hashable, basis: object) -> None:
        """Store a compiled basis, evicting the least recent if full."""
        with self._lock:
            self._bases[key] = basis
            self._bases.move_to_end(key)
            while len(self._bases) > self.max_entries:
                self._bases.popitem(last=False)

    def note_context_refresh(self) -> None:
        """Count one signature miss served incrementally from a basis."""
        with self._lock:
            self._context_refreshes += 1

    def invalidate(self) -> None:
        """Drop every entry and basis (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bases.clear()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                max_entries=self.max_entries,
                context_refreshes=self._context_refreshes,
                bases=len(self._bases),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
