"""The unified ranking facade (the library's canonical public API).

One object — :class:`RankingEngine` — owns the paper's whole pipeline
(context capture → preference view → ranked query results) behind four
``typing.Protocol``-typed backends:

========================  ====================================================
:class:`ContextBackend`   where the context lives and when it changed
:class:`PreferenceBackend`  where the scored rules come from
:class:`StorageBackend`   how user SQL sees ``preferencescore``
:class:`RelevanceBackend` how the two relevance parts combine
========================  ====================================================

Requests are frozen :class:`RankRequest` values, answers are frozen
:class:`RankResponse` values, and the preference view is memoized per
context signature — repeated requests under an unchanged context and
rule set never rescore.

Assemble engines with :class:`EngineBuilder`, or the shortcuts
:meth:`RankingEngine.from_world` / :meth:`RankingEngine.from_config`.
"""

from repro.engine.backends import (
    AboxContext,
    DatabaseStorage,
    RepositoryPreferences,
    SensedContext,
)
from repro.engine.basis import SharedBasisPool, ViewBasis, build_view_basis, shared_basis_pool
from repro.engine.builder import EngineBuilder
from repro.engine.cache import CacheInfo, ViewCache
from repro.engine.engine import PreparedRank, RankingEngine, score_prepared_batch
from repro.engine.protocols import (
    ContextBackend,
    PreferenceBackend,
    RelevanceBackend,
    StorageBackend,
)
from repro.engine.relevance import (
    RELEVANCE_STRATEGIES,
    GatedRelevance,
    GroupRelevance,
    LogLinearRelevance,
    MixedRelevance,
    resolve_relevance,
)
from repro.engine.requests import RankedItem, RankRequest, RankResponse

__all__ = [
    "AboxContext",
    "CacheInfo",
    "ContextBackend",
    "DatabaseStorage",
    "EngineBuilder",
    "GatedRelevance",
    "GroupRelevance",
    "LogLinearRelevance",
    "MixedRelevance",
    "PreferenceBackend",
    "PreparedRank",
    "RELEVANCE_STRATEGIES",
    "RankRequest",
    "RankResponse",
    "RankedItem",
    "RankingEngine",
    "RelevanceBackend",
    "RepositoryPreferences",
    "SensedContext",
    "StorageBackend",
    "ViewBasis",
    "ViewCache",
    "SharedBasisPool",
    "build_view_basis",
    "score_prepared_batch",
    "shared_basis_pool",
    "resolve_relevance",
]
