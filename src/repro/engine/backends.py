"""Default backend implementations for the engine protocols.

* :class:`AboxContext` — context read straight from the ABox's dynamic
  assertions (the library's native representation); its signature is a
  canonical digest of those assertions, so any context change — manual,
  sensor-driven, or CLI-installed — invalidates the engine's cache.
* :class:`SensedContext` — an :class:`AboxContext` wired to a
  :class:`~repro.context.manager.ContextManager`, for sensor-driven
  scenarios.
* :class:`RepositoryPreferences` — rules from a
  :class:`~repro.rules.repository.RuleRepository`, fingerprinted by
  content so rule additions/removals/edits invalidate the cache even
  when the repository object is mutated in place.
* :class:`DatabaseStorage` — SQL over the library's
  :class:`~repro.storage.database.Database` with the preference view
  attached as the ``preferencescore`` virtual column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.dl.abox import ABox, ConceptAssertion
from repro.dl.parser import parse_concept
from repro.dl.vocabulary import Individual
from repro.errors import EngineConfigError
from repro.events.space import EventSpace
from repro.rules.repository import RuleRepository
from repro.storage.database import Database
from repro.storage.sql import ResultSet, SqlSession

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.context.manager import ContextManager
    from repro.context.sensors import GroundTruth
    from repro.core.preference_view import PreferenceView

__all__ = [
    "AboxContext",
    "SensedContext",
    "RepositoryPreferences",
    "DatabaseStorage",
    "parse_context_spec",
]


def parse_context_spec(spec: str) -> tuple[str, float]:
    """Validate one ``CONCEPT[:PROB]`` spec into ``(concept, probability)``.

    Raises :class:`EngineConfigError` on bad syntax or an out-of-range
    probability.  Shared by :meth:`AboxContext.install` (which
    validates *every* spec before touching the knowledge base, so a
    bad spec can never leave a half-installed context) and the serving
    pipeline's pre-flight check.
    """
    name, _, prob_text = spec.partition(":")
    parse_concept(name)  # validate the syntax early
    try:
        probability = float(prob_text) if prob_text else 1.0
    except ValueError:
        raise EngineConfigError(
            f"bad context spec {spec!r}: the part after ':' must be a "
            "probability, e.g. 'Breakfast:0.7'"
        ) from None
    if not 0.0 <= probability <= 1.0:
        raise EngineConfigError(
            f"bad context spec {spec!r}: probability must be in [0, 1]"
        )
    return name, probability


@dataclass
class AboxContext:
    """Context backend over the ABox's dynamic assertions.

    The knowledge base already *is* the context store — sensors, the
    context manager and manual installs all write dynamic assertions
    into the ABox — so the signature is a canonical rendering of those
    assertions (concept/role, individuals, and the event each holds
    under), paired with the ABox's *static* mutation epoch so changes
    to the static knowledge (a new catalogue entry, a new feature)
    invalidate too.  The rendering is only recomputed after an actual
    ABox mutation (tracked through :attr:`ABox.mutation_count`), so on
    the hot path an unchanged context signs in O(1); and because the
    dynamic part is content-based, *restoring* an earlier context
    restores its signature — and its cache entry.
    """

    abox: ABox
    space: EventSpace | None = None
    _seen_mutation: int | None = field(default=None, repr=False, compare=False)
    _cached_signature: Hashable = field(default=None, repr=False, compare=False)

    def signature(self) -> Hashable:
        mutation = self.abox.mutation_count
        if mutation != self._seen_mutation:
            self._cached_signature = self._render_signature()
            self._seen_mutation = mutation
        return self._cached_signature

    def _render_signature(self) -> Hashable:
        # Rendered from the incrementally maintained dynamic set —
        # O(dynamic context), not a scan over the whole knowledge base.
        # The rendering itself is delegated to the ABox's per-layer
        # cache, so a frozen shared world stringifies its sensed
        # context once per process, not once per tenant overlay.
        static_epoch = self.abox.static_mutation_count
        concepts, roles = self.abox.dynamic_signature()
        return (static_epoch, concepts, roles)

    def refresh(self) -> None:
        """Static context: nothing to pull."""

    def install(
        self,
        user: Individual | str,
        specs: Iterable[str],
        tick: str = "ctx",
    ) -> None:
        """Replace the dynamic context with ``CONCEPT[:PROB]`` specs.

        The CLI's ``--context Weekend --context Breakfast:0.7`` syntax:
        each spec asserts the concept on ``user``, certainly or under a
        fresh probabilistic atom.  All specs are validated *before* the
        existing dynamic assertions are cleared, so a bad spec raises
        with the previous context fully intact — never half-installed.
        """
        parsed = [parse_context_spec(spec) for spec in specs]
        for (name, probability), spec in zip(parsed, specs):
            if probability < 1.0 and self.space is None:
                raise EngineConfigError(
                    f"uncertain context {spec!r} needs an event space on the backend"
                )
        self.abox.clear_dynamic()
        for name, probability in parsed:
            if probability >= 1.0:
                self.abox.assert_concept(name, user, dynamic=True)
            else:
                self.abox.assert_concept(
                    name, user, self._context_atom(tick, name, probability), dynamic=True
                )

    def _context_atom(self, tick: str, name: str, probability: float):
        """A basic event for one context spec, stable across re-installs.

        Re-installing the same concept at the same probability reuses
        the same event name (so the context signature — and the cache
        entry — is restored too); a different probability allocates a
        fresh serial-suffixed name, since a basic event is a single
        random variable and cannot be re-registered.
        """
        assert self.space is not None
        base = f"{tick}:{name}"
        atom_name = base
        serial = 0
        while (
            atom_name in self.space
            and abs(self.space.get(atom_name).probability - probability) > 1e-12
        ):
            serial += 1
            atom_name = f"{base}#{serial}"
        return self.space.atom(atom_name, probability)


@dataclass
class SensedContext(AboxContext):
    """An ABox context fed by a sensor-driven context manager.

    :meth:`observe` runs one sensor sweep against a ground truth; the
    manager replaces the ABox's dynamic assertions, so the inherited
    signature picks the change up automatically.
    """

    manager: "ContextManager | None" = None

    def __post_init__(self) -> None:
        if self.manager is None:
            raise EngineConfigError("SensedContext needs a ContextManager")

    @classmethod
    def of(cls, manager: "ContextManager") -> "SensedContext":
        """Wrap a manager, sharing its ABox and event space."""
        return cls(abox=manager.abox, space=manager.space, manager=manager)

    def observe(self, truth: "GroundTruth") -> None:
        """Read all sensors against ``truth`` and install the snapshot."""
        assert self.manager is not None
        self.manager.refresh(truth)


@dataclass
class RepositoryPreferences:
    """Preference backend over a plain rule repository.

    The fingerprint is content-derived (rule ids, concept keys and
    sigmas) rather than a mutation counter, so in-place edits to the
    repository — the supported mutation path — are caught without any
    cooperation from the caller.
    """

    _repository: RuleRepository

    def repository(self) -> RuleRepository:
        return self._repository

    def fingerprint(self) -> Hashable:
        return tuple(
            (rule.rule_id, rule.context_key, rule.preference_key, rule.sigma)
            for rule in self._repository
        )


@dataclass
class DatabaseStorage:
    """Storage backend over the library's probabilistic database.

    Parameters
    ----------
    database:
        The database user queries run against.
    data_table / id_column:
        The table the paper's example query targets (``Programs``) and
        the column joining its rows to scored documents.
    """

    database: Database
    data_table: str
    id_column: str = "id"

    def session(self, view: "PreferenceView") -> SqlSession:
        """A SQL session with ``preferencescore`` attached to the data table."""
        session = SqlSession(self.database)
        view.attach_to_session(session, self.data_table, self.id_column)
        return session

    def execute(self, sql: str, view: "PreferenceView") -> ResultSet:
        return self.session(view).execute(sql)

    def document_ids(self, result: ResultSet) -> list[str] | None:
        if self.id_column not in result.columns:
            return None
        return [str(value) for value in result.column(self.id_column)]
