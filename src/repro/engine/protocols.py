"""Backend protocols: the seams the :class:`RankingEngine` plugs into.

The facade composes four ``typing.Protocol``-typed backends, in the
style of production contextual rankers (one ranker object over
protocol-typed engagement/prior/ml backends):

* :class:`ContextBackend` — where the current context comes from and,
  crucially, *when it changed*: its :meth:`~ContextBackend.signature`
  keys the engine's preference-view memoization.
* :class:`PreferenceBackend` — where the scored preference rules come
  from; its :meth:`~PreferenceBackend.fingerprint` invalidates the
  cache when rules change.
* :class:`StorageBackend` — how user SQL runs with the
  ``preferencescore`` column attached (Section 5's pipeline).
* :class:`RelevanceBackend` — how the query-dependent and
  query-independent parts combine into one ranking (the paper's naive
  union, the Section 6 smoothed mixture, the IR log-linear mixture, or
  the multi-user group aggregation).

Anything structurally conforming works — no inheritance required.
Default implementations live in :mod:`repro.engine.backends` and
:mod:`repro.engine.relevance`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping, Protocol, Sequence, runtime_checkable

from repro.rules.repository import RuleRepository
from repro.storage.sql import ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.preference_view import PreferenceView
    from repro.engine.requests import RankedItem

__all__ = [
    "ContextBackend",
    "PreferenceBackend",
    "StorageBackend",
    "RelevanceBackend",
]


@runtime_checkable
class ContextBackend(Protocol):
    """Supplies the situated user's current context."""

    def signature(self) -> Hashable:
        """A hashable token identifying the current context state.

        Two calls return equal signatures iff the context is unchanged;
        the engine memoizes the preference view per signature.
        """
        ...

    def refresh(self) -> None:
        """Bring the context up to date (may be a no-op for static contexts)."""
        ...


@runtime_checkable
class PreferenceBackend(Protocol):
    """Supplies the scored preference rules."""

    def repository(self) -> RuleRepository:
        """The current rule repository."""
        ...

    def fingerprint(self) -> Hashable:
        """A hashable token over the rule set; changes when rules change."""
        ...


@runtime_checkable
class StorageBackend(Protocol):
    """Runs user SQL against the data with the preference view attached."""

    def execute(self, sql: str, view: "PreferenceView") -> ResultSet:
        """Execute ``sql`` with ``preferencescore`` resolvable from ``view``."""
        ...

    def document_ids(self, result: ResultSet) -> list[str] | None:
        """Extract ranked-document ids from a query result.

        Returns ``None`` when the result carries no identifying column
        (the engine then answers with the raw result only, since the
        query's filter cannot be mapped back onto ranked items).
        """
        ...


@runtime_checkable
class RelevanceBackend(Protocol):
    """Combines preference scores with query-dependent scores."""

    def combine(
        self,
        preference_scores: Mapping[str, float],
        query_scores: Mapping[str, float] | None,
        documents: Sequence[str],
    ) -> "list[RankedItem]":
        """Rank ``documents`` given both score maps.

        ``query_scores`` is ``None`` for query-independent requests
        (rank purely by context).  Implementations return items sorted
        best-first.

        Backends may additionally implement the optional
        ``combine_top_k(preference_scores, query_scores, documents, k)``
        shortcut.  When present, the engine calls it for top-k requests
        instead of slicing ``combine``'s full ranking; it must return
        exactly ``combine(...)[:k]`` (same order, positions and
        tie-breaks) — typically via heap selection that skips sorting
        the candidates the response never includes.
        """
        ...
